"""The paper's §IV workflow, step by step.

Reproduces the preliminary ADA-HEALTH evaluation at reduced scale:

1. characterise the examination log (sparseness, frequency skew);
2. horizontal partial mining — cluster growing exam-type subsets and
   score each with the overall-similarity index, stopping at the
   smallest subset within 5 % of the full data;
3. the optimiser's K sweep on the selected subset: SSE plus the
   decision-tree robustness metrics of Table I, and the automatic K
   selection;
4. inspect the chosen cluster set: which examinations characterise
   each discovered patient group.

Run:  python examples/cluster_diabetic_patients.py
(Use repro.data.paper_dataset() for the full 6,380-patient scale.)
"""

import numpy as np

from repro.core import HorizontalPartialMiner, KMeansOptimizer
from repro.core.extractors import extract_cluster_items
from repro.data import small_dataset
from repro.preprocess import L2Normalizer, VSMBuilder, characterize_log


def main() -> None:
    log = small_dataset(
        n_patients=1000, n_exam_types=80, target_records=15000, seed=3
    )

    # -- 1. characterisation -------------------------------------------
    profile = characterize_log(log)
    print("== data characterisation ==")
    print(f"patients x exam types : {profile.n_rows} x {profile.n_features}")
    print(f"sparsity              : {profile.sparsity:.3f}")
    print(f"frequency gini        : {profile.gini:.3f}")
    print(f"top-20% type coverage : {profile.top_share['20']:.1%} of records")
    print()

    # -- 2. adaptive partial mining --------------------------------------
    miner = HorizontalPartialMiner(
        fractions=(0.2, 0.4, 1.0), k_values=(6, 8), seed=3
    )
    partial = miner.mine(log)
    print("== horizontal partial mining ==")
    print(partial.format_table())
    print()

    # -- 3. the optimiser's K sweep (Table I machinery) -------------------
    vsm = VSMBuilder("binary", exam_codes=partial.selected_codes).build(log)
    matrix = L2Normalizer().transform(vsm.matrix)
    optimizer = KMeansOptimizer(
        k_values=(4, 6, 8, 10, 14), n_folds=5, seed=3
    )
    report = optimizer.optimize(matrix)
    print("== algorithm optimisation (K sweep) ==")
    print(report.format_table())
    print()

    # -- 4. inspect the selected cluster set -----------------------------
    best = report.best_row
    items = extract_cluster_items(
        matrix, best.labels, best.centers, log, vsm.exam_codes
    )
    print(f"== discovered patient groups (K = {best.k}) ==")
    for item in items[1:]:
        share = item.quality["size_share"]
        exams = ", ".join(item.payload["top_exams"][:3])
        print(
            f"  group {item.payload['cluster']}:"
            f" {item.payload['size']:>5} patients ({share:.1%})"
            f" - marked by {exams}"
        )


if __name__ == "__main__":
    main()
