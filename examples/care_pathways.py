"""Care pathways: temporal sequences of visits + a written report.

Uses the dated structure of the examination log — "the type and date of
every exam" — to mine recurring *ordered* care pathways with PrefixSpan,
then runs the automated engine and writes a self-contained Markdown
report (the artefact a hospital administrator would actually receive).

Run:  python examples/care_pathways.py
"""

import tempfile
from pathlib import Path

from repro.core import ADAHealth, EngineConfig, save_report
from repro.data import small_dataset
from repro.mining import mine_log_sequences


def main() -> None:
    log = small_dataset(
        n_patients=700, n_exam_types=50, target_records=11000, seed=23
    )

    # -- direct sequence mining -------------------------------------------
    patterns = mine_log_sequences(log, min_support=0.25, max_length=3)
    temporal = [p for p in patterns if len(p.elements) >= 2]
    temporal.sort(key=lambda p: (-len(p.elements), -p.support))
    print("== recurring care pathways (support >= 25%) ==")
    for pattern in temporal[:8]:
        print(f"  {pattern}")
    print()

    # -- the engine's care-sequences end-goal -----------------------------
    engine = ADAHealth(
        config=EngineConfig(k_values=(4, 6), n_folds=4), seed=23
    )
    result = engine.analyze(log, name="pathway-cohort", user="dr-seq")
    run = result.run_for("care-sequences")
    print(f"== engine extracted {len(run.items)} sequence items ==")
    for item in run.items[:5]:
        print(f"  {item.describe()}")
    print()

    # -- a written report ---------------------------------------------------
    with tempfile.TemporaryDirectory() as workdir:
        report_path = Path(workdir) / "analysis_report.md"
        save_report(result, report_path, title="Pathway cohort analysis")
        content = report_path.read_text()
        print(f"== report written ({len(content.splitlines())} lines) ==")
        # Show the head of the generated document.
        for line in content.splitlines()[:18]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
