"""The self-learning loop: K-DB, expert feedback, end-goal prediction.

The paper's key vision: the system "will be continuously enriched with
new health care professionals feedbacks" and gets better at (i)
predicting the interestingness of knowledge items and (ii) selecting
end-goals as interactions accumulate. This example runs two analysis
sessions separated by simulated-expert feedback, persists the K-DB to
disk between them, and shows both learned models at work.

Run:  python examples/knowledge_feedback_loop.py
"""

import tempfile
from pathlib import Path

from repro.core import (
    ADAHealth,
    EngineConfig,
    SimulatedExpert,
    clinician_profile,
)
from repro.data import small_dataset
from repro.kdb import KnowledgeBase


def main() -> None:
    log = small_dataset(
        n_patients=600, n_exam_types=50, target_records=9000, seed=5
    )
    config = EngineConfig(k_values=(4, 6, 8), n_folds=4)
    expert = SimulatedExpert(clinician_profile(), seed=5)

    with tempfile.TemporaryDirectory() as workdir:
        kdb_path = Path(workdir) / "kdb"

        # ---------------- session 1: cold start -----------------------
        engine = ADAHealth(config=config, seed=5)
        first = engine.analyze(log, name="monday-cohort", user="dr-rossi")
        print("== session 1 (cold start) ==")
        print(first.summary())

        session = first.navigate(page_size=12)
        for item in session.page(0):
            session.give_feedback(item, expert.label(item))
        for run in first.runs:
            liked = any(i.degree == "high" for i in run.items[:5])
            engine.record_goal_feedback(
                run.goal.name, first.profile, liked
            )
        print(f"\nrecorded {engine.kdb.feedback_count()} feedback labels"
              f" from {expert.profile.name}")
        engine.kdb.save(kdb_path)

        # ---------------- session 2: warm start ------------------------
        warm = ADAHealth(
            kdb=KnowledgeBase.load(kdb_path), config=config, seed=5
        )
        second = warm.analyze(log, name="friday-cohort", user="dr-rossi")
        print("\n== session 2 (warm start from persisted K-DB) ==")
        print(
            "degrees now predicted by the decision tree trained on"
            " the recorded feedback:"
        )
        for item in second.top(6):
            print("   ", item.describe())

        predictor = warm.kdb.train_degree_predictor()
        agreements = sum(
            1
            for item in second.items
            if predictor.predict(item) == expert.label(item)
        )
        print(
            f"\npredictor vs expert agreement on session 2:"
            f" {agreements}/{len(second.items)}"
        )
        print("\nK-DB after both sessions:", warm.kdb.counts())


if __name__ == "__main__":
    main()
