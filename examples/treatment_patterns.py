"""Pattern-based discovery of co-prescribed examinations.

The paper's second exploratory algorithm family (reference [2], MeTA):
identify "medical examinations commonly prescribed by physicians to
patients with a given disease" and characterise treatments at different
abstraction levels. This example mines

* frequent co-prescription itemsets (FP-growth),
* association rules between examinations, and
* generalised itemsets at the exam-category level — where individually
  rare complication exams become visible as a group.

Run:  python examples/treatment_patterns.py
"""

from repro.data import small_dataset
from repro.mining import (
    fpgrowth,
    generate_rules,
    level_summary,
    mine_generalized_itemsets,
)


def main() -> None:
    log = small_dataset(
        n_patients=1200, n_exam_types=80, target_records=18000, seed=11
    )
    transactions = log.transactions(by="patient")
    print(f"{len(transactions)} patient baskets,"
          f" {log.n_exam_types} exam types")
    print()

    # -- frequent co-prescriptions ----------------------------------------
    itemsets = fpgrowth(transactions, min_support=0.25)
    panels = [s for s in itemsets if len(s.items) >= 3]
    panels.sort(key=lambda s: (-len(s.items), -s.support))
    print("== co-prescription panels (support >= 25%) ==")
    for itemset in panels[:6]:
        names = ", ".join(itemset.sorted_items())
        print(f"  [{itemset.support:.2f}] {names}")
    print()

    # -- association rules -------------------------------------------------
    rules = generate_rules(itemsets, min_confidence=0.75, min_lift=1.0)
    print("== care-pathway rules (confidence >= 75%) ==")
    for rule in rules[:6]:
        print(f"  {rule}")
    print()

    # -- abstraction levels -------------------------------------------------
    generalized = mine_generalized_itemsets(
        transactions,
        log.taxonomy.parent_map(),
        min_support=0.10,
        max_length=3,
    )
    print("== generalised patterns across abstraction levels ==")
    print(f"  by level: {level_summary(generalized)}")
    category_patterns = [
        g for g in generalized if g.level == "category"
    ]
    category_patterns.sort(key=lambda g: -g.support)
    for pattern in category_patterns[:8]:
        names = ", ".join(pattern.sorted_items())
        print(f"  [{pattern.support:.2f}] ({pattern.level}) {names}")
    print()
    print(
        "note: complication categories (cardiovascular, renal, ...)"
        " appear only at category level - each individual test is"
        " below the support threshold, their union is not."
    )


if __name__ == "__main__":
    main()
