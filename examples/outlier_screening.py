"""Outlier screening: patients with atypical examination histories.

The paper notes that rarely-prescribed exams "could affect other types
of analyses such as outlier detection". This example runs the
density-based end-goal directly: DBSCAN over the normalised VSM flags
patients whose examination profile fits no dense group — candidates for
data-quality review or unusual care pathways — and cross-checks the
flagged patients against the generator's planted profiles.

Run:  python examples/outlier_screening.py
"""

import numpy as np

from repro.core.engine import _eps_heuristic
from repro.data import small_dataset
from repro.mining import DBSCAN, NOISE
from repro.preprocess import L2Normalizer, VSMBuilder


def main() -> None:
    log = small_dataset(
        n_patients=900, n_exam_types=60, target_records=13000, seed=17
    )
    vsm = VSMBuilder("binary").build(log)
    matrix = L2Normalizer().transform(vsm.matrix)

    eps = _eps_heuristic(matrix, quantile=0.15, seed=17)
    model = DBSCAN(eps=eps, min_samples=5).fit(matrix)
    print(f"eps = {eps:.3f} (15th percentile of pairwise distances)")
    print(
        f"dense groups: {model.n_clusters()},"
        f" flagged patients: {(model.labels_ == NOISE).sum()}"
        f" ({model.noise_ratio():.1%})"
    )
    print()

    # Which planted profiles do the flagged patients come from?
    flagged_rows = np.nonzero(model.labels_ == NOISE)[0]
    names = [
        info.profile for __, info in sorted(log.patients.items())
    ]
    from collections import Counter

    flagged_profiles = Counter(names[row] for row in flagged_rows)
    base_profiles = Counter(names)
    print("flagged patients by latent profile (vs base rate):")
    for profile, count in flagged_profiles.most_common():
        rate = count / base_profiles[profile]
        print(
            f"  {profile:<20} {count:>4} flagged"
            f"  ({rate:.1%} of that profile)"
        )
    print()

    # Inspect a few flagged examination histories.
    counts, patient_ids = log.count_matrix()
    print("sample flagged histories (distinct exams, total records):")
    for row in flagged_rows[:5]:
        distinct = int((counts[row] > 0).sum())
        total = int(counts[row].sum())
        print(
            f"  patient {patient_ids[row]:>5}"
            f" ({names[row]}): {distinct} exam types, {total} records"
        )


if __name__ == "__main__":
    main()
