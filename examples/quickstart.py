"""Quickstart: automated analysis of a medical examination log.

Generates a diabetic examination log (the paper's dataset is
proprietary; the generator matches its published statistics), hands it
to the ADA-HEALTH engine with *no configuration*, and prints the ranked
knowledge the engine extracted — the paper's "automatically mine
massive data repositories ... with minimal user intervention".

Run:  python examples/quickstart.py
"""

from repro import ADAHealth, small_dataset


def main() -> None:
    # A 800-patient cohort with the paper dataset's structure
    # (sparse, heavy-tailed, latent complication sub-populations).
    log = small_dataset(
        n_patients=800, n_exam_types=60, target_records=12000, seed=7
    )
    print("dataset:", log.summary())
    print()

    engine = ADAHealth(seed=7)
    result = engine.analyze(log, name="quickstart", user="dr-demo")

    print(result.summary())
    print()
    print("top knowledge items:")
    for rank, item in enumerate(result.top(8), start=1):
        print(f"{rank:>3}. {item.describe()}")

    # The user navigates and reacts; the engine adapts.
    session = result.navigate(page_size=5)
    first_page = session.page(0)
    session.give_feedback(first_page[0], "high")
    session.give_feedback(first_page[1], "low")
    print()
    print("after feedback, page 1 becomes:")
    for item in session.page(0):
        print("   ", item.describe())
    print()
    print("K-DB contents:", engine.kdb.counts())


if __name__ == "__main__":
    main()
