"""Row/column scaling transforms and transform pipelines.

"Many mining algorithms rely on suitable transformations of input data
in order to reduce sparseness, and make the overall analysis problem
more efficiently tractable. To this purpose, the ADA-HEALTH architecture
includes several techniques to preprocess data and map them into
different representation spaces."

Each transform follows the ``fit`` / ``transform`` protocol; column
statistics learned at ``fit`` time are reused on new data, so transforms
are safe inside cross-validation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import NotFittedError, PreprocessError


class IdentityTransform:
    """No-op transform (the explicit 'raw counts' choice)."""

    name = "identity"

    def fit(self, data) -> "IdentityTransform":
        return self

    def transform(self, data) -> np.ndarray:
        return np.asarray(data, dtype=np.float64).copy()

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


class L2Normalizer:
    """Scale every row to unit Euclidean norm (zero rows stay zero).

    The natural companion of cosine-similarity analysis: after L2
    normalisation, squared Euclidean distance is a monotone function of
    cosine distance, so K-means on normalised vectors is spherical
    K-means — the standard treatment of sparse VSM data.
    """

    name = "l2"

    def fit(self, data) -> "L2Normalizer":
        return self

    def transform(self, data) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        norms = np.sqrt(np.einsum("ij,ij->i", data, data))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = data / norms[:, None]
        return np.nan_to_num(out)

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


class L1Normalizer:
    """Scale every row to unit L1 norm (relative exam frequencies)."""

    name = "l1"

    def fit(self, data) -> "L1Normalizer":
        return self

    def transform(self, data) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        norms = np.abs(data).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = data / norms[:, None]
        return np.nan_to_num(out)

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


class MinMaxScaler:
    """Scale each column into ``[0, 1]`` using fitted min/max."""

    name = "minmax"

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, data) -> "MinMaxScaler":
        data = np.asarray(data, dtype=np.float64)
        self.min_ = data.min(axis=0)
        spread = data.max(axis=0) - self.min_
        spread[spread == 0] = 1.0
        self.range_ = spread
        return self

    def transform(self, data) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.min_) / self.range_

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


class StandardScaler:
    """Column z-scoring with fitted mean and standard deviation."""

    name = "zscore"

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data) -> "StandardScaler":
        data = np.asarray(data, dtype=np.float64)
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, data) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) / self.std_

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)


_TRANSFORMS = {
    "identity": IdentityTransform,
    "l2": L2Normalizer,
    "l1": L1Normalizer,
    "minmax": MinMaxScaler,
    "zscore": StandardScaler,
}


def make_transform(name: str):
    """Instantiate a transform by name."""
    try:
        return _TRANSFORMS[name]()
    except KeyError:
        raise PreprocessError(
            f"unknown transform {name!r}; choose from {sorted(_TRANSFORMS)}"
        ) from None


class TransformPipeline:
    """Apply a sequence of transforms in order.

    Example::

        pipeline = TransformPipeline(["minmax", "l2"])

    Transforms may be given by name or as instances.
    """

    def __init__(self, steps: Sequence) -> None:
        self.steps: List = [
            make_transform(step) if isinstance(step, str) else step
            for step in steps
        ]

    def fit(self, data) -> "TransformPipeline":
        current = np.asarray(data, dtype=np.float64)
        for step in self.steps:
            current = step.fit_transform(current)
        return self

    def transform(self, data) -> np.ndarray:
        current = np.asarray(data, dtype=np.float64)
        for step in self.steps:
            current = step.transform(current)
        return current

    def fit_transform(self, data) -> np.ndarray:
        current = np.asarray(data, dtype=np.float64)
        for step in self.steps:
            current = step.fit_transform(current)
        return current

    @property
    def name(self) -> str:
        return "+".join(step.name for step in self.steps)
