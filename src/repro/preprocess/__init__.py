"""Preprocessing: VSM building, transforms, characterisation, selection."""

from repro.preprocess.autoselect import (
    DEFAULT_CANDIDATES,
    TransformCandidate,
    TransformSelection,
    TransformSelector,
)
from repro.preprocess.characterization import (
    DatasetProfile,
    FeatureProfile,
    characterize_log,
    characterize_matrix,
    feature_profiles,
)
from repro.preprocess.transforms import (
    IdentityTransform,
    L1Normalizer,
    L2Normalizer,
    MinMaxScaler,
    StandardScaler,
    TransformPipeline,
    make_transform,
)
from repro.preprocess.vsm import (
    WEIGHTINGS,
    VSMatrix,
    VSMBuilder,
    apply_weighting,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "DatasetProfile",
    "FeatureProfile",
    "IdentityTransform",
    "L1Normalizer",
    "L2Normalizer",
    "MinMaxScaler",
    "StandardScaler",
    "TransformCandidate",
    "TransformPipeline",
    "TransformSelection",
    "TransformSelector",
    "VSMBuilder",
    "VSMatrix",
    "WEIGHTINGS",
    "apply_weighting",
    "characterize_log",
    "characterize_matrix",
    "feature_profiles",
    "make_transform",
]
