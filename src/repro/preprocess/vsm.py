"""Vector Space Model construction from examination logs.

"The current implementation of selecting data transformation includes a
single pre-processing block capable of tailoring a given dataset to a
Vector Space Model (VSM) representation, which is particularly suited to
handle sparse datasets. ... The data transformation block through the
VSM model generates a unique vector for each patient, representing
his/her examination history (i.e. number of times he/she underwent each
examination)."

This module generalises that block: besides raw counts it offers the
standard text-retrieval weighting family (binary, logarithmic, TF-IDF),
since VSM patient vectors behave exactly like document term vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.records import ExamLog
from repro.exceptions import PreprocessError

WEIGHTINGS = ("count", "binary", "log", "tfidf")


@dataclass
class VSMatrix:
    """A patient-by-exam matrix with its row/column identities.

    Attributes
    ----------
    matrix:
        ``(n_patients, n_features)`` float array.
    patient_ids:
        Row identities (patient ids, sorted ascending).
    exam_codes:
        Column identities (exam codes of the retained features).
    weighting:
        Which weighting scheme produced the values.
    """

    matrix: np.ndarray
    patient_ids: List[int]
    exam_codes: List[int]
    weighting: str

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape  # type: ignore[return-value]

    def column_of(self, exam_code: int) -> int:
        """Column index of an exam code."""
        try:
            return self.exam_codes.index(exam_code)
        except ValueError:
            raise PreprocessError(
                f"exam code {exam_code} not in this VSM"
            ) from None

    def row_of(self, patient_id: int) -> int:
        """Row index of a patient id."""
        try:
            return self.patient_ids.index(patient_id)
        except ValueError:
            raise PreprocessError(
                f"patient {patient_id} not in this VSM"
            ) from None

    def sparsity(self) -> float:
        """Fraction of zero entries."""
        return float((self.matrix == 0).mean())


class VSMBuilder:
    """Builds :class:`VSMatrix` objects from :class:`ExamLog` datasets.

    Parameters
    ----------
    weighting:
        ``"count"`` — raw examination counts (the paper's choice);
        ``"binary"`` — 1 when the patient ever underwent the exam;
        ``"log"`` — ``1 + ln(count)`` for non-zero counts, damping the
        heavy-tailed routine exams;
        ``"tfidf"`` — log-damped counts times inverse patient frequency,
        de-emphasising exams that nearly everyone undergoes.
    exam_codes:
        Optional subset of exam codes to retain as features (used by the
        horizontal partial-mining strategy). ``None`` keeps every exam
        type in the taxonomy.
    """

    def __init__(
        self,
        weighting: str = "count",
        exam_codes: Optional[Sequence[int]] = None,
    ) -> None:
        if weighting not in WEIGHTINGS:
            raise PreprocessError(
                f"unknown weighting {weighting!r};"
                f" choose from {WEIGHTINGS}"
            )
        self.weighting = weighting
        self.exam_codes = None if exam_codes is None else list(exam_codes)

    def build(self, log: ExamLog) -> VSMatrix:
        """Build the weighted patient-by-exam matrix from the log."""
        counts, patient_ids = log.count_matrix()
        if self.exam_codes is None:
            exam_codes = list(range(log.n_exam_types))
            selected = counts
        else:
            bad = [
                code
                for code in self.exam_codes
                if not 0 <= code < log.n_exam_types
            ]
            if bad:
                raise PreprocessError(f"exam codes out of range: {bad}")
            exam_codes = list(self.exam_codes)
            selected = counts[:, exam_codes]
        weighted = apply_weighting(selected, self.weighting)
        return VSMatrix(
            matrix=weighted,
            patient_ids=patient_ids,
            exam_codes=exam_codes,
            weighting=self.weighting,
        )


def apply_weighting(counts: np.ndarray, weighting: str) -> np.ndarray:
    """Apply a weighting scheme to a non-negative count matrix."""
    counts = np.asarray(counts, dtype=np.float64)
    if (counts < 0).any():
        raise PreprocessError("counts must be non-negative")
    if weighting == "count":
        return counts.copy()
    if weighting == "binary":
        return (counts > 0).astype(np.float64)
    if weighting == "log":
        out = np.zeros_like(counts)
        nonzero = counts > 0
        out[nonzero] = 1.0 + np.log(counts[nonzero])
        return out
    if weighting == "tfidf":
        n = counts.shape[0]
        document_frequency = (counts > 0).sum(axis=0)
        # Smooth idf so exams seen by every patient keep weight > 0.
        idf = np.log((1.0 + n) / (1.0 + document_frequency)) + 1.0
        tf = np.zeros_like(counts)
        nonzero = counts > 0
        tf[nonzero] = 1.0 + np.log(counts[nonzero])
        return tf * idf[None, :]
    raise PreprocessError(f"unknown weighting {weighting!r}")
