"""Automatic data-transformation selection.

"The main research issue here is to define a totally automatic strategy
to select the optimal data transformation, which yields higher quality
knowledge." This module implements that strategy for the clustering
end-goal: candidate (weighting, scaling) combinations are evaluated by
clustering a pilot sample and scoring the result with an interestingness
metric (overall similarity by default); the best-scoring combination
wins and is applied to the full dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.records import ExamLog
from repro.exceptions import PreprocessError
from repro.mining.kmeans import KMeans
from repro.mining.metrics import overall_similarity, silhouette_score
from repro.preprocess.transforms import TransformPipeline, make_transform
from repro.preprocess.vsm import VSMBuilder, VSMatrix, WEIGHTINGS

#: (weighting, scaling) combinations the selector explores by default.
DEFAULT_CANDIDATES: Tuple[Tuple[str, str], ...] = (
    ("count", "identity"),
    ("count", "l2"),
    ("binary", "identity"),
    ("binary", "l2"),
    ("log", "l2"),
    ("tfidf", "l2"),
    ("log", "identity"),
    ("tfidf", "identity"),
)


@dataclass
class TransformCandidate:
    """One evaluated transformation with its pilot quality score."""

    weighting: str
    scaling: str
    score: float

    @property
    def name(self) -> str:
        return f"{self.weighting}+{self.scaling}"


@dataclass
class TransformSelection:
    """Result of the automatic selection."""

    best: TransformCandidate
    candidates: List[TransformCandidate]
    vsm: VSMatrix
    transformed: np.ndarray

    def report(self) -> str:
        """Table of candidate scores, best first."""
        lines = ["weighting+scaling    score"]
        for candidate in sorted(
            self.candidates, key=lambda c: -c.score
        ):
            marker = " <- selected" if candidate is self.best else ""
            lines.append(
                f"{candidate.name:<20} {candidate.score:.4f}{marker}"
            )
        return "\n".join(lines)


class TransformSelector:
    """Pick the transformation that maximises downstream quality.

    Parameters
    ----------
    candidates:
        (weighting, scaling) pairs to evaluate.
    pilot_clusters:
        K used for the pilot clustering runs.
    pilot_size:
        Rows sampled for the pilot (the full data is used if smaller).
    metric:
        ``"overall_similarity"`` (default, the paper's interestingness
        metric) or ``"silhouette"``, or any callable
        ``(matrix, labels) -> float`` where higher is better.
    seed:
        Seed for sampling and clustering.
    """

    def __init__(
        self,
        candidates: Sequence[Tuple[str, str]] = DEFAULT_CANDIDATES,
        pilot_clusters: int = 8,
        pilot_size: int = 1000,
        metric="overall_similarity",
        seed: int = 0,
    ) -> None:
        if not candidates:
            raise PreprocessError("no candidate transformations given")
        for weighting, __ in candidates:
            if weighting not in WEIGHTINGS:
                raise PreprocessError(f"unknown weighting {weighting!r}")
        self.candidates = list(candidates)
        self.pilot_clusters = pilot_clusters
        self.pilot_size = pilot_size
        self.metric = self._resolve_metric(metric)
        self.metric_name = (
            metric if isinstance(metric, str) else getattr(
                metric, "__name__", "custom"
            )
        )
        self.seed = seed

    @staticmethod
    def _resolve_metric(metric) -> Callable:
        if callable(metric):
            return metric
        if metric == "overall_similarity":
            return overall_similarity
        if metric == "silhouette":
            return silhouette_score
        raise PreprocessError(f"unknown metric {metric!r}")

    def select(self, log: ExamLog) -> TransformSelection:
        """Evaluate all candidates on a pilot sample; apply the winner."""
        counts, patient_ids = log.count_matrix()
        rng = np.random.default_rng(self.seed)
        n = counts.shape[0]
        if n > self.pilot_size:
            pilot_rows = rng.choice(n, size=self.pilot_size, replace=False)
        else:
            pilot_rows = np.arange(n)
        pilot_counts = counts[pilot_rows]

        evaluated: List[TransformCandidate] = []
        for weighting, scaling in self.candidates:
            matrix = self._apply(pilot_counts, weighting, scaling)
            k = min(self.pilot_clusters, matrix.shape[0] - 1)
            if k < 2:
                raise PreprocessError("pilot sample too small to cluster")
            model = KMeans(k, seed=self.seed, n_init=2).fit(matrix)
            score = float(self.metric(matrix, model.labels_))
            evaluated.append(
                TransformCandidate(
                    weighting=weighting, scaling=scaling, score=score
                )
            )

        best = max(evaluated, key=lambda c: c.score)
        vsm = VSMBuilder(weighting=best.weighting).build(log)
        transformed = self._scale(vsm.matrix, best.scaling)
        return TransformSelection(
            best=best,
            candidates=evaluated,
            vsm=vsm,
            transformed=transformed,
        )

    def _apply(
        self, counts: np.ndarray, weighting: str, scaling: str
    ) -> np.ndarray:
        from repro.preprocess.vsm import apply_weighting

        weighted = apply_weighting(counts, weighting)
        return self._scale(weighted, scaling)

    @staticmethod
    def _scale(matrix: np.ndarray, scaling: str) -> np.ndarray:
        return make_transform(scaling).fit_transform(matrix)
