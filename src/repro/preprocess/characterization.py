"""Data characterisation: statistical descriptors of a dataset.

"Data characterization and transformation ... We focus on the definition
of innovative criteria to model data distributions by exploiting
unconventional statistical indices and underlying data structures."

The :class:`DatasetProfile` produced here is ADA-HEALTH's fingerprint of
a dataset. It is (i) stored in the K-DB 'descriptors' collection, (ii)
consumed by the end-goal feasibility rules (e.g. frequent-pattern mining
is viable only when the data is transactional and sparse), and (iii)
used by the partial-mining planner, whose whole premise is that medical
logs have a highly skewed feature-frequency distribution.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.records import ExamLog
from repro.exceptions import PreprocessError


@dataclass
class FeatureProfile:
    """Per-feature (exam type) statistics."""

    index: int
    name: str
    frequency: int
    patient_coverage: float
    mean: float
    std: float
    maximum: float

    def to_document(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class DatasetProfile:
    """Whole-dataset statistical descriptors.

    Attributes
    ----------
    n_rows / n_features:
        Matrix dimensions (patients x exam types).
    sparsity:
        Fraction of zero entries; the paper stresses medical logs have
        "inherent sparseness".
    density:
        ``1 - sparsity``.
    mean_row_nonzeros / std_row_nonzeros:
        Distinct exams per patient.
    feature_entropy:
        Shannon entropy (nats) of the feature-frequency distribution;
        low entropy = concentrated head.
    normalized_entropy:
        ``feature_entropy / ln(n_features)`` in ``[0, 1]``.
    gini:
        Gini coefficient of feature frequencies; high = skewed.
    skewness / kurtosis:
        Moments of the per-entry value distribution (nonzero entries).
    top_share:
        ``fraction of types -> fraction of records`` coverage curve at
        10/20/40/60/80 %, the statistic the partial-mining planner uses.
    hhi:
        Herfindahl-Hirschman concentration of feature frequencies.
    """

    n_rows: int
    n_features: int
    sparsity: float
    density: float
    mean_row_nonzeros: float
    std_row_nonzeros: float
    feature_entropy: float
    normalized_entropy: float
    gini: float
    skewness: float
    kurtosis: float
    top_share: Dict[str, float]
    hhi: float
    total_count: float

    def to_document(self) -> Dict[str, object]:
        """JSON-ready dict for the K-DB descriptors collection."""
        return asdict(self)

    @property
    def is_sparse(self) -> bool:
        """Sparse by the conventional > 0.5 zero-fraction threshold."""
        return self.sparsity > 0.5

    @property
    def is_skewed(self) -> bool:
        """Heavy-tailed feature frequencies (Gini above 0.6)."""
        return self.gini > 0.6


def characterize_matrix(matrix, feature_names=None) -> DatasetProfile:
    """Profile a non-negative data matrix (rows = entities).

    Raises :class:`PreprocessError` on empty or negative input.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise PreprocessError("expected a non-empty 2-D matrix")
    if (matrix < 0).any():
        raise PreprocessError("characterisation expects non-negative data")
    n_rows, n_features = matrix.shape

    nonzero_mask = matrix > 0
    sparsity = float((~nonzero_mask).mean())
    row_nonzeros = nonzero_mask.sum(axis=1)
    feature_totals = matrix.sum(axis=0)
    total = float(feature_totals.sum())

    entropy = _entropy(feature_totals)
    max_entropy = np.log(n_features) if n_features > 1 else 1.0

    values = matrix[nonzero_mask]
    if values.size >= 2 and values.std() > 0:
        skewness = _standardized_moment(values, 3)
        kurtosis = _standardized_moment(values, 4) - 3.0
    else:
        skewness = 0.0
        kurtosis = 0.0

    return DatasetProfile(
        n_rows=n_rows,
        n_features=n_features,
        sparsity=sparsity,
        density=1.0 - sparsity,
        mean_row_nonzeros=float(row_nonzeros.mean()),
        std_row_nonzeros=float(row_nonzeros.std()),
        feature_entropy=entropy,
        normalized_entropy=float(entropy / max_entropy),
        gini=_gini(feature_totals),
        skewness=skewness,
        kurtosis=kurtosis,
        top_share=_top_share_curve(feature_totals),
        hhi=_hhi(feature_totals),
        total_count=total,
    )


def characterize_log(log: ExamLog) -> DatasetProfile:
    """Profile an examination log via its patient count matrix."""
    matrix, __ = log.count_matrix()
    return characterize_matrix(matrix)


def feature_profiles(log: ExamLog) -> List[FeatureProfile]:
    """Per-exam-type statistics, ordered by decreasing frequency."""
    matrix, __ = log.count_matrix()
    frequency = matrix.sum(axis=0)
    coverage = (matrix > 0).mean(axis=0)
    order = np.argsort(-frequency, kind="stable")
    profiles = []
    for index in order:
        exam = log.taxonomy.by_code(int(index))
        profiles.append(
            FeatureProfile(
                index=int(index),
                name=exam.name,
                frequency=int(frequency[index]),
                patient_coverage=float(coverage[index]),
                mean=float(matrix[:, index].mean()),
                std=float(matrix[:, index].std()),
                maximum=float(matrix[:, index].max()),
            )
        )
    return profiles


# ----------------------------------------------------------------------
# Statistical helpers
# ----------------------------------------------------------------------
def _entropy(totals: np.ndarray) -> float:
    total = totals.sum()
    if total <= 0:
        return 0.0
    proportions = totals / total
    nonzero = proportions[proportions > 0]
    return float(-(nonzero * np.log(nonzero)).sum())


def _gini(totals: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform)."""
    values = np.sort(np.asarray(totals, dtype=np.float64))
    n = len(values)
    total = values.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def _hhi(totals: np.ndarray) -> float:
    total = totals.sum()
    if total <= 0:
        return 0.0
    shares = totals / total
    return float((shares**2).sum())


def _standardized_moment(values: np.ndarray, order: int) -> float:
    centered = values - values.mean()
    std = values.std()
    return float((centered**order).mean() / std**order)


def _top_share_curve(totals: np.ndarray) -> Dict[str, float]:
    ordered = np.sort(totals)[::-1]
    total = ordered.sum()
    n = len(ordered)
    curve = {}
    for pct in (10, 20, 40, 60, 80):
        k = max(1, int(round(pct / 100.0 * n)))
        share = float(ordered[:k].sum() / total) if total else 0.0
        curve[str(pct)] = share
    return curve
