"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   write a synthetic examination log to disk (CSV or JSONL)
``describe``   print the statistical characterisation of a log
``analyze``    run the full ADA-HEALTH engine and print ranked knowledge
``table1``     regenerate the paper's Table I on a log
``partial``    regenerate the §IV-B partial-mining experiment
``figure1``    print the architecture diagram (paper Figure 1)
``kdb``        inspect (``stats``), compact, or ``fsck [--repair]`` a
               sharded K-DB directory
``shm``        list (``ls``) or reclaim (``reap``) shared-memory
               segments leaked by crashed runs
``lint``       run the adalint invariant checks (see :mod:`repro.lint`)

Every command that reads a dataset accepts either a JSONL file produced
by ``generate --format jsonl`` or a directory produced with
``--format csv``; ``--synthetic N`` generates an N-patient cohort on
the fly instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import (
    ADAHealth,
    HorizontalPartialMiner,
    KMeansOptimizer,
    render_text,
)
from repro.data import (
    DiabeticExamLogGenerator,
    ExamLog,
    GeneratorConfig,
    load_csv,
    load_jsonl,
    save_csv,
    save_jsonl,
)
from repro.preprocess import (
    L2Normalizer,
    VSMBuilder,
    characterize_log,
    feature_profiles,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADA-HEALTH: automated medical data analysis",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic examination log"
    )
    generate.add_argument("output", help="output path (file or directory)")
    generate.add_argument("--patients", type=int, default=6380)
    generate.add_argument("--exam-types", type=int, default=159)
    generate.add_argument("--records", type=int, default=95788)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl"
    )

    for name, help_text in (
        ("describe", "characterise a log"),
        ("analyze", "run the full engine"),
        ("table1", "regenerate Table I"),
        ("partial", "regenerate the partial-mining experiment"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "dataset",
            nargs="?",
            help="JSONL file or CSV directory (omit with --synthetic)",
        )
        sub.add_argument(
            "--synthetic",
            type=int,
            metavar="N",
            help="generate an N-patient cohort instead of reading one",
        )
        sub.add_argument("--seed", type=int, default=0)
        if name == "analyze":
            sub.add_argument("--user", default="cli-user")
            sub.add_argument("--top", type=int, default=10)
            sub.add_argument(
                "--goal",
                action="append",
                dest="goals",
                help="restrict to an end-goal (repeatable)",
            )
            sub.add_argument(
                "--trace",
                metavar="FILE",
                help="write nested execution spans to FILE as JSONL",
            )
            sub.add_argument(
                "--metrics",
                action="store_true",
                help="print the metrics snapshot (JSON) after the run",
            )
            sub.add_argument(
                "--on-goal-error",
                choices=("raise", "degrade"),
                default="raise",
                dest="on_goal_error",
                help="degrade: record a failing goal in the manifest"
                " and keep the surviving goals (default: raise)",
            )
            sub.add_argument(
                "--retries",
                type=int,
                default=0,
                help="per-task retry attempts beyond the first"
                " (seeded backoff jitter; default: 0)",
            )
            sub.add_argument(
                "--task-timeout",
                type=float,
                default=None,
                dest="task_timeout",
                metavar="SECONDS",
                help="per-task wall-clock budget for pooled"
                " backends; hung tasks fail with TaskTimeoutError",
            )
            sub.add_argument(
                "--executor",
                choices=(
                    "serial",
                    "threads",
                    "process",
                    "simulated-cluster",
                    "auto",
                ),
                default="serial",
                help="goal fan-out backend; auto picks serial on"
                " single-core hosts or small logs, otherwise a"
                " process pool over shared memory (default: serial)",
            )
            sub.add_argument(
                "--block-rows",
                type=int,
                default=None,
                dest="block_rows",
                metavar="ROWS",
                help="partition the patient matrix into ROWS-row"
                " blocks for the out-of-core data plane (results"
                " are byte-identical to the flat path)",
            )
        if name == "table1":
            sub.add_argument(
                "--k",
                type=int,
                nargs="+",
                default=None,
                help="K values to sweep (default: the paper's)",
            )
            sub.add_argument("--folds", type=int, default=10)

    commands.add_parser("figure1", help="print the architecture diagram")

    kdb = commands.add_parser(
        "kdb", help="inspect or maintain a sharded K-DB directory"
    )
    kdb_commands = kdb.add_subparsers(dest="kdb_command", required=True)
    for name, help_text in (
        ("stats", "print per-collection document counts and disk usage"),
        ("compact", "fold append logs into fresh base partitions"),
    ):
        sub = kdb_commands.add_parser(name, help=help_text)
        sub.add_argument("directory", help="sharded K-DB directory")
        sub.add_argument(
            "--collection",
            default=None,
            help="restrict to one collection (compact only)",
        )
    fsck = kdb_commands.add_parser(
        "fsck",
        help="check durability invariants (checksums, sequences,"
        " generations, lockfile); --repair fixes what it finds",
    )
    fsck.add_argument("directory", help="sharded K-DB directory")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="truncate torn tails, drop stale logs/locks, quarantine"
        " and re-compact damaged shards",
    )
    fsck.add_argument("--json", action="store_true", dest="as_json")

    shm = commands.add_parser(
        "shm",
        help="list or reclaim shared-memory segments leaked by"
        " crashed runs",
    )
    shm_commands = shm.add_subparsers(dest="shm_command", required=True)
    shm_commands.add_parser(
        "ls", help="list leaked library segments in /dev/shm"
    )
    shm_commands.add_parser(
        "reap", help="unlink every leaked library segment"
    )

    lint = commands.add_parser(
        "lint",
        help="check the engine's determinism/parallelism invariants",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src,"
        " benchmarks and examples)",
    )
    lint.add_argument("--json", action="store_true", dest="as_json")
    lint.add_argument("--select", default=None)
    lint.add_argument("--ignore", default=None)
    lint.add_argument(
        "--list-rules", action="store_true", dest="list_rules"
    )
    lint.add_argument("--jobs", type=int, default=1)
    lint.add_argument(
        "--backend",
        choices=("serial", "threads", "process"),
        default="threads",
    )
    lint.add_argument(
        "--no-cache", action="store_true", dest="no_cache"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="SARIF log to diff against: only new findings report",
    )
    lint.add_argument(
        "--emit-certs",
        action="store_true",
        dest="emit_certs",
        help="emit the purity-certificate artifact and exit",
    )
    lint.add_argument(
        "--certs-path",
        default=None,
        dest="certs_path",
        help="target for --emit-certs ('-' for stdout)",
    )
    return parser


def _load_dataset(args) -> ExamLog:
    if args.synthetic is not None:
        config = GeneratorConfig(
            n_patients=args.synthetic,
            n_exam_types=max(20, min(159, args.synthetic // 4)),
            target_records=args.synthetic * 15,
        )
        return DiabeticExamLogGenerator(config, seed=args.seed).generate()
    if not args.dataset:
        raise SystemExit(
            "error: provide a dataset path or use --synthetic N"
        )
    path = Path(args.dataset)
    if path.is_dir():
        return load_csv(path)
    return load_jsonl(path)


def cmd_generate(args) -> int:
    config = GeneratorConfig(
        n_patients=args.patients,
        n_exam_types=args.exam_types,
        target_records=args.records,
    )
    log = DiabeticExamLogGenerator(config, seed=args.seed).generate()
    if args.format == "csv":
        save_csv(log, args.output)
    else:
        save_jsonl(log, args.output)
    print(f"wrote {log.n_records} records for {log.n_patients} patients"
          f" to {args.output}")
    return 0


def cmd_describe(args) -> int:
    log = _load_dataset(args)
    profile = characterize_log(log)
    summary = log.summary()
    print(f"patients      : {summary['n_patients']}")
    print(f"records       : {summary['n_records']}")
    print(f"exam types    : {summary['n_exam_types']}")
    if summary["age_min"] is not None:
        print(f"age range     : {summary['age_min']}-{summary['age_max']}")
    print(f"days spanned  : {summary['days_spanned']}")
    print(f"sparsity      : {profile.sparsity:.3f}")
    print(f"frequency gini: {profile.gini:.3f}")
    print("type coverage : "
          + ", ".join(
              f"top {pct}% -> {share:.1%}"
              for pct, share in profile.top_share.items()
          ))
    print("most frequent exams:")
    for feature in feature_profiles(log)[:8]:
        print(
            f"  {feature.name:<40} {feature.frequency:>7} records,"
            f" {feature.patient_coverage:.1%} of patients"
        )
    return 0


def cmd_analyze(args) -> int:
    import json

    from repro.core.engine import EngineConfig
    from repro.obs import JsonlSink, Metrics, Tracer

    log = _load_dataset(args)
    tracer = Tracer(sinks=[JsonlSink(args.trace)]) if args.trace else None
    metrics = Metrics() if (args.metrics or args.trace) else None
    config = EngineConfig(
        tracer=tracer,
        metrics=metrics,
        on_goal_error=args.on_goal_error,
        retries=args.retries,
        task_timeout=args.task_timeout,
        executor=args.executor,
        block_rows=args.block_rows,
    )
    engine = ADAHealth(config=config, seed=args.seed)
    result = engine.analyze(
        log, name=args.dataset or "synthetic", user=args.user,
        goals=args.goals,
    )
    print(result.summary())
    print()
    print(f"top {args.top} knowledge items:")
    for rank, item in enumerate(result.top(args.top), start=1):
        print(f"{rank:>3}. {item.describe()}")
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    if args.metrics:
        print("\nmetrics snapshot:")
        print(json.dumps(engine.metrics.snapshot(), indent=2))
    return 0


def cmd_table1(args) -> int:
    from repro.core.optimizer import PAPER_K_VALUES

    log = _load_dataset(args)
    miner = HorizontalPartialMiner(seed=args.seed)
    codes = miner.subset_codes(log, 0.4)
    matrix = L2Normalizer().transform(
        VSMBuilder("binary", exam_codes=codes).build(log).matrix
    )
    k_values = tuple(args.k) if args.k else PAPER_K_VALUES
    k_values = tuple(k for k in k_values if k < matrix.shape[0])
    optimizer = KMeansOptimizer(
        k_values=k_values, n_folds=args.folds, seed=args.seed
    )
    report = optimizer.optimize(matrix)
    print(report.format_table())
    return 0


def cmd_partial(args) -> int:
    log = _load_dataset(args)
    miner = HorizontalPartialMiner(seed=args.seed)
    result = miner.mine(log)
    print(result.format_table())
    return 0


def cmd_figure1(args) -> int:
    print(render_text())
    return 0


def cmd_kdb(args) -> int:
    import json

    from repro.kdb.shards import ShardedDocumentStore

    directory = Path(args.directory)
    if not (directory / "_shards.json").exists():
        print(f"no sharded K-DB at {directory}", file=sys.stderr)
        return 1
    if args.kdb_command == "fsck":
        return _cmd_kdb_fsck(directory, args)
    store = ShardedDocumentStore(directory)
    try:
        if args.kdb_command == "compact":
            before = store.pending_ops(args.collection)
            store.compact(args.collection)
            scope = args.collection or "all collections"
            print(f"compacted {scope}: folded {before} pending op(s)")
        else:
            print(json.dumps(store.stats(), indent=2, sort_keys=True))
        if store.load_warnings:
            for warning in store.load_warnings:
                print(f"warning: {warning}", file=sys.stderr)
    finally:
        store.close()
    return 0


def _cmd_kdb_fsck(directory: Path, args) -> int:
    import json

    from repro.kdb.fsck import fsck

    report = fsck(directory, repair=args.repair)
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for issue in report.issues:
            status = "repaired" if issue.repaired else issue.severity
            print(f"[{status}] {issue.path}: {issue.detail}")
        print(
            f"checked {report.files_checked} file(s),"
            f" {report.records} record(s):"
            f" {'clean' if report.clean else f'{len(report.issues)} issue(s)'}"
        )
    return 0 if report.ok else 1


def cmd_shm(args) -> int:
    from repro.data.blocks import leaked_segments, reap_segments

    if args.shm_command == "reap":
        reaped = reap_segments()
        for name in reaped:
            print(f"reaped {name}")
        print(f"reaped {len(reaped)} segment(s)")
        return 0
    segments = leaked_segments()
    for name in segments:
        print(name)
    print(f"{len(segments)} leaked segment(s)", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    if args.as_json:
        argv.append("--json")
    if args.select:
        argv.extend(["--select", args.select])
    if args.ignore:
        argv.extend(["--ignore", args.ignore])
    if args.list_rules:
        argv.append("--list-rules")
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    if args.backend != "threads":
        argv.extend(["--backend", args.backend])
    if args.no_cache:
        argv.append("--no-cache")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.emit_certs:
        argv.append("--emit-certs")
    if args.certs_path:
        argv.extend(["--certs-path", args.certs_path])
    return lint_main(argv)


_COMMANDS = {
    "generate": cmd_generate,
    "describe": cmd_describe,
    "analyze": cmd_analyze,
    "table1": cmd_table1,
    "partial": cmd_partial,
    "figure1": cmd_figure1,
    "kdb": cmd_kdb,
    "shm": cmd_shm,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. ``repro figure1 | head``
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001 - best-effort flush
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
