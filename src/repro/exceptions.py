"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies mirror the package
layout: data handling, the document store / K-DB, preprocessing, mining
algorithms and the ADA-HEALTH core engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """Problem with an input dataset (malformed records, bad schema...)."""


class ValidationError(DataError):
    """A record or value failed validation against its schema."""


class StoreError(ReproError):
    """Base class for document-store errors."""


class DuplicateKeyError(StoreError):
    """An insert violated a unique index (e.g. a duplicate ``_id``)."""


class QueryError(StoreError):
    """A query document used an unknown or malformed operator."""


class CollectionNotFoundError(StoreError):
    """A named collection does not exist in the database."""


class PreprocessError(ReproError):
    """A preprocessing step (VSM building, normalisation...) failed."""


class NotFittedError(ReproError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class MiningError(ReproError):
    """A mining algorithm received invalid parameters or data."""


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped before meeting its tolerance."""


class ExecutionError(ReproError):
    """Base class for execution-backend infrastructure failures.

    Task-level exceptions (a miner raising on bad parameters) are the
    *task's* fault and surface unchanged inside ``TaskFailure``; an
    ``ExecutionError`` subclass means the *infrastructure* misbehaved —
    a hung worker, a dead process — which is what retry policies and
    circuit breakers react to.
    """


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock budget and was killed."""


class WorkerCrashError(ExecutionError):
    """A worker process died (segfault, OOM kill, ``os._exit``...)."""


class InjectedFault(ExecutionError):
    """A fault deliberately injected by the chaos-testing layer."""


class EngineError(ReproError):
    """The ADA-HEALTH engine was driven through an invalid state."""


class EndGoalError(EngineError):
    """No viable end-goal exists or an unknown end-goal was requested."""
