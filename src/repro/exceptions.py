"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies mirror the package
layout: data handling, the document store / K-DB, preprocessing, mining
algorithms and the ADA-HEALTH core engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """Problem with an input dataset (malformed records, bad schema...)."""


class ValidationError(DataError):
    """A record or value failed validation against its schema."""


class StoreError(ReproError):
    """Base class for document-store errors."""


class DuplicateKeyError(StoreError):
    """An insert violated a unique index (e.g. a duplicate ``_id``)."""


class QueryError(StoreError):
    """A query document used an unknown or malformed operator."""


class CollectionNotFoundError(StoreError):
    """A named collection does not exist in the database."""


class PreprocessError(ReproError):
    """A preprocessing step (VSM building, normalisation...) failed."""


class NotFittedError(ReproError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class MiningError(ReproError):
    """A mining algorithm received invalid parameters or data."""


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped before meeting its tolerance."""


class EngineError(ReproError):
    """The ADA-HEALTH engine was driven through an invalid state."""


class EndGoalError(EngineError):
    """No viable end-goal exists or an unknown end-goal was requested."""
