"""repro — a full reproduction of ADA-HEALTH (Cerquitelli et al., ICDEW 2016).

"Data mining for better healthcare: A path towards automated data
analysis?" proposes an automated medical analytics engine; this package
implements the engine and every substrate it needs, from scratch:

* :mod:`repro.data` — examination-log model, diabetic-care taxonomy and
  a calibrated synthetic generator matching the paper's dataset;
* :mod:`repro.kdb` — the Knowledge Base on an embedded Mongo-like
  document store;
* :mod:`repro.preprocess` — VSM building, transforms, characterisation;
* :mod:`repro.mining` — K-means (Lloyd + kd-tree filtering), decision
  trees, DBSCAN, hierarchical clustering, Apriori/FP-growth, rules,
  metrics and cross-validation;
* :mod:`repro.cloud` — execution backends for configuration sweeps;
* :mod:`repro.core` — the ADA-HEALTH engine: characterisation, viable
  end-goal identification, adaptive partial mining, algorithm
  optimisation, interestingness ranking and knowledge navigation.

Quickstart::

    from repro import ADAHealth, paper_dataset

    log = paper_dataset(seed=7)
    result = ADAHealth(seed=7).analyze(log, name="diabetes")
    print(result.summary())
"""

from repro.core.engine import ADAHealth, AnalysisResult, EngineConfig
from repro.data.synthetic import paper_dataset, small_dataset

__version__ = "1.0.0"

__all__ = [
    "ADAHealth",
    "AnalysisResult",
    "EngineConfig",
    "__version__",
    "paper_dataset",
    "small_dataset",
]
