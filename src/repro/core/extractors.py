"""Turn raw mining output into :class:`KnowledgeItem` envelopes.

Each extractor takes the output of one algorithm family and produces the
ranked, quality-annotated items the navigation layer presents. The
quality fields populated here are the ones the interestingness scorers
(:mod:`repro.core.interestingness`) consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.knowledge import KnowledgeItem
from repro.data.records import ExamLog
from repro.exceptions import EngineError
from repro.mining.dbscan import NOISE
from repro.mining.generalized import GeneralizedItemset
from repro.mining.itemsets import Itemset
from repro.mining.metrics import overall_similarity
from repro.mining.rules import AssociationRule


def _top_feature_names(
    center: np.ndarray,
    log: ExamLog,
    exam_codes: Sequence[int],
    top: int = 5,
) -> List[str]:
    order = np.argsort(-center)[:top]
    names = []
    for position in order:
        if center[position] <= 0:
            break
        names.append(log.taxonomy.by_code(int(exam_codes[position])).name)
    return names


def extract_cluster_items(
    matrix: np.ndarray,
    labels: np.ndarray,
    centers: np.ndarray,
    log: ExamLog,
    exam_codes: Sequence[int],
    end_goal: str = "patient-segmentation",
    run_quality: Optional[Dict[str, float]] = None,
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """One ``cluster_set`` item for the run plus one item per cluster.

    Per-cluster quality: ``cohesion`` (internal cosine similarity),
    ``size_share`` and ``distinctiveness`` (cosine distance of the
    centroid from the global centroid, in [0, 1]).
    """
    labels = np.asarray(labels)
    n = matrix.shape[0]
    if labels.shape[0] != n:
        raise EngineError("labels must align with the matrix")
    provenance = dict(provenance or {})
    global_centroid = matrix.mean(axis=0)
    global_norm = np.linalg.norm(global_centroid)

    items: List[KnowledgeItem] = []
    run_quality = dict(run_quality or {})
    run_quality.setdefault(
        "overall_similarity", float(overall_similarity(matrix, labels))
    )
    items.append(
        KnowledgeItem(
            kind="cluster_set",
            end_goal=end_goal,
            title=(
                f"{len(np.unique(labels))}-cluster segmentation of"
                f" {n} patients"
            ),
            payload={"n_clusters": int(len(np.unique(labels)))},
            quality=run_quality,
            provenance=provenance,
        )
    )

    for cluster in np.unique(labels):
        mask = labels == cluster
        members = matrix[mask]
        size = int(mask.sum())
        cohesion = float(
            overall_similarity(members, np.zeros(size, dtype=int))
        )
        center = (
            centers[int(cluster)]
            if centers is not None
            else members.mean(axis=0)
        )
        center_norm = np.linalg.norm(center)
        if center_norm > 0 and global_norm > 0:
            distinctiveness = float(
                1.0
                - (center @ global_centroid) / (center_norm * global_norm)
            )
        else:
            distinctiveness = 0.0
        # Describe the group by what *distinguishes* it from the cohort
        # (the exams everyone undergoes are not informative).
        top_exams = _top_feature_names(
            center - global_centroid, log, exam_codes
        )
        if not top_exams:
            top_exams = _top_feature_names(center, log, exam_codes)
        items.append(
            KnowledgeItem(
                kind="cluster",
                end_goal=end_goal,
                title=(
                    f"patient group {int(cluster)}: {size} patients,"
                    f" marked by {', '.join(top_exams[:3]) or 'no exams'}"
                ),
                payload={
                    "cluster": int(cluster),
                    "size": size,
                    "top_exams": top_exams,
                },
                quality={
                    "cohesion": cohesion,
                    "size_share": size / n,
                    "distinctiveness": max(0.0, min(1.0, distinctiveness)),
                },
                provenance=provenance,
            )
        )
    return items


def extract_itemset_items(
    itemsets: Sequence[Itemset],
    end_goal: str = "co-prescription-patterns",
    min_length: int = 2,
    top: int = 25,
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """Knowledge items for the strongest frequent co-prescriptions."""
    provenance = dict(provenance or {})
    candidates = [s for s in itemsets if len(s.items) >= min_length]
    candidates.sort(key=lambda s: (-len(s.items), -s.support))
    items = []
    for itemset in candidates[:top]:
        names = ", ".join(itemset.sorted_items())
        items.append(
            KnowledgeItem(
                kind="itemset",
                end_goal=end_goal,
                title=f"co-prescribed: {names}",
                payload={
                    "items": list(itemset.sorted_items()),
                    "count": itemset.count,
                },
                quality={
                    "support": itemset.support,
                    "length": float(len(itemset.items)),
                },
                provenance=provenance,
            )
        )
    return items


def extract_generalized_items(
    itemsets: Sequence[GeneralizedItemset],
    end_goal: str = "exam-category-profiles",
    top: int = 25,
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """Knowledge items for category-level and mixed-level patterns."""
    provenance = dict(provenance or {})
    interesting = [
        s for s in itemsets if s.level != "leaf" and len(s.items) >= 2
    ]
    interesting.sort(key=lambda s: (-len(s.items), -s.support))
    items = []
    for itemset in interesting[:top]:
        names = ", ".join(itemset.sorted_items())
        items.append(
            KnowledgeItem(
                kind="itemset",
                end_goal=end_goal,
                title=f"[{itemset.level}] pattern: {names}",
                payload={
                    "items": list(itemset.sorted_items()),
                    "level": itemset.level,
                    "count": itemset.count,
                },
                quality={
                    "support": itemset.support,
                    "length": float(len(itemset.items)),
                },
                provenance=provenance,
            )
        )
    return items


def extract_rule_items(
    rules: Sequence[AssociationRule],
    end_goal: str = "care-pathway-rules",
    top: int = 25,
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """Knowledge items for the strongest association rules."""
    provenance = dict(provenance or {})
    ordered = sorted(rules, key=lambda r: (-r.confidence, -r.lift))
    items = []
    for rule in ordered[:top]:
        lhs = ", ".join(sorted(rule.antecedent))
        rhs = ", ".join(sorted(rule.consequent))
        items.append(
            KnowledgeItem(
                kind="association_rule",
                end_goal=end_goal,
                title=f"{lhs} => {rhs}",
                payload={
                    "antecedent": sorted(rule.antecedent),
                    "consequent": sorted(rule.consequent),
                },
                quality={
                    "support": rule.support,
                    "confidence": rule.confidence,
                    "lift": rule.lift,
                    "leverage": rule.leverage,
                },
                provenance=provenance,
            )
        )
    return items


def extract_sequence_items(
    patterns,
    end_goal: str = "care-sequences",
    min_elements: int = 2,
    top: int = 25,
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """Knowledge items for frequent care-pathway sequences.

    Only genuinely temporal patterns (>= ``min_elements`` ordered
    visits) become items; single-visit patterns duplicate what the
    itemset extractor already covers.
    """
    provenance = dict(provenance or {})
    temporal = [p for p in patterns if len(p.elements) >= min_elements]
    temporal.sort(key=lambda p: (-len(p.elements), -p.support))
    items = []
    for pattern in temporal[:top]:
        steps = [
            ", ".join(sorted(element)) for element in pattern.elements
        ]
        items.append(
            KnowledgeItem(
                kind="sequence",
                end_goal=end_goal,
                title=" -> ".join(steps),
                payload={
                    "steps": [sorted(element) for element in
                              pattern.elements],
                    "count": pattern.count,
                },
                quality={
                    "support": pattern.support,
                    "n_elements": float(len(pattern.elements)),
                    "length": float(pattern.n_items),
                },
                provenance=provenance,
            )
        )
    return items


def extract_outlier_item(
    labels: np.ndarray,
    patient_ids: Sequence[int],
    end_goal: str = "outlier-screening",
    provenance: Optional[Dict] = None,
) -> KnowledgeItem:
    """One ``outlier_set`` item from a DBSCAN labelling."""
    labels = np.asarray(labels)
    noise_mask = labels == NOISE
    outliers = [
        int(patient_ids[i]) for i in np.nonzero(noise_mask)[0][:200]
    ]
    ratio = float(noise_mask.mean())
    return KnowledgeItem(
        kind="outlier_set",
        end_goal=end_goal,
        title=(
            f"{int(noise_mask.sum())} patients with atypical"
            f" examination histories"
        ),
        payload={"patient_ids": outliers, "truncated": len(outliers) < int(noise_mask.sum())},
        quality={"noise_ratio": ratio},
        provenance=dict(provenance or {}),
    )
