"""Knowledge ranking and interactive navigation.

"ADA-HEALTH also includes an interactive knowledge ranking algorithm
... which will help to select, among a set of knowledge items, which
ones are most interesting for a user. Based on user feedbacks, the
algorithm dynamically adjusts the way and order how knowledge items are
organized and presented to the user."

:class:`KnowledgeRanker` combines the item's intrinsic interestingness
score with learned per-kind and per-goal preference weights, updated
multiplicatively (exponentiated-gradient style) from user feedback.
:class:`NavigationSession` is the interaction surface: paging, filtering
and feedback, feeding both the ranker and (optionally) the K-DB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.interestingness import degree_rank
from repro.core.knowledge import DEGREES, KINDS, KnowledgeItem
from repro.exceptions import EngineError

#: Feedback degree -> learning signal in [-1, 1].
_SIGNALS = {"high": 1.0, "medium": 0.0, "low": -1.0}


class KnowledgeRanker:
    """Preference-adaptive ranking of knowledge items.

    The ranking score of an item is::

        score * kind_weight[item.kind] * goal_weight[item.end_goal]

    Weights start at 1 and are nudged multiplicatively by feedback:
    ``weight *= exp(learning_rate * signal)`` where the signal is +1 for
    'high', 0 for 'medium' and -1 for 'low' feedback. Weights are kept
    inside ``[0.25, 4.0]`` so no single kind can drown out the rest.
    """

    def __init__(self, learning_rate: float = 0.25) -> None:
        if learning_rate <= 0:
            raise EngineError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.kind_weights: Dict[str, float] = {kind: 1.0 for kind in KINDS}
        self.goal_weights: Dict[str, float] = {}

    def ranking_score(self, item: KnowledgeItem) -> float:
        """Preference-adjusted score of one item."""
        kind_weight = self.kind_weights.get(item.kind, 1.0)
        goal_weight = self.goal_weights.get(item.end_goal, 1.0)
        return item.score * kind_weight * goal_weight

    def rank(self, items: Iterable[KnowledgeItem]) -> List[KnowledgeItem]:
        """Items sorted by descending preference-adjusted score.

        Ties break on intrinsic score then title for determinism.
        """
        return sorted(
            items,
            key=lambda item: (
                -self.ranking_score(item),
                -item.score,
                item.title,
            ),
        )

    def record_feedback(self, item: KnowledgeItem, degree: str) -> None:
        """Update preference weights from one feedback event."""
        if degree not in _SIGNALS:
            raise EngineError(f"unknown degree {degree!r}")
        signal = _SIGNALS[degree]
        if signal == 0.0:
            return
        factor = math.exp(self.learning_rate * signal)
        self.kind_weights[item.kind] = _clip_weight(
            self.kind_weights.get(item.kind, 1.0) * factor
        )
        self.goal_weights[item.end_goal] = _clip_weight(
            self.goal_weights.get(item.end_goal, 1.0) * factor
        )


def _clip_weight(value: float) -> float:
    return max(0.25, min(4.0, value))


@dataclass
class NavigationSession:
    """Interactive walk over a ranked set of knowledge items.

    Parameters
    ----------
    items:
        The knowledge items to present.
    ranker:
        The preference model; a fresh neutral ranker by default.
    page_size:
        Items per page.
    kdb:
        Optional :class:`repro.kdb.KnowledgeBase`; when given, feedback
        is also persisted there (collection 6 of the paper's model).
    user:
        Name recorded with persisted feedback.
    """

    items: List[KnowledgeItem]
    ranker: KnowledgeRanker = field(default_factory=KnowledgeRanker)
    page_size: int = 10
    kdb: Optional[object] = None
    user: str = "anonymous"

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise EngineError("page_size must be >= 1")
        self._kind_filter: Optional[str] = None
        self._goal_filter: Optional[str] = None
        self._seen: set = set()

    # ------------------------------------------------------------------
    def filter_kind(self, kind: Optional[str]) -> "NavigationSession":
        """Restrict pages to one knowledge kind (None clears)."""
        if kind is not None and kind not in KINDS:
            raise EngineError(f"unknown kind {kind!r}")
        self._kind_filter = kind
        return self

    def filter_goal(self, goal: Optional[str]) -> "NavigationSession":
        """Restrict pages to one end-goal (None clears)."""
        self._goal_filter = goal
        return self

    def _visible(self) -> List[KnowledgeItem]:
        visible = self.items
        if self._kind_filter is not None:
            visible = [i for i in visible if i.kind == self._kind_filter]
        if self._goal_filter is not None:
            visible = [
                i for i in visible if i.end_goal == self._goal_filter
            ]
        return self.ranker.rank(visible)

    def page(self, number: int = 0) -> List[KnowledgeItem]:
        """The ``number``-th page of the current ranking (0-based)."""
        if number < 0:
            raise EngineError("page number must be >= 0")
        ranked = self._visible()
        start = number * self.page_size
        page_items = ranked[start : start + self.page_size]
        self._seen.update(id(item) for item in page_items)
        return page_items

    def n_pages(self) -> int:
        """Number of pages under the current filters."""
        visible = len(self._visible())
        return (visible + self.page_size - 1) // self.page_size

    def seen_count(self) -> int:
        """How many distinct items the user has been shown."""
        return len(self._seen)

    # ------------------------------------------------------------------
    def give_feedback(self, item: KnowledgeItem, degree: str) -> None:
        """Record a degree judgement: adapts the ranker, stores to K-DB."""
        if degree not in DEGREES:
            raise EngineError(f"unknown degree {degree!r}")
        item.degree = degree
        self.ranker.record_feedback(item, degree)
        if self.kdb is not None:
            self.kdb.record_feedback(item, self.user, degree)

    def summary(self) -> str:
        """One-line session summary."""
        return (
            f"{len(self.items)} items, {self.n_pages()} pages,"
            f" {self.seen_count()} seen"
        )
