"""Simulated domain expert providing interestingness feedback.

The paper's K-DB is "continuously enriched with new health care
professionals feedbacks": a physician labels each knowledge item with a
degree of interestingness {high, medium, low}, and those labels train
the models that (i) predict the interestingness of new items and (ii)
select end-goals for new datasets. The real experts are obviously not
reproducible, so this module supplies a configurable stochastic stand-in
whose *preference structure is learnable* — which is precisely what the
paper's self-learning loop requires. The paper also stresses
"differences in physician opinions based on their diverse background and
specialization"; the expert model captures that through per-kind and
per-end-goal affinities plus label noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.interestingness import degree_from_score
from repro.core.knowledge import DEGREES, KnowledgeItem
from repro.exceptions import EngineError


@dataclass
class ExpertProfile:
    """Preference structure of a simulated expert.

    ``kind_affinity`` and ``goal_affinity`` shift the item's base score
    before thresholding into a degree; ``noise`` is the standard
    deviation of a Gaussian perturbation (label noise); ``strictness``
    shifts all thresholds up (a strict expert calls fewer items 'high').
    """

    name: str
    kind_affinity: Dict[str, float] = field(default_factory=dict)
    goal_affinity: Dict[str, float] = field(default_factory=dict)
    noise: float = 0.05
    strictness: float = 0.0


#: Ready-made experts with different specialisations.
def clinician_profile() -> ExpertProfile:
    """A clinician: loves patient groups and treatment rules."""
    return ExpertProfile(
        name="clinician",
        kind_affinity={
            "cluster": 0.10,
            "cluster_set": 0.05,
            "association_rule": 0.10,
            "itemset": 0.0,
            "outlier_set": -0.05,
        },
        goal_affinity={"patient-segmentation": 0.05},
    )


def administrator_profile() -> ExpertProfile:
    """A hospital administrator: resource patterns over clinical detail."""
    return ExpertProfile(
        name="administrator",
        kind_affinity={
            "itemset": 0.12,
            "association_rule": 0.05,
            "cluster": -0.05,
            "cluster_set": 0.0,
            "outlier_set": 0.05,
        },
        goal_affinity={"co-prescription-patterns": 0.08},
        strictness=0.05,
    )


def researcher_profile() -> ExpertProfile:
    """A clinical researcher: outliers and surprising correlations."""
    return ExpertProfile(
        name="researcher",
        kind_affinity={
            "outlier_set": 0.15,
            "association_rule": 0.08,
            "itemset": -0.02,
            "cluster": 0.0,
            "cluster_set": 0.0,
        },
        goal_affinity={"outlier-screening": 0.10},
        noise=0.08,
    )


class SimulatedExpert:
    """Generates {high, medium, low} labels from a preference profile.

    Usage::

        expert = SimulatedExpert(clinician_profile(), seed=3)
        degree = expert.label(item)
    """

    def __init__(
        self, profile: Optional[ExpertProfile] = None, seed: int = 0
    ) -> None:
        self.profile = profile or clinician_profile()
        self._rng = np.random.default_rng(seed)

    def utility(self, item: KnowledgeItem) -> float:
        """The expert's latent utility for an item (before noise)."""
        value = item.score
        value += self.profile.kind_affinity.get(item.kind, 0.0)
        value += self.profile.goal_affinity.get(item.end_goal, 0.0)
        value -= self.profile.strictness
        return value

    def label(self, item: KnowledgeItem) -> str:
        """Draw a degree label for one item."""
        noisy = self.utility(item) + self._rng.normal(
            0.0, self.profile.noise
        )
        return degree_from_score(noisy)

    def label_items(
        self, items: Sequence[KnowledgeItem], attach: bool = False
    ) -> List[str]:
        """Label many items; optionally set ``item.degree`` in place."""
        labels = []
        for item in items:
            degree = self.label(item)
            labels.append(degree)
            if attach:
                item.degree = degree
        return labels

    def prefers(self, a: KnowledgeItem, b: KnowledgeItem) -> bool:
        """Noise-free pairwise preference (used to score rankings)."""
        return self.utility(a) > self.utility(b)
