"""Runtime consumption of adalint purity certificates.

The linter emits a committed ``adalint/certificates/v1`` artifact
(``contracts/certificates.json``, see :mod:`repro.lint.certs`) that
records, per project function, its transitive effect signature,
determinism class, picklability and exception envelope, plus a closure
fingerprint per engine phase. This module is the *consumer* side: a
dependency-free loader the engine uses to

* stamp :class:`repro.core.cache.AnalysisCache` entries with the
  producing goal pipeline's fingerprint (a mismatch is a metered
  ``cache.cert_miss``, never a stale hit), and
* let ``executor="auto"`` decline to fan work out to process pools
  when the submitted task's closure is not certified effect-free.

Degradation semantics: a missing artifact means "no contracts" and
every consumer behaves exactly as before this layer existed; a
corrupt or schema-mismatched artifact additionally warns. Contracts
can tighten behaviour, never break it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

#: Schema tag this loader understands (mirrors repro.lint.certs).
CERTS_SCHEMA = "adalint/certificates/v1"

#: Default artifact location, relative to the project root.
CERTS_RELPATH = "contracts/certificates.json"

#: Top-level fields of a well-formed certificate artifact. The
#: producer is ``repro.lint.certs.build_certificates``; ADA021
#: cross-checks the two field sets so they cannot drift silently.
CERTIFICATE_FIELDS = (
    "schema",
    "ruleset",
    "functions",
    "phases",
    "artifact_hash",
)

#: Fields of one per-function certificate record.
FUNCTION_CERT_FIELDS = (
    "code_hash",
    "complete",
    "determinism",
    "effect_free",
    "effects",
    "exceptions",
    "holes",
    "line",
    "picklable",
)


class ContractError(ValueError):
    """A certificate artifact failed validation."""


def validate_certificates(document: Dict[str, Any]) -> Dict[str, Any]:
    """Check an artifact is well-formed; returns it (raises otherwise)."""
    if not isinstance(document, dict):
        raise ContractError("certificate artifact must be an object")
    if document.get("schema") != CERTS_SCHEMA:
        raise ContractError(
            f"unknown certificate schema {document.get('schema')!r}"
        )
    missing = [f for f in CERTIFICATE_FIELDS if f not in document]
    if missing:
        raise ContractError(
            f"certificate artifact missing fields: {missing}"
        )
    if not isinstance(document["functions"], dict) or not isinstance(
        document["phases"], dict
    ):
        raise ContractError(
            "certificate functions/phases must be objects"
        )
    return document


@dataclass
class CertificateSet:
    """The loaded artifact, with convenience lookups."""

    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    phases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    artifact_hash: str = ""
    ruleset: str = ""
    path: Optional[Path] = None

    @classmethod
    def from_document(
        cls,
        document: Dict[str, Any],
        path: Optional[Path] = None,
    ) -> "CertificateSet":
        validate_certificates(document)
        return cls(
            functions=dict(document["functions"]),
            phases=dict(document["phases"]),
            artifact_hash=str(document["artifact_hash"]),
            ruleset=str(document["ruleset"]),
            path=path,
        )

    def function(self, qualid: str) -> Optional[Dict[str, Any]]:
        """One function's certificate record, or None."""
        return self.functions.get(qualid)

    def effect_free(self, qualid: str) -> Optional[bool]:
        """Certified effect-freedom; None when uncertified."""
        cert = self.functions.get(qualid)
        if cert is None:
            return None
        return bool(cert.get("effect_free"))

    def phase_fingerprint(self, phase: str) -> Optional[str]:
        """The closure fingerprint of one engine phase, or None."""
        record = self.phases.get(phase)
        if not record or not record.get("exists"):
            return None
        fingerprint = record.get("fingerprint")
        return str(fingerprint) if fingerprint else None

    def __len__(self) -> int:
        return len(self.functions)


def default_certificates_path() -> Optional[Path]:
    """The committed artifact for a source checkout, if present.

    Resolves relative to this file (``src/repro/core/`` →
    ``<root>/contracts/certificates.json``), so an installed package
    without the artifact simply runs uncertified.
    """
    candidate = (
        Path(__file__).resolve().parents[3] / CERTS_RELPATH
    )
    return candidate if candidate.is_file() else None


def load_certificates(
    path: Optional[Path] = None,
) -> Optional[CertificateSet]:
    """Load an artifact, degrading to None instead of raising.

    With no ``path``, the checkout's committed artifact is used when
    present and its absence is silent (installed packages have none).
    An explicitly named or unreadable/invalid artifact that cannot be
    loaded produces a :class:`UserWarning` — never an error: stale or
    absent certificates mean "behave as before", not "fail".
    """
    if path is None:
        path = default_certificates_path()
        if path is None:
            return None
    try:
        document = json.loads(
            Path(path).read_text(encoding="utf-8")
        )
        return CertificateSet.from_document(document, Path(path))
    except (OSError, UnicodeDecodeError, ValueError) as error:
        warnings.warn(
            f"ignoring certificate artifact {path}"
            f" ({type(error).__name__}: {error});"
            " running without contracts",
            UserWarning,
            stacklevel=2,
        )
        return None
