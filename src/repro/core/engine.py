"""The ADA-HEALTH engine: automated analysis with minimal user input.

The facade wiring every component of the architecture together, in the
order of the paper's Figure 1:

1. **characterise** the dataset and store descriptors in the K-DB;
2. **identify viable end-goals** with the formal feasibility rules,
   ranked by the learned interest model;
3. per goal, **transform** the data, run **adaptive partial mining**
   and the **algorithm optimiser**, and execute the mining algorithm;
4. wrap the output in **knowledge items**, score their interestingness
   (predicting the expert degree when feedback history exists);
5. **rank** the items and return a navigable result whose feedback
   flows back into the K-DB, the ranker and the interest model.

A single call does all of it::

    engine = ADAHealth(seed=7)
    result = engine.analyze(log, name="diabetes-2016")
    for item in result.top(10):
        print(item.describe())
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.executor import TaskFailure, TaskSpec, make_executor
from repro.cloud.resilience import (
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
)
from repro.core.cache import AnalysisCache, fingerprint_log
from repro.core.contracts import load_certificates
from repro.core.endgoals import (
    DEFAULT_END_GOALS,
    EndGoal,
    EndGoalInterestModel,
    ViableEndGoalFinder,
    ViableGoal,
)
from repro.core.extractors import (
    extract_cluster_items,
    extract_generalized_items,
    extract_itemset_items,
    extract_outlier_item,
    extract_rule_items,
    extract_sequence_items,
)
from repro.core.interestingness import degree_from_score, score_items
from repro.core.knowledge import KnowledgeItem
from repro.core.optimizer import KMeansOptimizer, OptimizationReport
from repro.core.partial import HorizontalPartialMiner, PartialMiningResult
from repro.core.ranking import KnowledgeRanker, NavigationSession
from repro.cloud.transport import log_lease, open_log
from repro.data.blocks import BlockedDataset
from repro.data.records import ExamLog
from repro.exceptions import EndGoalError, EngineError
from repro.mining.dbscan import DBSCAN
from repro.mining.generalized import mine_generalized_itemsets
from repro.mining.itemsets import mine_frequent_itemsets
from repro.mining.rules import generate_rules
from repro.obs.manifest import RunManifestBuilder
from repro.obs.metrics import Metrics
from repro.obs.tracer import NULL_TRACER
from repro.preprocess.characterization import characterize_log
from repro.preprocess.transforms import L2Normalizer
from repro.preprocess.vsm import VSMBuilder

#: Logs below this record count resolve ``executor="auto"`` to the
#: serial backend: worker startup and transport would dominate the
#: actual per-goal compute.
AUTO_EXECUTOR_MIN_RECORDS = 20_000


@dataclass
class EngineConfig:
    """Tunable knobs of the automated pipeline.

    Defaults are sized for interactive use on cohort-scale logs; the
    full paper-scale sweep (Table I) is available through
    :class:`repro.core.optimizer.KMeansOptimizer` directly.
    """

    k_values: Sequence[int] = (4, 6, 8, 10)
    partial_fractions: Sequence[float] = (0.2, 0.4, 1.0)
    partial_k_values: Sequence[int] = (6, 8)
    partial_tolerance: float = 0.05
    weighting: str = "binary"
    auto_transform: bool = False
    min_support: float = 0.15
    min_confidence: float = 0.7
    generalized_min_support: float = 0.3
    sequence_min_support: float = 0.2
    sequence_max_length: int = 3
    sequence_sample: int = 1500
    max_goals: Optional[int] = None
    items_per_goal: int = 25
    n_folds: int = 5
    #: Backend for the per-goal fan-out: "serial" (in-process), "threads",
    #: "process" (true CPU parallelism; goal pipelines are side-effect
    #: free so results merge deterministically), "simulated-cluster", or
    #: "auto" — serial on single-core hosts or small logs, otherwise a
    #: process pool fed through the shared-memory transport. The choice
    #: never changes results, only where they are computed.
    executor: str = "serial"
    executor_workers: int = 4
    #: Memoise per-goal results (and the K-means sweeps inside them) in
    #: an :class:`repro.core.cache.AnalysisCache` keyed on the dataset
    #: fingerprint, so re-analysing an unchanged log is nearly free.
    use_cache: bool = False
    #: Telemetry: a :class:`repro.obs.Tracer` emitting nested spans and
    #: a :class:`repro.obs.Metrics` registry. Defaults resolve to the
    #: no-op :data:`repro.obs.NULL_TRACER` and a fresh registry. Both
    #: are excluded from cache keys — they observe the pipeline, never
    #: change its results.
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None
    #: What to do when one goal pipeline raises: ``"raise"`` aborts the
    #: whole analysis (default); ``"degrade"`` records the goal as a
    #: failed :class:`GoalRun` in the manifest and carries on — the
    #: surviving goals still rank and persist, and the run manifest is
    #: stamped ``"degraded"``.
    on_goal_error: str = "raise"
    #: Per-task retry attempts beyond the first inside the goal fan-out
    #: (and the K-means sweep) — 0 disables retrying. Backoff jitter is
    #: seeded from the engine seed, so retried runs stay reproducible.
    retries: int = 0
    #: Per-task wall-clock budget (seconds) for the pooled backends; a
    #: hung task is failed with ``TaskTimeoutError`` and its siblings
    #: are respawned rather than lost. None disables timeouts.
    task_timeout: Optional[float] = None
    #: Consecutive infrastructure failures (timeouts, worker crashes,
    #: backend errors) before the fan-out backend is tripped and work
    #: falls back to a serial executor.
    breaker_threshold: int = 3
    #: Row-block size for the out-of-core data plane. When set, the
    #: segmentation pipeline hands the K-means optimiser a
    #: :class:`repro.data.BlockedDataset` view of the patient matrix
    #: (blocks are views over one backing array, so results stay
    #: byte-identical to the flat path). None keeps the flat matrix.
    block_rows: Optional[int] = None
    #: Purity certificates (:mod:`repro.core.contracts`). None loads
    #: the checkout's committed ``contracts/certificates.json`` when
    #: present; a path loads that artifact; False disables contracts;
    #: a :class:`~repro.core.contracts.CertificateSet` is used as-is.
    #: Certificates stamp cache entries (a fingerprint mismatch is a
    #: metered ``cache.cert_miss``) and gate ``executor="auto"``
    #: fan-out on certified effect-freedom. Stale or absent artifacts
    #: degrade to uncertified behaviour — an execution knob, so it is
    #: excluded from cache keys like the executor fields.
    certificates: Any = None


@dataclass
class GoalRun:
    """Everything produced while pursuing one end-goal.

    ``status`` is ``"completed"`` for a normal run or ``"failed"`` for
    a goal that raised under ``on_goal_error="degrade"`` (its ``error``
    then carries the ``"ExcType: message"`` summary and ``items`` is
    empty).
    """

    goal: EndGoal
    items: List[KnowledgeItem]
    optimization: Optional[OptimizationReport] = None
    partial: Optional[PartialMiningResult] = None
    notes: Dict[str, Any] = field(default_factory=dict)
    status: str = "completed"
    error: Optional[str] = None


@dataclass
class AnalysisResult:
    """Outcome of one automated analysis session."""

    dataset_id: Any
    profile: Any
    assessments: List[ViableGoal]
    runs: List[GoalRun]
    items: List[KnowledgeItem]  # ranked, best first
    engine: "ADAHealth"
    user: str

    def top(self, count: int = 10) -> List[KnowledgeItem]:
        """The ``count`` best-ranked knowledge items."""
        return self.items[:count]

    def run_for(self, goal_name: str) -> GoalRun:
        """The run record of a goal by name."""
        for run in self.runs:
            if run.goal.name == goal_name:
                return run
        raise EndGoalError(f"goal {goal_name!r} was not run")

    def failed_goals(self) -> List[str]:
        """Names of goals that failed under degraded-mode analysis."""
        return [
            run.goal.name for run in self.runs if run.status == "failed"
        ]

    @property
    def degraded(self) -> bool:
        """Did any goal fail (results cover only the survivors)?"""
        return bool(self.failed_goals())

    def navigate(self, page_size: int = 10) -> NavigationSession:
        """Open an interactive navigation session over the items.

        Feedback given through the session adapts the engine's ranker
        and is persisted in the K-DB.
        """
        return NavigationSession(
            items=self.items,
            ranker=self.engine.ranker,
            page_size=page_size,
            kdb=self.engine.kdb,
            user=self.user,
        )

    def summary(self) -> str:
        """Human-readable session report."""
        lines = [
            f"dataset {self.dataset_id}: {self.profile.n_rows} patients x"
            f" {self.profile.n_features} exam types"
            f" (sparsity {self.profile.sparsity:.2f})",
            "end-goals:",
        ]
        ran = {run.goal.name for run in self.runs}
        failed = set(self.failed_goals())
        for assessment in self.assessments:
            name = assessment.goal.name
            if name in failed:
                status = "FAILED"
            elif name in ran:
                status = "ran"
            else:
                status = "viable" if assessment.viable else "not viable"
            lines.append(
                f"  - {name}: {status} ({assessment.reason})"
            )
        if failed:
            lines.append(
                "degraded analysis: "
                + ", ".join(sorted(failed))
                + " failed; items below cover the surviving goals"
            )
        lines.append(f"knowledge items: {len(self.items)}")
        for item in self.top(5):
            lines.append(f"  * {item.describe()}")
        return "\n".join(lines)


class ADAHealth:
    """The automated medical data-analysis engine.

    Parameters
    ----------
    kdb:
        A :class:`repro.kdb.KnowledgeBase`; a fresh in-memory one by
        default.
    goals:
        End-goal registry (the paper's broad analysis families by
        default: segmentation, co-prescriptions, rules, sequences,
        outliers, category profiles).
    config:
        Pipeline knobs.
    seed:
        Seed for every stochastic step.
    cache:
        Optional :class:`repro.core.cache.AnalysisCache` for memoising
        per-goal results. When ``config.use_cache`` is set and no cache
        is given, one is created inside the engine's document store (so
        ``kdb.save`` persists it alongside the six collections).
    """

    def __init__(
        self,
        kdb=None,
        goals: Sequence[EndGoal] = DEFAULT_END_GOALS,
        config: Optional[EngineConfig] = None,
        seed: int = 0,
        cache: Optional[AnalysisCache] = None,
    ) -> None:
        if kdb is None:
            from repro.kdb.kdb import KnowledgeBase

            kdb = KnowledgeBase()
        self.kdb = kdb
        self.finder = ViableEndGoalFinder(goals)
        self.config = config or EngineConfig()
        self.seed = seed
        if cache is None and self.config.use_cache:
            cache = self.kdb.analysis_cache()
        self.cache = cache
        self.tracer = self.config.tracer or NULL_TRACER
        self.metrics = self.config.metrics or Metrics()
        if self.config.on_goal_error not in ("raise", "degrade"):
            raise EngineError(
                "on_goal_error must be 'raise' or 'degrade', got"
                f" {self.config.on_goal_error!r}"
            )
        if self.config.retries < 0:
            raise EngineError("retries must be >= 0")
        # Built once so every fan-out (and the optimizer's K sweep)
        # shares one policy and one breaker state across the session.
        self.retry_policy = (
            RetryPolicy(
                max_attempts=self.config.retries + 1, seed=seed
            )
            if self.config.retries > 0
            else None
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            metrics=self.metrics,
        )
        if self.cache is not None:
            self.cache.bind_metrics(self.metrics)
        self.certificates = self._resolve_certificates(
            self.config.certificates
        )
        if self.cache is not None and self.certificates is not None:
            # Entries are stamped with the goal pipeline's closure
            # fingerprint: a semantic edit anywhere under _run_goal
            # turns old entries into metered cert misses.
            self.cache.bind_certificate(
                self.certificates.phase_fingerprint("run-goal")
            )
        self.ranker = KnowledgeRanker()
        self.interest_model = EndGoalInterestModel(
            goal_names=[goal.name for goal in goals], seed=seed
        )

    # ------------------------------------------------------------------
    def analyze(
        self,
        log: ExamLog,
        name: str = "dataset",
        user: str = "anonymous",
        goals: Optional[Sequence[str]] = None,
    ) -> AnalysisResult:
        """Run the full automated pipeline on an examination log.

        Parameters
        ----------
        goals:
            Optional explicit goal names; by default every *viable* goal
            is pursued, in the interest model's preference order
            (limited by ``config.max_goals``).

        Every call — traced or not — leaves one run manifest in the
        K-DB ``runs`` collection: the execution record (goals, timings,
        cache traffic, failures) that past-experience lookups consult.
        A failing analysis records a ``"failed"`` manifest and re-raises.
        """
        manifest = RunManifestBuilder(
            dataset_fingerprint=fingerprint_log(log),
            dataset_name=name,
            user=user,
            seed=self.seed,
        )
        cache_before = (
            self.cache.stats() if self.cache is not None else None
        )
        resilience_before = _resilience_counters(self.metrics)
        try:
            with self.tracer.span("analyze", dataset=name, user=user):
                result = self._analyze(log, name, user, goals, manifest)
        except Exception as exc:  # records a "failed" manifest, re-raises
            self._record_cache_traffic(manifest, cache_before)
            self._record_resilience(manifest, resilience_before)
            self.kdb.record_run(
                manifest.fail(
                    f"{type(exc).__name__}: {exc}",
                    self.metrics.snapshot(),
                )
            )
            raise
        self._record_cache_traffic(manifest, cache_before)
        self._record_resilience(manifest, resilience_before)
        self.kdb.record_run(
            manifest.finish(len(result.items), self.metrics.snapshot())
        )
        return result

    def _analyze(
        self,
        log: ExamLog,
        name: str,
        user: str,
        goals: Optional[Sequence[str]],
        manifest: RunManifestBuilder,
    ) -> AnalysisResult:
        """The pipeline body of :meth:`analyze` (runs inside its span)."""
        with self.tracer.span("characterize"):
            profile = characterize_log(log)
            dataset_id = self.kdb.register_dataset(log, name)
            self.kdb.store_profile(dataset_id, profile.to_document())
        manifest.dataset["id"] = dataset_id

        with self.tracer.span("assess-goals"):
            assessments = self.finder.assess(profile)
            selected = self._select_goals(assessments, profile, goals)
        for assessment in assessments:
            manifest.assess_goal(
                assessment.goal.name, assessment.viable, assessment.reason
            )

        with self.tracer.span("run-goals", n_goals=len(selected)):
            runs = self._run_goals(
                selected, log, profile, dataset_id, manifest
            )

        # Goal pipelines are side-effect free (so they can run in worker
        # processes and be cached); their deferred K-DB writes happen
        # here, in goal order.
        for run in runs:
            transformation = run.notes.get("transformation")
            if transformation is not None:
                self.kdb.store_transformation(dataset_id, transformation)

        with self.tracer.span("score-and-rank"):
            items: List[KnowledgeItem] = []
            for run in runs:
                items.extend(run.items)
            score_items(items)
            self._attach_degrees(items)
            self.kdb.store_items(items, dataset_id)
            ranked = self.ranker.rank(items)
            for rank, item in enumerate(
                ranked[: self.config.items_per_goal]
            ):
                self.kdb.select_item(item, rank)

        return AnalysisResult(
            dataset_id=dataset_id,
            profile=profile,
            assessments=assessments,
            runs=runs,
            items=ranked,
            engine=self,
            user=user,
        )

    def _record_resilience(
        self,
        manifest: RunManifestBuilder,
        before: Dict[str, int],
    ) -> None:
        """Record this run's share of the resilience counters (deltas)
        plus the breaker's end-of-run state."""
        after = _resilience_counters(self.metrics)
        manifest.record_resilience(
            retries=after["resilience.retries"]
            - before["resilience.retries"],
            timeouts=after["resilience.timeouts"]
            - before["resilience.timeouts"],
            worker_crashes=after["resilience.worker_crashes"]
            - before["resilience.worker_crashes"],
            fallbacks=after["resilience.fallbacks"]
            - before["resilience.fallbacks"],
            faults_injected=after["resilience.faults_injected"]
            - before["resilience.faults_injected"],
            breaker=self.breaker.snapshot(),
        )

    def _record_cache_traffic(
        self,
        manifest: RunManifestBuilder,
        before: Optional[Dict[str, int]],
    ) -> None:
        """Record this run's share of the cache counters (deltas)."""
        if self.cache is None or before is None:
            manifest.record_cache(False, 0, 0, 0)
            return
        after = self.cache.stats()
        manifest.record_cache(
            True,
            after["hits"] - before["hits"],
            after["misses"] - before["misses"],
            after["stores"] - before["stores"],
            cert_misses=after.get("cert_misses", 0)
            - before.get("cert_misses", 0),
        )

    # ------------------------------------------------------------------
    def _select_goals(
        self,
        assessments: List[ViableGoal],
        profile,
        requested: Optional[Sequence[str]],
    ) -> List[EndGoal]:
        viable = [a.goal for a in assessments if a.viable]
        if requested is not None:
            chosen = []
            viable_names = {goal.name for goal in viable}
            for name in requested:
                goal = self.finder.by_name(name)
                if name not in viable_names:
                    raise EndGoalError(
                        f"goal {name!r} is not viable for this dataset"
                    )
                chosen.append(goal)
            return chosen
        ranked = self.interest_model.rank_goals(viable, profile)
        goals = [goal for goal, __ in ranked]
        if self.config.max_goals is not None:
            goals = goals[: self.config.max_goals]
        return goals

    def _attach_degrees(self, items: List[KnowledgeItem]) -> None:
        """Predict degrees from feedback history when available."""
        if self.kdb.feedback_count() >= 10:
            predictor = self.kdb.train_degree_predictor(seed=self.seed)
            predictor.predict_many(items, attach=True)
        else:
            for item in items:
                item.degree = degree_from_score(item.score)

    # ------------------------------------------------------------------
    # Goal fan-out: cache lookups, executor dispatch, ordered merge
    # ------------------------------------------------------------------
    def _run_goals(
        self,
        selected: List[EndGoal],
        log: ExamLog,
        profile,
        dataset_id,
        manifest: Optional[RunManifestBuilder] = None,
    ) -> List[GoalRun]:
        """Run the selected goals, concurrently where configured.

        End-goal pipelines are independent and side-effect free, so they
        are dispatched through the configured :mod:`repro.cloud` backend
        and merged back **in goal order** — results are identical across
        serial, thread and process execution. With a cache, goals whose
        (dataset fingerprint, goal, config, seed) key is already known
        are restored instead of recomputed.
        """
        if not selected:
            if manifest is not None:
                manifest.record_executor("serial", 1, 0)
            return []
        fingerprint: Optional[str] = None
        restored: Dict[str, GoalRun] = {}
        pending = list(selected)
        if self.cache is not None:
            fingerprint = fingerprint_log(log)
            pending = []
            for goal in selected:
                # Corrupt stored runs decode-fail into a miss and the
                # goal is recomputed (cache.corrupt counts them).
                hit = self.cache.get(
                    fingerprint,
                    "engine-goal-run",
                    self._goal_params(goal),
                    decode=lambda payload, goal=goal: (
                        self._goal_run_from_document(
                            payload, goal, dataset_id
                        )
                    ),
                )
                if hit is None:
                    pending.append(goal)
                else:
                    restored[goal.name] = hit
        if manifest is not None:
            for name, run in restored.items():
                manifest.add_goal(
                    name,
                    wall_s=0.0,
                    n_items=len(run.items),
                    cached=True,
                    algorithms=_run_algorithms(run),
                )

        computed: Dict[str, GoalRun] = {}
        degrade = self.config.on_goal_error == "degrade"
        executor_name = self._resolved_executor(log)
        if len(pending) <= 1 or executor_name == "serial":
            if manifest is not None:
                manifest.record_executor("serial", 1, 0)
            for goal in pending:
                t0 = time.perf_counter()
                try:
                    with self.tracer.span("goal", goal=goal.name):
                        run = self._run_goal(goal, log, profile, dataset_id)
                except Exception as exc:  # goal marked failed; degraded
                    # mode swallows it, raise mode re-raises
                    if manifest is not None:
                        manifest.add_goal(
                            goal.name,
                            wall_s=time.perf_counter() - t0,
                            status="failed",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    if not degrade:
                        raise
                    computed[goal.name] = _failed_goal_run(goal, exc)
                    continue
                computed[goal.name] = run
                if manifest is not None:
                    manifest.add_goal(
                        goal.name,
                        wall_s=time.perf_counter() - t0,
                        n_items=len(run.items),
                        algorithms=_run_algorithms(run),
                    )
        else:
            executor = self._goal_executor(executor_name)
            # The lease ships the log once: in-process backends pass it
            # through, process backends pickle a ~100-byte shared-memory
            # handle per task instead of the full record set.
            with log_lease(executor, log) as logref:
                tasks = [
                    TaskSpec(
                        _run_goal_task,
                        (self, goal.name, logref, profile, dataset_id),
                    )
                    for goal in pending
                ]
                outcome = executor.run(tasks)
            if manifest is not None:
                manifest.record_executor(
                    getattr(executor, "name", executor_name),
                    self.config.executor_workers,
                    outcome.n_failures,
                )
            for index, (goal, value) in enumerate(
                zip(pending, outcome.results)
            ):
                seconds = None
                if outcome.task_seconds is not None:
                    seconds = outcome.task_seconds[index]
                if seconds is not None:
                    # Goal pipelines ran in workers; replay their
                    # reported timings as child spans of "run-goals".
                    self.tracer.record_span(
                        "goal",
                        seconds,
                        goal=goal.name,
                        failed=isinstance(value, TaskFailure),
                    )
                if isinstance(value, TaskFailure):
                    if manifest is not None:
                        manifest.add_goal(
                            goal.name,
                            wall_s=seconds or 0.0,
                            status="failed",
                            error=(
                                f"{type(value.error).__name__}:"
                                f" {value.error}"
                            ),
                        )
                    if not degrade:
                        raise value.error
                    computed[goal.name] = _failed_goal_run(
                        goal, value.error
                    )
                    continue
                computed[goal.name] = value
                if manifest is not None:
                    manifest.add_goal(
                        goal.name,
                        wall_s=seconds or 0.0,
                        n_items=len(value.items),
                        algorithms=_run_algorithms(value),
                    )

        # Cache writes stay in the parent process so they survive
        # process-pool execution. Failed (degraded) goals are never
        # cached: a transient fault must not poison future runs.
        if self.cache is not None and fingerprint is not None:
            for goal in pending:
                run = computed[goal.name]
                if run.status != "completed":
                    continue
                self.cache.put(
                    fingerprint,
                    "engine-goal-run",
                    self._goal_params(goal),
                    self._goal_run_to_document(run),
                )
        return [
            restored[goal.name]
            if goal.name in restored
            else computed[goal.name]
            for goal in selected
        ]

    def _resolved_executor(self, log: ExamLog) -> str:
        """Resolve ``executor="auto"`` against the host and payload.

        Process pools only pay off when there are spare cores and the
        per-goal work dwarfs worker startup: single-core hosts and
        small logs resolve to "serial", everything else to "process"
        (which ships the log through the shared-memory transport).
        Explicit backend names pass through untouched. The choice never
        affects results — goal pipelines are deterministic and
        side-effect free — only where they execute. With purity
        certificates loaded, "auto" additionally declines to fan out
        a goal task whose closure is not *certified* effect-free
        (metered ``contracts.auto_serial_fallback``): the static
        invariant, not convention, authorises parallelism.
        """
        if self.config.executor != "auto":
            return self.config.executor
        if (os.cpu_count() or 1) <= 1:
            return "serial"
        if log.n_records < AUTO_EXECUTOR_MIN_RECORDS:
            return "serial"
        if not self._certified_for_fanout():
            self.metrics.counter(
                "contracts.auto_serial_fallback"
            ).inc()
            return "serial"
        return "process"

    def _resolve_certificates(self, spec: Any):
        """Resolve the ``certificates`` config knob to a loaded set."""
        if spec is False:
            return None
        if spec is None or spec is True:
            return load_certificates()
        if isinstance(spec, (str, Path)):
            return load_certificates(Path(spec))
        return spec  # an already-loaded CertificateSet

    def _certified_for_fanout(self) -> bool:
        """Whether certificates authorise the auto process fan-out.

        Missing artifact or an uncertified task degrade to True — the
        pre-certificate behaviour — because absence of contracts must
        never change results or availability, only a certificate that
        positively records the goal task as *not* effect-free blocks
        the fan-out.
        """
        certs = self.certificates
        if certs is None:
            return True
        qualid = f"{_run_goal_task.__module__}:_run_goal_task"
        cert = certs.function(qualid)
        if cert is None:
            return True
        return bool(cert.get("effect_free", True))

    def _goal_executor(self, name: Optional[str] = None):
        """Build the backend for the goal fan-out.

        ``name`` is the resolved backend (defaults to the configured
        one). Non-serial backends carry the engine's retry policy and
        task timeout and are wrapped in a breaker-guarded
        :class:`~repro.cloud.resilience.ResilientExecutor`, so repeated
        infrastructure failures downgrade the fan-out to a serial
        fallback instead of aborting the analysis.
        """
        cfg = self.config
        name = name or cfg.executor
        if name == "threads":
            backend = make_executor(
                "threads",
                max_workers=cfg.executor_workers,
                metrics=self.metrics,
                retry=self.retry_policy,
                task_timeout=cfg.task_timeout,
            )
        elif name == "process":
            backend = make_executor(
                "process",
                workers=cfg.executor_workers,
                metrics=self.metrics,
                retry=self.retry_policy,
                task_timeout=cfg.task_timeout,
            )
        elif name == "simulated-cluster":
            backend = make_executor(
                "simulated-cluster",
                n_workers=cfg.executor_workers,
                metrics=self.metrics,
                retry=self.retry_policy,
            )
        else:
            return make_executor(
                name,
                metrics=self.metrics,
                retry=self.retry_policy,
            )
        return ResilientExecutor(
            backend, breaker=self.breaker, metrics=self.metrics
        )

    def _goal_params(self, goal: EndGoal) -> Dict[str, Any]:
        """Cache-key parameters for one goal run.

        The execution knobs (``executor*``, ``use_cache``), the
        telemetry handles (``tracer``, ``metrics``) and the fault-
        tolerance knobs (``on_goal_error``, ``retries``,
        ``task_timeout``, ``breaker_threshold``) are excluded: they
        change *where* the pipeline runs, what observes it or how it
        recovers, never its result, so a sweep finished serially is
        reusable by a traced, retry-hardened process-parallel run (and
        vice versa).
        """
        excluded = {
            "executor",
            "executor_workers",
            "use_cache",
            "tracer",
            "metrics",
            "on_goal_error",
            "retries",
            "task_timeout",
            "breaker_threshold",
            "certificates",
        }
        params = {
            spec.name: getattr(self.config, spec.name)
            for spec in dataclass_fields(self.config)
            if spec.name not in excluded
        }
        return {"goal": goal.name, "config": params, "seed": self.seed}

    @staticmethod
    def _goal_run_to_document(run: GoalRun) -> Dict[str, Any]:
        return {
            "goal": run.goal.name,
            "items": [item.to_document() for item in run.items],
            "optimization": (
                run.optimization.to_document()
                if run.optimization is not None
                else None
            ),
            "partial": (
                run.partial.to_document()
                if run.partial is not None
                else None
            ),
            "notes": dict(run.notes),
        }

    def _goal_run_from_document(
        self, document: Dict[str, Any], goal: EndGoal, dataset_id
    ) -> GoalRun:
        items = [
            KnowledgeItem.from_document(doc) for doc in document["items"]
        ]
        # Cached items came from an earlier K-DB registration of the
        # same log; re-point their provenance at this session's dataset.
        for item in items:
            if "dataset_id" in item.provenance:
                item.provenance["dataset_id"] = dataset_id
        optimization = document.get("optimization")
        partial = document.get("partial")
        return GoalRun(
            goal=goal,
            items=items,
            optimization=(
                OptimizationReport.from_document(optimization)
                if optimization is not None
                else None
            ),
            partial=(
                PartialMiningResult.from_document(partial)
                if partial is not None
                else None
            ),
            notes=dict(document.get("notes", {})),
        )

    # ------------------------------------------------------------------
    # Per-goal pipelines
    # ------------------------------------------------------------------
    def _run_goal(
        self, goal: EndGoal, log: ExamLog, profile, dataset_id
    ) -> GoalRun:
        if goal.name == "patient-segmentation":
            return self._run_segmentation(goal, log, dataset_id)
        if goal.name == "co-prescription-patterns":
            return self._run_itemsets(goal, log, dataset_id)
        if goal.name == "care-pathway-rules":
            return self._run_rules(goal, log, dataset_id)
        if goal.name == "care-sequences":
            return self._run_sequences(goal, log, dataset_id)
        if goal.name == "outlier-screening":
            return self._run_outliers(goal, log, dataset_id)
        if goal.name == "guideline-compliance":
            return self._run_compliance(goal, log, dataset_id)
        if goal.name == "exam-category-profiles":
            return self._run_generalized(goal, log, dataset_id)
        raise EndGoalError(
            f"no pipeline registered for end-goal {goal.name!r}"
        )

    def _run_segmentation(self, goal, log, dataset_id) -> GoalRun:
        cfg = self.config
        weighting = cfg.weighting
        normalize = True
        if cfg.auto_transform:
            # The paper's "totally automatic strategy to select the
            # optimal data transformation": pilot-cluster the candidate
            # (weighting, scaling) combinations and keep the winner.
            from repro.preprocess.autoselect import TransformSelector

            selection = TransformSelector(seed=self.seed).select(log)
            weighting = selection.best.weighting
            normalize = selection.best.scaling == "l2"
        miner = HorizontalPartialMiner(
            fractions=cfg.partial_fractions,
            k_values=cfg.partial_k_values,
            tolerance=cfg.partial_tolerance,
            weighting=weighting,
            normalize=normalize,
            cache=self.cache,
            seed=self.seed,
        )
        partial = miner.mine(log)
        codes = partial.selected_codes
        vsm = VSMBuilder(weighting, exam_codes=codes).build(log)
        matrix = (
            L2Normalizer().transform(vsm.matrix)
            if normalize
            else vsm.matrix
        )
        # Deferred K-DB write: recorded in the notes and persisted by
        # ``analyze`` after the fan-out, keeping this pipeline free of
        # side effects (safe to run in a worker process or restore from
        # cache).
        transformation = {
            "weighting": weighting,
            "scaling": "l2" if normalize else "identity",
            "auto_selected": cfg.auto_transform,
            "n_features": len(codes),
            "feature_fraction": partial.selected_fraction,
        }
        k_values = [k for k in cfg.k_values if k < matrix.shape[0]]
        if not k_values:
            raise EngineError("dataset too small for any configured K")
        optimizer = KMeansOptimizer(
            k_values=k_values,
            n_folds=cfg.n_folds,
            cache=self.cache,
            seed=self.seed,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        # With block_rows set the optimiser sees a partitioned view of
        # the same backing matrix — identical bytes, blockwise access.
        report = optimizer.optimize(
            BlockedDataset(matrix, cfg.block_rows)
            if cfg.block_rows
            else matrix
        )
        best = report.best_row
        items = extract_cluster_items(
            matrix,
            best.labels,
            best.centers,
            log,
            codes,
            end_goal=goal.name,
            run_quality={
                "overall_similarity": best.overall_similarity,
                "accuracy": best.accuracy,
                "avg_precision": best.avg_precision,
                "avg_recall": best.avg_recall,
            },
            provenance={
                "algorithm": "kmeans",
                "k": best.k,
                "weighting": weighting,
                "feature_fraction": partial.selected_fraction,
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(
            goal=goal,
            items=items,
            optimization=report,
            partial=partial,
            notes={"transformation": transformation},
        )

    def _transactions(self, log: ExamLog) -> List[List[str]]:
        return log.transactions(by="patient")

    def _run_itemsets(self, goal, log, dataset_id) -> GoalRun:
        transactions = self._transactions(log)
        itemsets = mine_frequent_itemsets(
            transactions,
            self.config.min_support,
            algorithm="fpgrowth",
            metrics=self.metrics,
        )
        items = extract_itemset_items(
            itemsets,
            end_goal=goal.name,
            top=self.config.items_per_goal,
            provenance={
                "algorithm": "fpgrowth",
                "min_support": self.config.min_support,
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(
            goal=goal, items=items, notes={"n_itemsets": len(itemsets)}
        )

    def _run_rules(self, goal, log, dataset_id) -> GoalRun:
        transactions = self._transactions(log)
        itemsets = mine_frequent_itemsets(
            transactions,
            self.config.min_support,
            algorithm="fpgrowth",
            metrics=self.metrics,
        )
        rules = generate_rules(
            itemsets, min_confidence=self.config.min_confidence
        )
        items = extract_rule_items(
            rules,
            end_goal=goal.name,
            top=self.config.items_per_goal,
            provenance={
                "algorithm": "fpgrowth+rules",
                "min_support": self.config.min_support,
                "min_confidence": self.config.min_confidence,
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(goal=goal, items=items, notes={"n_rules": len(rules)})

    def _run_sequences(self, goal, log, dataset_id) -> GoalRun:
        from repro.mining.sequences import (
            mine_sequences,
            sequences_from_log,
        )

        cfg = self.config
        sequences = sequences_from_log(log)
        # Vertical partial mining for the expensive temporal miner: a
        # patient sample bounds the PrefixSpan cost; supports are
        # estimates over the sample (noted in the provenance).
        sampled = len(sequences) > cfg.sequence_sample
        if sampled:
            rng = np.random.default_rng(self.seed)
            picks = rng.choice(
                len(sequences), size=cfg.sequence_sample, replace=False
            )
            sequences = [sequences[i] for i in sorted(picks)]
        patterns = mine_sequences(
            sequences,
            cfg.sequence_min_support,
            max_length=cfg.sequence_max_length,
        )
        items = extract_sequence_items(
            patterns,
            end_goal=goal.name,
            top=cfg.items_per_goal,
            provenance={
                "algorithm": "prefixspan",
                "min_support": cfg.sequence_min_support,
                "sampled": sampled,
                "n_sequences": len(sequences),
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(
            goal=goal, items=items, notes={"n_patterns": len(patterns)}
        )

    def _run_outliers(self, goal, log, dataset_id) -> GoalRun:
        vsm = VSMBuilder(self.config.weighting).build(log)
        matrix = L2Normalizer().transform(vsm.matrix)
        eps = _eps_heuristic(matrix, seed=self.seed)
        model = DBSCAN(eps=eps, min_samples=5).fit(matrix)
        item = extract_outlier_item(
            model.labels_,
            vsm.patient_ids,
            end_goal=goal.name,
            provenance={
                "algorithm": "dbscan",
                "eps": eps,
                "min_samples": 5,
                "dataset_id": dataset_id,
            },
        )
        # Attach a ranked most-atypical list (kNN distance scores) so
        # navigation can show "the N strangest histories", not just a
        # flat noise set.
        from repro.mining.outliers import top_outliers

        indexes, scores = top_outliers(
            matrix, n_outliers=20, n_neighbors=5
        )
        item.payload["most_atypical"] = [
            {
                "patient_id": int(vsm.patient_ids[index]),
                "score": float(score),
            }
            for index, score in zip(indexes, scores)
        ]
        return GoalRun(
            goal=goal,
            items=[item],
            notes={"n_clusters": model.n_clusters()},
        )

    def _run_compliance(self, goal, log, dataset_id) -> GoalRun:
        from repro.core.guidelines import (
            assess_compliance,
            default_diabetes_guidelines,
            extract_compliance_items,
        )
        from repro.exceptions import DataError

        # Keep only the guidelines resolvable against this taxonomy
        # (scaled-down logs may lack some named exams).
        usable = []
        for guideline in default_diabetes_guidelines():
            try:
                if guideline.exam_name is not None:
                    log.taxonomy.by_name(guideline.exam_name)
                else:
                    log.taxonomy.codes_in_category(guideline.category)
                usable.append(guideline)
            except DataError:
                continue
        if not usable:
            return GoalRun(
                goal=goal, items=[], notes={"n_guidelines": 0}
            )
        report = assess_compliance(log, usable)
        items = extract_compliance_items(
            report,
            end_goal=goal.name,
            provenance={
                "algorithm": "guideline-assessment",
                "n_guidelines": len(usable),
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(
            goal=goal,
            items=items,
            notes={
                "n_guidelines": len(usable),
                "mean_patient_score": report.mean_patient_score,
            },
        )

    def _run_generalized(self, goal, log, dataset_id) -> GoalRun:
        transactions = self._transactions(log)
        generalized = mine_generalized_itemsets(
            transactions,
            log.taxonomy.parent_map(),
            self.config.generalized_min_support,
            max_length=4,
        )
        items = extract_generalized_items(
            generalized,
            end_goal=goal.name,
            top=self.config.items_per_goal,
            provenance={
                "algorithm": "generalized-fpgrowth",
                "min_support": self.config.generalized_min_support,
                "dataset_id": dataset_id,
            },
        )
        return GoalRun(
            goal=goal,
            items=items,
            notes={"n_generalized": len(generalized)},
        )

    # ------------------------------------------------------------------
    def record_goal_feedback(
        self, goal_name: str, profile, interested: bool
    ) -> None:
        """Teach the interest model whether a goal was worth running."""
        goal = self.finder.by_name(goal_name)
        self.interest_model.record_interaction(goal, profile, interested)


#: Counters whose per-run deltas land in the manifest's resilience
#: section (emitted by the executor backends and the breaker wrapper).
_RESILIENCE_COUNTERS = (
    "resilience.retries",
    "resilience.timeouts",
    "resilience.worker_crashes",
    "resilience.fallbacks",
    "resilience.faults_injected",
)


def _resilience_counters(metrics) -> Dict[str, int]:
    """Current values of the resilience counters (0 when untouched)."""
    return {
        name: metrics.counter_value(name)
        for name in _RESILIENCE_COUNTERS
    }


def _failed_goal_run(goal: EndGoal, error: Exception) -> GoalRun:
    """The degraded-mode placeholder for a goal whose pipeline raised."""
    return GoalRun(
        goal=goal,
        items=[],
        status="failed",
        error=f"{type(error).__name__}: {error}",
    )


def _run_algorithms(run: GoalRun) -> List[str]:
    """Distinct algorithm names recorded in a run's item provenance."""
    return sorted(
        {
            str(item.provenance["algorithm"])
            for item in run.items
            if item.provenance.get("algorithm")
        }
    )


def _run_goal_task(
    engine: "ADAHealth", goal_name: str, logref, profile, dataset_id
):
    """Module-level goal task (picklable for process backends).

    ``logref`` is whatever :func:`repro.cloud.transport.log_lease`
    shipped: the :class:`ExamLog` itself in-process, or a shared-memory
    handle that is attached for the duration of the goal pipeline.
    """
    goal = engine.finder.by_name(goal_name)
    with open_log(logref) as log:
        return engine._run_goal(goal, log, profile, dataset_id)


def _eps_heuristic(
    matrix: np.ndarray, quantile: float = 0.15, seed: int = 0
) -> float:
    """Pick a DBSCAN radius from a sample of pairwise distances."""
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    sample = matrix[rng.choice(n, size=min(n, 400), replace=False)]
    from repro.mining.distance import squared_euclidean

    distances = np.sqrt(squared_euclidean(sample, sample))
    positive = distances[distances > 0]
    if positive.size == 0:
        return 0.5
    return float(np.quantile(positive, quantile))
