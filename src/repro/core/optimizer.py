"""Algorithm-optimisation component (K selection for K-means).

Reproduces the paper's §IV machinery exactly:

    "Given a dataset and a clustering algorithm, our technique performs
    several runs of the mining activity with varying parameters (e.g.
    different numbers of clusters), thus obtaining several different
    cluster sets. [SSE is computed for each.] A classifier was then
    built to assess the robustness of clustering results by means of
    different quality metrics (such as accuracy, precision, recall),
    using the same input features of the clustering algorithm, and the
    class label assigned by the clustering algorithm itself as target.
    ... In our first implementation, we used decision trees. ...
    10-fold cross validation was used to evaluate the classification
    model. ... ADA-HEALTH automatically selects K = 8 that corresponds
    to the best overall classification results."

:class:`KMeansOptimizer` runs the K sweep, collects per-K rows with the
Table I columns (SSE, accuracy, average precision, average recall) and
applies the paper's combined selection rule: among the candidate K
values, pick the one with the best overall classification results
(mean of accuracy, average precision and average recall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.executor import SerialExecutor, TaskSpec
from repro.cloud.transport import matrix_lease
from repro.core.cache import AnalysisCache, fingerprint_array
from repro.data.blocks import BlockedDataset, open_matrix
from repro.exceptions import MiningError
from repro.obs.tracer import NULL_TRACER
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.distance import squared_euclidean
from repro.mining.kmeans import KMeans
from repro.mining.metrics import overall_similarity
from repro.mining.validation import cross_validate

#: The K values of the paper's Table I.
PAPER_K_VALUES = (6, 7, 8, 9, 10, 12, 15, 20)


@dataclass
class OptimizationRow:
    """One row of the optimisation table (one K value)."""

    k: int
    sse: float
    accuracy: float
    avg_precision: float
    avg_recall: float
    overall_similarity: float
    labels: Optional[np.ndarray] = None
    centers: Optional[np.ndarray] = None

    @property
    def combined(self) -> float:
        """The paper's 'overall classification results' — the selection
        criterion (mean of the three classification metrics)."""
        return (self.accuracy + self.avg_precision + self.avg_recall) / 3.0

    def as_table_row(self) -> Dict[str, float]:
        """The Table I columns only."""
        return {
            "K": self.k,
            "SSE": self.sse,
            "Accuracy": self.accuracy,
            "AVG Precision": self.avg_precision,
            "AVG Recall": self.avg_recall,
        }

    def to_document(self) -> Dict[str, Any]:
        """JSON-serialisable form (for the analysis cache / K-DB)."""
        return {
            "k": self.k,
            "sse": self.sse,
            "accuracy": self.accuracy,
            "avg_precision": self.avg_precision,
            "avg_recall": self.avg_recall,
            "overall_similarity": self.overall_similarity,
            "labels": (
                None if self.labels is None else self.labels.tolist()
            ),
            "centers": (
                None if self.centers is None else self.centers.tolist()
            ),
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "OptimizationRow":
        """Inverse of :meth:`to_document`."""
        labels = document.get("labels")
        centers = document.get("centers")
        return cls(
            k=int(document["k"]),
            sse=float(document["sse"]),
            accuracy=float(document["accuracy"]),
            avg_precision=float(document["avg_precision"]),
            avg_recall=float(document["avg_recall"]),
            overall_similarity=float(document["overall_similarity"]),
            labels=None if labels is None else np.array(labels, dtype=int),
            centers=(
                None if centers is None else np.array(centers, dtype=float)
            ),
        )


@dataclass
class OptimizationReport:
    """Full result of a K sweep."""

    rows: List[OptimizationRow]
    best_k: int
    sse_plateau: List[int]
    #: K values whose evaluation failed (empty on a clean sweep). The
    #: selection rule runs over the surviving rows only.
    failed_k: List[int] = field(default_factory=list)

    @property
    def best_row(self) -> OptimizationRow:
        for row in self.rows:
            if row.k == self.best_k:
                return row
        raise MiningError("best_k missing from rows")  # pragma: no cover

    def to_document(self) -> Dict[str, Any]:
        """JSON-serialisable form (for the analysis cache / K-DB)."""
        return {
            "rows": [row.to_document() for row in self.rows],
            "best_k": self.best_k,
            "sse_plateau": list(self.sse_plateau),
            "failed_k": list(self.failed_k),
        }

    @classmethod
    def from_document(
        cls, document: Dict[str, Any]
    ) -> "OptimizationReport":
        """Inverse of :meth:`to_document`."""
        return cls(
            rows=[
                OptimizationRow.from_document(row)
                for row in document["rows"]
            ],
            best_k=int(document["best_k"]),
            sse_plateau=[int(k) for k in document["sse_plateau"]],
            # Documents cached before failed_k existed lack the key.
            failed_k=[int(k) for k in document.get("failed_k", [])],
        )

    def format_table(self) -> str:
        """Render the Table I layout (metrics in percent, as the paper)."""
        lines = [
            f"{'K':>4} {'SSE':>10} {'Accuracy':>9}"
            f" {'AVG Prec':>9} {'AVG Rec':>9}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.k:>4} {row.sse:>10.2f} {row.accuracy * 100:>9.2f}"
                f" {row.avg_precision * 100:>9.2f}"
                f" {row.avg_recall * 100:>9.2f}"
            )
        lines.append(f"selected K = {self.best_k}")
        return "\n".join(lines)


class KMeansOptimizer:
    """Sweep K, score each cluster set, select the best configuration.

    Parameters
    ----------
    k_values:
        Candidate K values (the paper's Table I set by default).
    n_folds:
        Cross-validation folds for the robustness classifier (paper: 10).
    tree_params:
        Keyword arguments for the decision tree (depth caps etc.).
    classifier_factory:
        Optional zero-argument callable returning a fresh robustness
        classifier (``fit``/``predict``). Overrides the default decision
        tree — the paper used trees "in our first implementation",
        explicitly leaving the model pluggable (see the classifier
        ablation benchmark for NB / KNN alternatives).
    kmeans_params:
        Keyword arguments for :class:`repro.mining.KMeans`.
    executor:
        Execution backend for the sweep (serial by default). The sweep's
        tasks are picklable :class:`repro.cloud.TaskSpec`s, so every
        backend works, including
        :class:`repro.cloud.ProcessPoolExecutorBackend` — as long as
        any custom ``classifier_factory`` itself pickles.
    cache:
        Optional :class:`repro.core.cache.AnalysisCache`. Per-K rows are
        memoised on the data fingerprint and the full sweep parameters;
        a repeated or extended sweep only computes the new K values.
        (Skipped when a custom ``classifier_factory`` is supplied — an
        arbitrary callable cannot be fingerprinted.)
    seed:
        Seed forwarded to K-means and to the CV splitters.
    retry:
        Optional :class:`repro.cloud.RetryPolicy` applied per task by
        the default serial executor. Ignored when an explicit
        ``executor`` is supplied — configure retries on that backend
        instead.
    streaming:
        When True and :meth:`optimize` receives a
        :class:`repro.data.BlockedDataset`, each K is evaluated with
        the one-pass minibatch :meth:`repro.mining.KMeans.partial_fit`
        engine instead of the exact restarted Lloyd fit — O(block)
        working memory, approximate centres. The default (False) runs
        the exact algorithm on the blocked dataset's backing matrix,
        producing results byte-identical to the flat path.
    """

    def __init__(
        self,
        k_values: Sequence[int] = PAPER_K_VALUES,
        n_folds: int = 10,
        tree_params: Optional[Dict] = None,
        classifier_factory: Optional[Callable[[], object]] = None,
        kmeans_params: Optional[Dict] = None,
        executor=None,
        cache: Optional[AnalysisCache] = None,
        seed: int = 0,
        tracer=None,
        metrics=None,
        retry=None,
        streaming: bool = False,
    ) -> None:
        if not k_values:
            raise MiningError("k_values must be non-empty")
        if any(k < 2 for k in k_values):
            raise MiningError("all k_values must be >= 2")
        self.k_values = list(k_values)
        self.n_folds = n_folds
        self.tree_params = dict(tree_params or {})
        self.tree_params.setdefault("max_depth", 12)
        self.tree_params.setdefault("min_samples_leaf", 3)
        self.classifier_factory = classifier_factory
        self.kmeans_params = dict(kmeans_params or {})
        self.kmeans_params.setdefault("n_init", 3)
        self.executor = executor or SerialExecutor(retry=retry)
        self.cache = cache
        self.seed = seed
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self.streaming = streaming

    # ------------------------------------------------------------------
    def evaluate_k(self, data: np.ndarray, k: int) -> OptimizationRow:
        """Cluster with one K and assess the result's robustness."""
        model = KMeans(k, seed=self.seed, **self.kmeans_params).fit(data)
        labels = model.labels_
        if labels is None or model.inertia_ is None:
            raise RuntimeError("KMeans fit left labels_/inertia_ unset")
        factory = self.classifier_factory or (
            lambda: DecisionTreeClassifier(
                seed=self.seed, **self.tree_params
            )
        )
        metrics = cross_validate(
            factory,
            data,
            labels,
            n_splits=self.n_folds,
            seed=self.seed,
        )
        return OptimizationRow(
            k=k,
            sse=float(model.inertia_),
            accuracy=metrics["accuracy"],
            avg_precision=metrics["avg_precision"],
            avg_recall=metrics["avg_recall"],
            overall_similarity=float(overall_similarity(data, labels)),
            labels=labels,
            centers=model.cluster_centers_,
        )

    def evaluate_k_streaming(
        self, blocked: BlockedDataset, k: int
    ) -> OptimizationRow:
        """Minibatch evaluation of one K over a blocked dataset.

        Feeds the blocks through :meth:`repro.mining.KMeans.partial_fit`
        (one pass, O(block) working memory), then assigns labels and
        accumulates the SSE blockwise against the final centres. The
        robustness classifier protocol is unchanged.
        """
        model = KMeans(k, seed=self.seed, **self.kmeans_params)
        for block in blocked.iter_blocks():
            model.partial_fit(block)
        centers = model.cluster_centers_
        if centers is None:
            raise MiningError(
                f"streaming K={k} saw only {blocked.n_rows} rows;"
                " need at least K"
            )
        label_parts: List[np.ndarray] = []
        sse = 0.0
        for block in blocked.iter_blocks():
            distances = squared_euclidean(block, centers)
            labels = np.argmin(distances, axis=1)
            sse += float(
                distances[np.arange(len(labels)), labels].sum()
            )
            label_parts.append(labels)
        labels = np.concatenate(label_parts)
        factory = self.classifier_factory or (
            lambda: DecisionTreeClassifier(
                seed=self.seed, **self.tree_params
            )
        )
        metrics = cross_validate(
            factory,
            blocked.matrix,
            labels,
            n_splits=self.n_folds,
            seed=self.seed,
        )
        return OptimizationRow(
            k=k,
            sse=sse,
            accuracy=metrics["accuracy"],
            avg_precision=metrics["avg_precision"],
            avg_recall=metrics["avg_recall"],
            overall_similarity=float(
                overall_similarity(blocked.matrix, labels)
            ),
            labels=labels,
            centers=centers,
        )

    def optimize(self, data) -> OptimizationReport:
        """Run the sweep and apply the combined selection rule.

        ``data`` is a matrix or a :class:`repro.data.BlockedDataset`
        (same results either way unless ``streaming`` is on — blocks
        are views over the backing matrix). Cached K values (same data,
        same parameters) are restored without recomputation; only the
        misses are dispatched to the executor, as picklable task specs.
        With a process backend the matrix travels as a shared-memory
        handle held by a lease for the duration of the sweep — each
        task ships ~100 bytes instead of the matrix. Cache writes
        happen here, in the calling process, so results computed by
        worker processes are memoised too.
        """
        blocked = data if isinstance(data, BlockedDataset) else None
        matrix = np.asarray(
            blocked.matrix if blocked is not None else data,
            dtype=np.float64,
        )
        if blocked is not None and matrix is not blocked.matrix:
            blocked = BlockedDataset(matrix, blocked.block_rows)
        streaming = self.streaming and blocked is not None
        with self.tracer.span(
            "kmeans-optimize",
            n_samples=int(matrix.shape[0]),
            k_values=list(self.k_values),
        ) as sweep_span:
            rows: List[OptimizationRow] = []
            pending = list(self.k_values)
            fingerprint: Optional[str] = None
            if self.cache is not None and self.classifier_factory is None:
                fingerprint = fingerprint_array(matrix)
                pending = []
                for k in self.k_values:
                    # Corrupt stored rows decode-fail into a miss and
                    # are recomputed below (cache.corrupt counts them).
                    hit = self.cache.get(
                        fingerprint,
                        "kmeans-optimizer-row",
                        self._cell_params(k),
                        decode=OptimizationRow.from_document,
                    )
                    if hit is None:
                        pending.append(k)
                    else:
                        rows.append(hit)
            with matrix_lease(self.executor, matrix) as (ref,):
                # The model_factory hole below both tasks is the
                # optimizer's own (seeded) KMeans constructor — a
                # higher-order seam ADA019 cannot see through.
                if streaming:
                    tasks = [
                        TaskSpec(  # adalint: disable=ADA019
                            _evaluate_k_streaming_task,
                            (self, ref, blocked.block_rows, k),
                        )
                        for k in pending
                    ]
                else:
                    tasks = [
                        TaskSpec(  # adalint: disable=ADA019
                            _evaluate_k_task, (self, ref, k)
                        )
                        for k in pending
                    ]
                outcome = self.executor.run(tasks)
            failed_k: List[int] = []
            for index, (k, value) in enumerate(
                zip(pending, outcome.results)
            ):
                seconds = None
                if outcome.task_seconds is not None:
                    seconds = outcome.task_seconds[index]
                if seconds is not None:
                    # Per-K timings may have been measured in a worker
                    # process; replay them here as child spans.
                    self.tracer.record_span(
                        "kmeans-k",
                        seconds,
                        k=k,
                        failed=not isinstance(value, OptimizationRow),
                    )
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "optimizer.k_seconds"
                        ).observe(seconds)
                if not isinstance(value, OptimizationRow):
                    failed_k.append(k)
                    continue
                rows.append(value)
                if fingerprint is not None:
                    self.cache.put(
                        fingerprint,
                        "kmeans-optimizer-row",
                        self._cell_params(k),
                        value.to_document(),
                    )
            if not rows:
                raise MiningError(
                    "every optimisation run failed"
                    f" (K values: {sorted(failed_k)})"
                )
            rows.sort(key=lambda row: row.k)
            best_k = max(rows, key=lambda row: row.combined).k
            sweep_span.set(
                best_k=best_k,
                n_cached=len(self.k_values) - len(pending),
                n_failures=outcome.n_failures,
            )
            return OptimizationReport(
                rows=rows,
                best_k=best_k,
                sse_plateau=sse_plateau(rows),
                failed_k=sorted(failed_k),
            )

    def _cell_params(self, k: int) -> Dict[str, Any]:
        """Everything that determines one per-K row, for cache keys.

        ``streaming`` is part of the key: the minibatch engine is a
        different estimator, so its rows must never satisfy (or be
        satisfied by) an exact sweep's lookups.
        """
        return {
            "k": k,
            "n_folds": self.n_folds,
            "tree_params": self.tree_params,
            "kmeans_params": self.kmeans_params,
            "seed": self.seed,
            "streaming": bool(self.streaming),
        }


def _evaluate_k_task(
    optimizer: "KMeansOptimizer", ref, k: int
) -> OptimizationRow:
    """Module-level task body so sweeps pickle for process backends.

    ``ref`` is whatever the matrix lease produced: the matrix itself
    in-process, or a :class:`repro.data.SharedMatrixHandle` that
    :func:`repro.data.open_matrix` attaches for the duration of the
    evaluation and detaches in ``finally``.
    """
    with open_matrix(ref) as matrix:
        return optimizer.evaluate_k(matrix, k)


def _evaluate_k_streaming_task(
    optimizer: "KMeansOptimizer", ref, block_rows: int, k: int
) -> OptimizationRow:
    """Streaming task body: rebuild the blocked view around the ref."""
    with open_matrix(ref) as matrix:
        return optimizer.evaluate_k_streaming(
            BlockedDataset(matrix, block_rows), k
        )


def sse_plateau(
    rows: Sequence[OptimizationRow], knee_ratio: float = 0.7
) -> List[int]:
    """K values where the SSE curve has flattened (the paper's
    'good values for K' band — 8..20 in Table I).

    A K is on the plateau when the local SSE drop per unit K has fallen
    below ``knee_ratio`` times the average drop rate over the sweep.
    """
    if len(rows) < 3:
        return [row.k for row in rows]
    ks = np.array([row.k for row in rows], dtype=float)
    sses = np.array([row.sse for row in rows])
    total_rate = (sses[0] - sses[-1]) / (ks[-1] - ks[0])
    if total_rate <= 0:
        return [row.k for row in rows]
    plateau = []
    for i in range(1, len(rows)):
        local_rate = (sses[i - 1] - sses[i]) / (ks[i] - ks[i - 1])
        if local_rate < knee_ratio * total_rate:
            plateau.append(int(ks[i]))
    return plateau
