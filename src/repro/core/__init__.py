"""ADA-HEALTH core: the paper's contribution, assembled.

Public surface::

    from repro.core import (
        ADAHealth, AnalysisResult, EngineConfig,        # engine
        KMeansOptimizer, OptimizationReport,            # Table I machinery
        HorizontalPartialMiner, VerticalPartialMiner,   # partial mining
        ViableEndGoalFinder, EndGoalInterestModel,      # end-goals
        KnowledgeItem, KnowledgeRanker, NavigationSession,
        SimulatedExpert,
    )
"""

from repro.core.architecture import (
    COMPONENTS,
    INTERACTIONS,
    adjacency,
    render_text,
)
from repro.core.cache import (
    AnalysisCache,
    fingerprint_array,
    fingerprint_log,
    fingerprint_params,
    fingerprint_transactions,
)
from repro.core.endgoals import (
    DEFAULT_END_GOALS,
    EndGoal,
    EndGoalInterestModel,
    ViableEndGoalFinder,
    ViableGoal,
    goal_features,
)
from repro.core.engine import (
    ADAHealth,
    AnalysisResult,
    EngineConfig,
    GoalRun,
)
from repro.core.extractors import (
    extract_cluster_items,
    extract_generalized_items,
    extract_itemset_items,
    extract_outlier_item,
    extract_rule_items,
    extract_sequence_items,
)
from repro.core.guidelines import (
    ComplianceReport,
    Guideline,
    GuidelineResult,
    assess_compliance,
    default_diabetes_guidelines,
    extract_compliance_items,
    past_experience,
)
from repro.core.feedback import (
    ExpertProfile,
    SimulatedExpert,
    administrator_profile,
    clinician_profile,
    researcher_profile,
)
from repro.core.interestingness import (
    degree_from_score,
    degree_rank,
    score_item,
    score_items,
)
from repro.core.knowledge import DEGREES, KINDS, KnowledgeItem
from repro.core.optimizer import (
    PAPER_K_VALUES,
    KMeansOptimizer,
    OptimizationReport,
    OptimizationRow,
    sse_plateau,
)
from repro.core.partial import (
    PAPER_FRACTIONS,
    PAPER_TOLERANCE,
    HorizontalPartialMiner,
    PartialMiningResult,
    PartialRun,
    VerticalPartialMiner,
)
from repro.core.ranking import KnowledgeRanker, NavigationSession
from repro.core.report import render_report, save_report

__all__ = [
    "ADAHealth",
    "AnalysisCache",
    "AnalysisResult",
    "COMPONENTS",
    "ComplianceReport",
    "DEFAULT_END_GOALS",
    "DEGREES",
    "EndGoal",
    "EndGoalInterestModel",
    "EngineConfig",
    "ExpertProfile",
    "GoalRun",
    "Guideline",
    "GuidelineResult",
    "HorizontalPartialMiner",
    "INTERACTIONS",
    "KINDS",
    "KMeansOptimizer",
    "KnowledgeItem",
    "KnowledgeRanker",
    "NavigationSession",
    "OptimizationReport",
    "OptimizationRow",
    "PAPER_FRACTIONS",
    "PAPER_K_VALUES",
    "PAPER_TOLERANCE",
    "PartialMiningResult",
    "PartialRun",
    "SimulatedExpert",
    "VerticalPartialMiner",
    "ViableEndGoalFinder",
    "ViableGoal",
    "adjacency",
    "administrator_profile",
    "assess_compliance",
    "clinician_profile",
    "default_diabetes_guidelines",
    "degree_from_score",
    "degree_rank",
    "extract_cluster_items",
    "extract_compliance_items",
    "extract_generalized_items",
    "extract_itemset_items",
    "extract_outlier_item",
    "extract_rule_items",
    "extract_sequence_items",
    "fingerprint_array",
    "fingerprint_log",
    "fingerprint_params",
    "fingerprint_transactions",
    "goal_features",
    "past_experience",
    "render_report",
    "render_text",
    "researcher_profile",
    "save_report",
    "score_item",
    "score_items",
    "sse_plateau",
]
