"""Identification of viable analysis end-goals.

"This is the core and one of the most innovative contributions of the
ADA-HEALTH architecture. ... The key components are (i) a knowledge
database storing past user feedback ..., (ii) an algorithm to identify
viable end-goals, and (iii) an algorithm to select end-goals of
interest."

Three pieces, mirroring the paper:

* :data:`DEFAULT_END_GOALS` — the registry of broadly-defined analyses
  the paper's introduction motivates (patient segmentation,
  co-prescription patterns, care-pathway rules, outlier screening,
  category-level profiles);
* :class:`ViableEndGoalFinder` — "a set of formal rules able to predict
  the feasible analysis end-goals on a given dataset": predicates over
  the dataset's statistical profile;
* :class:`EndGoalInterestModel` — "addressed again as a classification
  problem ... trained by previous user interactions": learns which
  viable goals a given user finds interesting, and, as the paper claims,
  gets more accurate as interactions accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EndGoalError
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.preprocess.characterization import DatasetProfile


@dataclass(frozen=True)
class EndGoal:
    """A broadly-defined analysis end-goal.

    ``feasible`` is the formal viability rule: a predicate over the
    dataset profile returning ``(viable, reason)``.
    """

    name: str
    description: str
    kind: str  # the knowledge kind the goal produces
    algorithm_family: str
    feasible: Callable[[DatasetProfile], Tuple[bool, str]]


def _always(profile: DatasetProfile) -> Tuple[bool, str]:
    return True, "no structural requirement"


def _needs_cohort(profile: DatasetProfile) -> Tuple[bool, str]:
    if profile.n_rows < 50:
        return False, f"cohort too small ({profile.n_rows} < 50 patients)"
    return True, f"cohort of {profile.n_rows} patients is sufficient"


def _needs_transactions(profile: DatasetProfile) -> Tuple[bool, str]:
    if profile.mean_row_nonzeros < 2:
        return False, "patients average fewer than 2 distinct exams"
    if profile.density > 0.9:
        return False, "data is dense; itemset mining adds nothing"
    return True, "sparse transactional structure present"


def _needs_skew(profile: DatasetProfile) -> Tuple[bool, str]:
    if profile.gini < 0.3:
        return (
            False,
            "feature frequencies are near-uniform; no informative tail",
        )
    return True, f"frequency skew present (gini={profile.gini:.2f})"


def _needs_density_contrast(profile: DatasetProfile) -> Tuple[bool, str]:
    if profile.n_rows < 100:
        return False, "too few patients for density estimation"
    if profile.std_row_nonzeros == 0:
        return False, "all patients have identical exam breadth"
    return True, "row-density contrast allows outlier screening"


DEFAULT_END_GOALS: Tuple[EndGoal, ...] = (
    EndGoal(
        name="patient-segmentation",
        description=(
            "Discover groups of patients with similar examination"
            " history (clustering)."
        ),
        kind="cluster_set",
        algorithm_family="clustering",
        feasible=_needs_cohort,
    ),
    EndGoal(
        name="co-prescription-patterns",
        description=(
            "Identify examinations commonly prescribed together"
            " (frequent itemsets)."
        ),
        kind="itemset",
        algorithm_family="pattern-mining",
        feasible=_needs_transactions,
    ),
    EndGoal(
        name="care-pathway-rules",
        description=(
            "Derive implication rules between examinations"
            " (association rules)."
        ),
        kind="association_rule",
        algorithm_family="pattern-mining",
        feasible=_needs_transactions,
    ),
    EndGoal(
        name="care-sequences",
        description=(
            "Discover recurring temporal sequences of visits"
            " (sequential patterns over dated examinations)."
        ),
        kind="sequence",
        algorithm_family="pattern-mining",
        feasible=_needs_transactions,
    ),
    EndGoal(
        name="outlier-screening",
        description=(
            "Flag patients whose examination history deviates from"
            " every dense group (density-based outliers)."
        ),
        kind="outlier_set",
        algorithm_family="clustering",
        feasible=_needs_density_contrast,
    ),
    EndGoal(
        name="guideline-compliance",
        description=(
            "Assess adherence of the delivered care to clinical"
            " guidelines (minimum examination frequencies)."
        ),
        kind="profile",
        algorithm_family="assessment",
        feasible=_needs_cohort,
    ),
    EndGoal(
        name="exam-category-profiles",
        description=(
            "Summarise behaviour at taxonomy level (generalised"
            " itemsets across abstraction levels)."
        ),
        kind="itemset",
        algorithm_family="pattern-mining",
        feasible=_needs_skew,
    ),
)


@dataclass
class ViableGoal:
    """A goal judged viable (or not) for a dataset, with the reason."""

    goal: EndGoal
    viable: bool
    reason: str


class ViableEndGoalFinder:
    """Apply the formal feasibility rules to a dataset profile."""

    def __init__(
        self, goals: Sequence[EndGoal] = DEFAULT_END_GOALS
    ) -> None:
        if not goals:
            raise EndGoalError("no end-goals registered")
        names = [goal.name for goal in goals]
        if len(set(names)) != len(names):
            raise EndGoalError("end-goal names must be unique")
        self.goals = list(goals)

    def assess(self, profile: DatasetProfile) -> List[ViableGoal]:
        """Evaluate every registered goal against the profile."""
        results = []
        for goal in self.goals:
            viable, reason = goal.feasible(profile)
            results.append(
                ViableGoal(goal=goal, viable=viable, reason=reason)
            )
        return results

    def viable(self, profile: DatasetProfile) -> List[EndGoal]:
        """Only the goals whose rules pass."""
        return [
            assessment.goal
            for assessment in self.assess(profile)
            if assessment.viable
        ]

    def by_name(self, name: str) -> EndGoal:
        """Look a goal up by name."""
        for goal in self.goals:
            if goal.name == name:
                return goal
        raise EndGoalError(f"unknown end-goal: {name!r}")


# ----------------------------------------------------------------------
# Interest prediction
# ----------------------------------------------------------------------
def goal_features(
    goal: EndGoal, profile: DatasetProfile, goal_names: Sequence[str]
) -> List[float]:
    """Feature vector for (goal, dataset) interest classification."""
    onehot = [1.0 if goal.name == name else 0.0 for name in goal_names]
    return onehot + [
        float(profile.sparsity),
        float(profile.gini),
        float(profile.normalized_entropy),
        float(np.log1p(profile.n_rows)),
        float(np.log1p(profile.n_features)),
        float(profile.mean_row_nonzeros),
    ]


class EndGoalInterestModel:
    """Learns which viable end-goals interest a user.

    Training examples are past interactions: (goal, dataset profile,
    interested yes/no). The model is the paper's suggested
    classification approach; with no training data it falls back to a
    neutral prior (every goal equally interesting), so the engine works
    out of the box and improves with feedback.
    """

    def __init__(
        self,
        goal_names: Sequence[str],
        seed: int = 0,
    ) -> None:
        if not goal_names:
            raise EndGoalError("goal_names must be non-empty")
        self.goal_names = list(goal_names)
        self.seed = seed
        self._rows: List[List[float]] = []
        self._labels: List[int] = []
        self._tree: Optional[DecisionTreeClassifier] = None

    @property
    def n_interactions(self) -> int:
        """Number of recorded interactions."""
        return len(self._labels)

    def record_interaction(
        self, goal: EndGoal, profile: DatasetProfile, interested: bool
    ) -> None:
        """Store one user interaction and invalidate the fitted model."""
        self._rows.append(goal_features(goal, profile, self.goal_names))
        self._labels.append(1 if interested else 0)
        self._tree = None

    def _ensure_fitted(self) -> Optional[DecisionTreeClassifier]:
        if self._tree is None and len(set(self._labels)) >= 2:
            tree = DecisionTreeClassifier(
                max_depth=5, min_samples_leaf=2, seed=self.seed
            )
            tree.fit(np.array(self._rows), np.array(self._labels))
            self._tree = tree
        return self._tree

    def interest_probability(
        self, goal: EndGoal, profile: DatasetProfile
    ) -> float:
        """P(user is interested in this goal on this dataset)."""
        tree = self._ensure_fitted()
        if tree is None:
            return 0.5  # neutral prior until both classes observed
        row = np.array([goal_features(goal, profile, self.goal_names)])
        probabilities = tree.predict_proba(row)[0]
        class_index = {
            cls: i for i, cls in enumerate(tree.classes_)  # type: ignore
        }
        return float(probabilities[class_index.get(1, 0)])

    def rank_goals(
        self, goals: Sequence[EndGoal], profile: DatasetProfile
    ) -> List[Tuple[EndGoal, float]]:
        """Goals with interest probabilities, most interesting first."""
        scored = [
            (goal, self.interest_probability(goal, profile))
            for goal in goals
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0].name))
        return scored

    def accuracy_on(
        self,
        interactions: Sequence[Tuple[EndGoal, DatasetProfile, bool]],
    ) -> float:
        """Accuracy of the current model on held-out interactions."""
        if not interactions:
            raise EndGoalError("no interactions to evaluate")
        correct = 0
        for goal, profile, interested in interactions:
            predicted = self.interest_probability(goal, profile) >= 0.5
            correct += int(predicted == interested)
        return correct / len(interactions)
