"""Markdown report generation from an analysis session.

The paper's end users are "medical doctors and clinical researchers, to
hospital administrators, health insurance companies, and public health
agencies" — people who receive *documents*, not Python objects. This
module renders an :class:`~repro.core.engine.AnalysisResult` into a
self-contained Markdown report: dataset fingerprint, end-goal
assessment, per-goal findings (including the optimisation table and the
partial-mining trace for clustering goals) and the ranked knowledge.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import AnalysisResult, GoalRun
from repro.core.knowledge import KnowledgeItem


def render_report(
    result: AnalysisResult,
    title: str = "ADA-HEALTH analysis report",
    top_items: int = 15,
) -> str:
    """Render a full Markdown report for one analysis session."""
    sections: List[str] = [f"# {title}", ""]
    sections.extend(_dataset_section(result))
    sections.extend(_endgoal_section(result))
    for run in result.runs:
        sections.extend(_goal_section(run))
    sections.extend(_knowledge_section(result, top_items))
    return "\n".join(sections).rstrip() + "\n"


def _dataset_section(result: AnalysisResult) -> List[str]:
    profile = result.profile
    lines = [
        "## Dataset",
        "",
        f"| statistic | value |",
        f"|---|---|",
        f"| patients | {profile.n_rows} |",
        f"| examination types | {profile.n_features} |",
        f"| sparsity | {profile.sparsity:.3f} |",
        f"| mean distinct exams per patient |"
        f" {profile.mean_row_nonzeros:.1f} |",
        f"| frequency skew (gini) | {profile.gini:.3f} |",
        f"| top-20% type coverage | {profile.top_share['20']:.1%} |",
        "",
    ]
    return lines


def _endgoal_section(result: AnalysisResult) -> List[str]:
    lines = ["## End-goal assessment", ""]
    ran = {run.goal.name for run in result.runs}
    for assessment in result.assessments:
        if assessment.goal.name in ran:
            status = "**ran**"
        elif assessment.viable:
            status = "viable (not selected)"
        else:
            status = "not viable"
        lines.append(
            f"- `{assessment.goal.name}` — {status}: {assessment.reason}"
        )
    lines.append("")
    return lines


def _goal_section(run: GoalRun) -> List[str]:
    lines = [f"## Goal: {run.goal.name}", "", run.goal.description, ""]
    if run.partial is not None:
        lines.append("### Adaptive partial mining")
        lines.append("")
        lines.append("```")
        lines.append(run.partial.format_table())
        lines.append("```")
        lines.append("")
    if run.optimization is not None:
        lines.append("### Parameter optimisation")
        lines.append("")
        lines.append("```")
        lines.append(run.optimization.format_table())
        lines.append("```")
        lines.append("")
    if run.notes:
        details = ", ".join(
            f"{key}={value}" for key, value in sorted(run.notes.items())
        )
        lines.append(f"*({details})*")
        lines.append("")
    lines.append(f"Extracted {len(run.items)} knowledge item(s).")
    lines.append("")
    return lines


def _knowledge_section(
    result: AnalysisResult, top_items: int
) -> List[str]:
    lines = [
        "## Ranked knowledge",
        "",
        "| # | kind | degree | score | finding |",
        "|---|---|---|---|---|",
    ]
    for rank, item in enumerate(result.top(top_items), start=1):
        lines.append(
            f"| {rank} | {item.kind} | {item.degree or '-'} |"
            f" {item.score:.3f} | {_escape(item.title)} |"
        )
    lines.append("")
    return lines


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def save_report(
    result: AnalysisResult,
    path,
    title: str = "ADA-HEALTH analysis report",
    top_items: int = 15,
) -> None:
    """Render and write the report to ``path``."""
    content = render_report(result, title=title, top_items=top_items)
    with open(path, "w") as handle:
        handle.write(content)
