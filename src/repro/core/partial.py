"""Adaptive partial mining (horizontal and vertical).

Reproduces §III/§IV-B:

    "In analyzing an N-dimensional dataset, partial mining can reduce
    the dataset along any dimension (vertical mining) or by considering
    different subsets of the input data (horizontal mining). ...
    At each step, a larger portion of data is analyzed. In the case of
    clustering, horizontal partial mining is implemented by running
    K-means on different subsets, as well as on the complete collection;
    the quality of each result was evaluated by means of the overall
    similarity index. ... ADA-HEALTH selects the optimal subset size
    based on the percentage difference between the overall similarity
    value calculated on the subset, and that calculated on the complete
    dataset: in this example, 85% of raw data yields a percentage
    difference less than 5%."

Note on naming: the paper calls the *feature-subset* strategy it
evaluates (fewer exam types, all patients) "horizontal partial mining";
this module keeps the paper's terminology. The complementary
*row-subset* strategy (fewer patients, all exam types) is the vertical
miner.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.cache import AnalysisCache, fingerprint_array
from repro.data.records import ExamLog
from repro.exceptions import MiningError
from repro.mining.kmeans import KMeans
from repro.mining.metrics import overall_similarity
from repro.preprocess.transforms import L2Normalizer
from repro.preprocess.vsm import VSMBuilder, apply_weighting

#: Feature fractions of the paper's experiment (§IV-B).
PAPER_FRACTIONS = (0.2, 0.4, 1.0)

#: The paper's stopping tolerance ("percentage difference less than 5%").
PAPER_TOLERANCE = 0.05


def _decode_labels(payload: Any) -> np.ndarray:
    """Decode a cached label list (raising on corrupt payloads)."""
    labels = np.array(payload, dtype=int)
    if labels.ndim != 1:
        raise ValueError("cached labels must be one-dimensional")
    return labels


@dataclass
class PartialRun:
    """One (subset, K) evaluation."""

    fraction_features: float
    n_features: int
    fraction_rows: float
    k: int
    similarity: float
    pct_difference: Optional[float] = None  # vs the full-data run, same K


@dataclass
class PartialMiningResult:
    """Outcome of an adaptive partial-mining session."""

    runs: List[PartialRun]
    selected_fraction: float
    selected_codes: List[int]
    tolerance: float

    def runs_for_k(self, k: int) -> List[PartialRun]:
        """All runs with the given K, smallest subset first."""
        return sorted(
            (run for run in self.runs if run.k == k),
            key=lambda run: run.fraction_features,
        )

    def fractions(self) -> List[float]:
        """Distinct feature fractions, ascending."""
        return sorted({run.fraction_features for run in self.runs})

    def to_document(self) -> Dict[str, Any]:
        """JSON-serialisable form (for the analysis cache / K-DB)."""
        return {
            "runs": [asdict(run) for run in self.runs],
            "selected_fraction": self.selected_fraction,
            "selected_codes": [int(code) for code in self.selected_codes],
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_document(
        cls, document: Dict[str, Any]
    ) -> "PartialMiningResult":
        """Inverse of :meth:`to_document`."""
        return cls(
            runs=[PartialRun(**run) for run in document["runs"]],
            selected_fraction=float(document["selected_fraction"]),
            selected_codes=[int(c) for c in document["selected_codes"]],
            tolerance=float(document["tolerance"]),
        )

    def format_table(self) -> str:
        """Render the §IV-B series: similarity by subset and K."""
        lines = [
            f"{'% types':>8} {'% rows':>7} {'K':>4}"
            f" {'overall sim':>12} {'% diff':>8}"
        ]
        for run in sorted(
            self.runs, key=lambda r: (r.fraction_features, r.k)
        ):
            diff = (
                f"{run.pct_difference * 100:8.2f}"
                if run.pct_difference is not None
                else "       -"
            )
            lines.append(
                f"{run.fraction_features * 100:>8.0f}"
                f" {run.fraction_rows * 100:>7.1f} {run.k:>4}"
                f" {run.similarity:>12.4f} {diff}"
            )
        lines.append(
            f"selected subset: {self.selected_fraction * 100:.0f}% of exam"
            f" types (tolerance {self.tolerance * 100:.0f}%)"
        )
        return "\n".join(lines)


class HorizontalPartialMiner:
    """Frequency-ordered feature-subset mining for clustering.

    Parameters
    ----------
    fractions:
        Increasing fractions of exam types to include; must end at 1.0
        (the full collection is always mined as the reference).
    k_values:
        K values evaluated on every subset.
    tolerance:
        Maximum acceptable relative drop of the overall similarity of a
        subset versus the full data, averaged over ``k_values``.
    weighting:
        VSM weighting applied to each subset's count matrix. The default
        is ``"binary"`` (presence of an exam in the patient's history):
        on sparse exam logs the presence profile carries the grouping
        signal, while raw counts are dominated by the magnitude of the
        routine head (see the transform-ablation benchmark).
    normalize:
        L2-normalise rows before clustering (spherical K-means), the
        natural companion of the cosine-based overall-similarity index.
    cache:
        Optional :class:`repro.core.cache.AnalysisCache`. Clusterings
        are memoised per (subset-matrix fingerprint, K) cell, so a
        refined session — new fractions or K values over the same log —
        only pays for the cells it has not seen: the adaptive miner is
        incremental across calls.
    """

    def __init__(
        self,
        fractions: Sequence[float] = PAPER_FRACTIONS,
        k_values: Sequence[int] = (6, 8, 10),
        tolerance: float = PAPER_TOLERANCE,
        weighting: str = "binary",
        normalize: bool = True,
        kmeans_params: Optional[Dict] = None,
        cache: Optional[AnalysisCache] = None,
        seed: int = 0,
    ) -> None:
        fractions = sorted(fractions)
        if not fractions or abs(fractions[-1] - 1.0) > 1e-9:
            raise MiningError("fractions must be non-empty and end at 1.0")
        if any(not 0.0 < fraction <= 1.0 for fraction in fractions):
            raise MiningError("fractions must lie in (0, 1]")
        if not k_values or any(k < 2 for k in k_values):
            raise MiningError("k_values must be >= 2")
        if tolerance <= 0:
            raise MiningError("tolerance must be positive")
        self.fractions = list(fractions)
        self.k_values = list(k_values)
        self.tolerance = tolerance
        self.weighting = weighting
        self.normalize = normalize
        self.kmeans_params = dict(kmeans_params or {})
        self.kmeans_params.setdefault("n_init", 2)
        self.cache = cache
        self.seed = seed

    # ------------------------------------------------------------------
    def subset_codes(self, log: ExamLog, fraction: float) -> List[int]:
        """The most frequent ``fraction`` of exam types.

        "the examination types were chosen in decreasing order of
        frequency within the original raw data."
        """
        ranked = log.exam_codes_by_frequency()
        count = max(1, int(round(fraction * log.n_exam_types)))
        return ranked[:count]

    def row_coverage(self, log: ExamLog, codes: Sequence[int]) -> float:
        """Fraction of records retained by an exam-type subset."""
        frequency = log.exam_frequency()
        kept = sum(int(frequency[code]) for code in codes)
        total = int(frequency.sum())
        return kept / total if total else 0.0

    def mine(self, log: ExamLog) -> PartialMiningResult:
        """Run the incremental subset experiment and pick the subset.

        Clustering runs on the reduced feature space; the overall
        similarity of each result is evaluated on the *complete* patient
        vectors, so the index measures how well the cheaper clustering
        recovers the true grouping (and degrades as exams are dropped,
        the direction the paper reports).
        """
        runs: List[PartialRun] = []
        full_similarity: Dict[int, float] = {}
        full_matrix = self._subset_matrix(
            log, list(range(log.n_exam_types))
        )

        # Reference pass on the complete collection first.
        subsets = [
            (fraction, self.subset_codes(log, fraction))
            for fraction in self.fractions
        ]
        for fraction, codes in reversed(subsets):
            coverage = self.row_coverage(log, codes)
            matrix = self._subset_matrix(log, codes)
            for k in self.k_values:
                labels = self._cluster_labels(matrix, k)
                similarity = float(overall_similarity(full_matrix, labels))
                if abs(fraction - 1.0) < 1e-9:
                    full_similarity[k] = similarity
                    difference = 0.0
                else:
                    reference = full_similarity[k]
                    difference = (
                        abs(reference - similarity) / reference
                        if reference > 0
                        else 0.0
                    )
                runs.append(
                    PartialRun(
                        fraction_features=fraction,
                        n_features=len(codes),
                        fraction_rows=coverage,
                        k=k,
                        similarity=similarity,
                        pct_difference=difference,
                    )
                )

        selected_fraction, selected_codes = self._select(log, runs, subsets)
        return PartialMiningResult(
            runs=runs,
            selected_fraction=selected_fraction,
            selected_codes=selected_codes,
            tolerance=self.tolerance,
        )

    def _select(self, log, runs, subsets):
        """Smallest subset whose mean %-difference is within tolerance."""
        for fraction, codes in subsets:  # ascending fractions
            differences = [
                run.pct_difference
                for run in runs
                if abs(run.fraction_features - fraction) < 1e-9
                and run.pct_difference is not None
            ]
            if differences and float(np.mean(differences)) <= self.tolerance:
                return fraction, codes
        # The full collection always satisfies the tolerance (diff = 0).
        return 1.0, subsets[-1][1]

    def _subset_matrix(
        self, log: ExamLog, codes: Sequence[int]
    ) -> np.ndarray:
        vsm = VSMBuilder(
            weighting=self.weighting, exam_codes=codes
        ).build(log)
        if self.normalize:
            return L2Normalizer().transform(vsm.matrix)
        return vsm.matrix

    def _cluster_labels(self, matrix: np.ndarray, k: int) -> np.ndarray:
        if self.cache is not None:
            params = {
                "k": k,
                "kmeans_params": self.kmeans_params,
                "seed": self.seed,
            }
            fingerprint = fingerprint_array(matrix)
            # Corrupt stored labels decode-fail into a miss and the
            # clustering is recomputed (cache.corrupt counts them).
            hit = self.cache.get(
                fingerprint,
                "partial-kmeans",
                params,
                decode=_decode_labels,
            )
            if hit is not None:
                return hit
        model = KMeans(k, seed=self.seed, **self.kmeans_params).fit(matrix)
        if model.labels_ is None:
            raise RuntimeError("KMeans fit left labels_ unset")
        if self.cache is not None:
            self.cache.put(
                fingerprint,
                "partial-kmeans",
                params,
                model.labels_.tolist(),
            )
        return model.labels_


class VerticalPartialMiner:
    """Row-subset (patient sample) mining.

    Evaluates clustering quality on growing random patient samples; the
    smallest sample whose overall similarity is within ``tolerance`` of
    the full cohort's is selected. Useful when the cohort, not the
    feature space, is what makes mining expensive.
    """

    def __init__(
        self,
        fractions: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
        k: int = 8,
        tolerance: float = PAPER_TOLERANCE,
        weighting: str = "count",
        seed: int = 0,
    ) -> None:
        fractions = sorted(fractions)
        if not fractions or abs(fractions[-1] - 1.0) > 1e-9:
            raise MiningError("fractions must be non-empty and end at 1.0")
        if k < 2:
            raise MiningError("k must be >= 2")
        self.fractions = list(fractions)
        self.k = k
        self.tolerance = tolerance
        self.weighting = weighting
        self.seed = seed

    def mine(self, log: ExamLog) -> PartialMiningResult:
        """Evaluate growing patient samples; select per the tolerance."""
        rng = np.random.default_rng(self.seed)
        vsm = VSMBuilder(weighting=self.weighting).build(log)
        matrix = vsm.matrix
        n = matrix.shape[0]
        order = rng.permutation(n)

        runs: List[PartialRun] = []
        reference: Optional[float] = None
        for fraction in reversed(self.fractions):
            take = max(self.k + 1, int(round(fraction * n)))
            sample = matrix[order[:take]]
            model = KMeans(self.k, seed=self.seed, n_init=2).fit(sample)
            if model.labels_ is None:
                raise RuntimeError("KMeans fit left labels_ unset")
            similarity = float(overall_similarity(sample, model.labels_))
            if abs(fraction - 1.0) < 1e-9:
                reference = similarity
                difference = 0.0
            else:
                if reference is None:
                    raise RuntimeError(
                        "full-cohort reference similarity missing"
                    )
                difference = (
                    abs(reference - similarity) / reference
                    if reference > 0
                    else 0.0
                )
            runs.append(
                PartialRun(
                    fraction_features=1.0,
                    n_features=matrix.shape[1],
                    fraction_rows=fraction,
                    k=self.k,
                    similarity=similarity,
                    pct_difference=difference,
                )
            )

        selected = 1.0
        for fraction in self.fractions:
            matching = [
                run
                for run in runs
                if abs(run.fraction_rows - fraction) < 1e-9
            ]
            if matching and all(
                run.pct_difference is not None
                and run.pct_difference <= self.tolerance
                for run in matching
            ):
                selected = fraction
                break
        return PartialMiningResult(
            runs=runs,
            selected_fraction=selected,
            selected_codes=list(range(log.n_exam_types)),
            tolerance=self.tolerance,
        )
