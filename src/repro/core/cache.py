"""Content-addressed memoisation of analysis results.

The paper's cloud vision assumes repeated automated analyses over the
same collections: every configuration sweep revisits (K, fraction)
cells, and every re-run of the engine repeats whole goal pipelines on a
dataset that has not changed. This module makes those repeats free.

A cache entry is addressed by the SHA-256 of three components:

* a **dataset fingerprint** — a digest of the actual content being
  mined (matrix bytes, log records, transaction lists), so any mutation
  of the data invalidates every dependent entry automatically;
* an **algorithm name** — the computation being memoised; and
* a **parameter fingerprint** — a canonical JSON digest of every knob
  that influences the result (K, seeds, fold counts, tolerances...).

Entries are stored as documents in a
:class:`repro.kdb.documentstore.DocumentStore` collection — the same
substrate as the K-DB — so a cache can live inside a knowledge base,
persist with it, and be inspected with ordinary store queries. Payloads
must therefore be JSON-serialisable; helpers on the callers convert
numpy artefacts (labels, centers) to and from plain lists.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.kdb.documentstore import Collection, DocumentStore

#: Default collection name for cache entries inside a document store.
CACHE_COLLECTION = "analysis_cache"

#: Fields of one cache-entry document (the ADA021 consumer contract;
#: ``cert`` is present only on certificate-stamped entries; ``crc``
#: checksums the canonical-JSON payload so on-disk damage surfaces as
#: a metered corrupt-miss instead of a poisoned hit).
CACHE_ENTRY_FIELDS = (
    "key",
    "dataset",
    "algorithm",
    "params",
    "payload",
    "crc",
    "cert",
)


def payload_crc(payload: Any) -> str:
    """CRC-32 (hex) of a payload's canonical JSON form."""
    encoded = json.dumps(payload, sort_keys=True, default=str)
    return f"{zlib.crc32(encoded.encode('utf-8')) & 0xFFFFFFFF:08x}"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def fingerprint_bytes(payload: bytes) -> str:
    """SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(payload).hexdigest()


def fingerprint_array(matrix) -> str:
    """Content digest of a numpy array (shape, dtype and bytes)."""
    matrix = np.ascontiguousarray(matrix)
    header = f"{matrix.shape}|{matrix.dtype.str}|".encode()
    return fingerprint_bytes(header + matrix.tobytes())


def fingerprint_params(params: Any) -> str:
    """Digest of a JSON-able parameter structure, key-order independent."""
    encoded = json.dumps(params, sort_keys=True, default=str)
    return fingerprint_bytes(encoded.encode())


def fingerprint_transactions(transactions) -> str:
    """Digest of a transaction list (order-sensitive, content-exact)."""
    digest = hashlib.sha256()
    for transaction in transactions:
        for item in transaction:
            digest.update(str(item).encode())
            digest.update(b"\x1f")
        digest.update(b"\x1e")
    return digest.hexdigest()


def fingerprint_log(log) -> str:
    """Content digest of an :class:`repro.data.ExamLog`.

    Hashes every (patient, day, exam) record plus the exam-type count,
    so appending, removing or editing any record changes the digest.
    """
    rows = np.array(
        [
            (record.patient_id, record.day, record.exam_code)
            for record in log.records
        ],
        dtype=np.int64,
    ).reshape(-1, 3)
    header = f"examlog|{log.n_exam_types}|".encode()
    return fingerprint_bytes(header + rows.tobytes())


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class AnalysisCache:
    """Memoisation cache over a document-store collection.

    Parameters
    ----------
    collection:
        A :class:`Collection` to store entries in; a fresh in-memory
        store's :data:`CACHE_COLLECTION` by default. Pass a collection
        of an existing K-DB store to persist the cache with it.

    Entries carry the full addressing triple alongside the key, so
    :meth:`invalidate_dataset` can drop everything derived from one
    dataset, and store queries can audit what has been memoised.
    """

    def __init__(
        self,
        collection: Optional[Collection] = None,
        metrics: Optional[Any] = None,
        certificate: Optional[str] = None,
    ) -> None:
        if collection is None:
            collection = DocumentStore().collection(CACHE_COLLECTION)
        self.collection = collection
        self.collection.create_index("key")
        self.collection.create_index("dataset")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.cert_misses = 0
        self.certificate = certificate
        self.metrics = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: Any) -> "AnalysisCache":
        """Mirror hit/miss/store counts into a metrics registry.

        Pre-registers the counters so snapshots always carry them,
        even before the first lookup.
        """
        self.metrics = metrics
        for name in (
            "cache.hits",
            "cache.misses",
            "cache.stores",
            "cache.corrupt",
            "cache.cert_miss",
        ):
            metrics.counter(name)
        return self

    def bind_certificate(
        self, fingerprint: Optional[str]
    ) -> "AnalysisCache":
        """Tie entries to a producing-pipeline certificate fingerprint.

        With a fingerprint bound, :meth:`put` stamps it into every
        entry and :meth:`get` treats entries stamped with a *different*
        fingerprint as misses (metered ``cache.cert_miss`` — the code
        that produced them has semantically changed). Entries with no
        stamp (pre-certificate caches), or an unbound fingerprint,
        degrade to the uncertified behaviour.
        """
        self.certificate = fingerprint
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def key(dataset: str, algorithm: str, params: Any) -> str:
        """The content address of one computation."""
        return fingerprint_bytes(
            f"{dataset}|{algorithm}|{fingerprint_params(params)}".encode()
        )

    def get(
        self,
        dataset: str,
        algorithm: str,
        params: Any,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> Any:
        """The cached payload, or None on a miss.

        With ``decode``, the stored payload is passed through it and
        the decoded value is returned instead. A corrupt entry — no
        payload, or a payload ``decode`` rejects — is *not* an error:
        the entry is dropped, ``cache.corrupt`` is counted, and the
        lookup degrades to a miss so the caller recomputes and the
        subsequent :meth:`put` overwrites the damage.
        """
        key = self.key(dataset, algorithm, params)
        document = self.collection.find_one({"key": key})
        if document is None:
            return self._miss()
        if (
            self.certificate is not None
            and document.get("cert") is not None
            and document["cert"] != self.certificate
        ):
            return self._cert_miss(key)
        if "payload" not in document:
            return self._drop_corrupt(key, "entry has no payload")
        payload = document["payload"]
        # Entries written since PR 10 carry a payload checksum; its
        # absence (a pre-checksum entry) is not corruption.
        if "crc" in document and document["crc"] != payload_crc(payload):
            return self._drop_corrupt(key, "payload checksum mismatch")
        if decode is not None:
            try:
                payload = decode(payload)
            except Exception as exc:  # degrade corrupt entry to a miss
                return self._drop_corrupt(
                    key, f"{type(exc).__name__}: {exc}"
                )
        self.hits += 1
        if self.metrics is not None:
            self.metrics.counter("cache.hits").inc()
        return payload

    def _miss(self) -> None:
        self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.misses").inc()
        return None

    def _cert_miss(self, key: str) -> None:
        """Evict an entry whose producing code changed; degrade to miss.

        Eviction (not just a miss) matters: :meth:`put` is idempotent
        on the key, so a stale stamped entry left in place would block
        the recomputed payload from ever being stored.
        """
        self.cert_misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache.cert_miss").inc()
        self.collection.delete_many({"key": key})
        return self._miss()

    def _drop_corrupt(self, key: str, reason: str) -> None:
        """Record and evict a corrupt entry, degrading to a miss."""
        self.corrupt += 1
        if self.metrics is not None:
            self.metrics.counter("cache.corrupt").inc()
        self.collection.delete_many({"key": key})
        return self._miss()

    def put(
        self, dataset: str, algorithm: str, params: Any, payload: Any
    ) -> str:
        """Store a payload; returns the entry key. Idempotent."""
        key = self.key(dataset, algorithm, params)
        if self.collection.find_one({"key": key}) is None:
            self.stores += 1
            if self.metrics is not None:
                self.metrics.counter("cache.stores").inc()
            entry = {
                "key": key,
                "dataset": dataset,
                "algorithm": algorithm,
                "params": fingerprint_params(params),
                "payload": payload,
                "crc": payload_crc(payload),
                "cert": self.certificate,
            }
            if self.certificate is None:
                del entry["cert"]
            self.collection.insert_one(entry)
        return key

    def memoize(
        self,
        dataset: str,
        algorithm: str,
        params: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached payload or compute, store and return it."""
        cached = self.get(dataset, algorithm, params)
        if cached is not None:
            return cached
        payload = compute()
        self.put(dataset, algorithm, params, payload)
        return payload

    # ------------------------------------------------------------------
    def invalidate_dataset(self, dataset: str) -> int:
        """Drop every entry derived from one dataset fingerprint."""
        return self.collection.delete_many({"dataset": dataset})

    def clear(self) -> None:
        """Drop every entry (hit/miss counters survive)."""
        self.collection.drop()

    def __len__(self) -> int:
        return len(self.collection)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store/corrupt counters and entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "cert_misses": self.cert_misses,
            "entries": len(self.collection),
        }
