"""Interestingness metrics over extracted knowledge.

"It is hard to envision a system capable of evaluating and comparing
hundreds of different data mining technique configurations, without
being able to effectively and automatically compare and rank their
output. To this end, a set of interestingness metrics are needed to
assess the quality of knowledge discovered by different algorithm runs."

Two layers are provided:

* per-item **base scores** in ``[0, 1]`` — kind-specific formulas over
  the item's quality metrics (cluster cohesion/size balance, rule
  confidence/lift, pattern support/length...);
* the mapping of scores to the paper's expert **degrees**
  ``{high, medium, low}``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.core.knowledge import DEGREES, KnowledgeItem
from repro.exceptions import EngineError


def score_cluster_item(quality: Dict[str, float]) -> float:
    """Score a single-cluster item.

    Combines cohesion (internal similarity, already in [0, 1]), the
    cluster's share of the population (very small and very large
    clusters are less actionable — a hump penalty centred on 1/K is
    approximated by penalising the extremes), and distinctiveness (how
    far the centroid sits from the global centroid, normalised upstream).
    """
    cohesion = _clamp(quality.get("cohesion", 0.0))
    distinctiveness = _clamp(quality.get("distinctiveness", 0.0))
    raw_share = quality.get("size_share")
    if raw_share is None:
        # Absent is not zero: an extractor that never measured the
        # share must not be scored as a vanishing cluster. Renormalise
        # over the components that were measured.
        return _clamp(
            (0.5 * cohesion + 0.3 * distinctiveness) / 0.8
        )
    size_share = _clamp(raw_share)
    # Size sweet spot: full credit between 2% and 60% of the cohort.
    if size_share < 0.02:
        size_factor = size_share / 0.02
    elif size_share > 0.6:
        size_factor = max(0.0, (1.0 - size_share) / 0.4)
    else:
        size_factor = 1.0
    return _clamp(
        0.5 * cohesion + 0.3 * distinctiveness + 0.2 * size_factor
    )


def score_cluster_set(quality: Dict[str, float]) -> float:
    """Score a whole cluster set (the run-level item).

    Uses the paper's own optimisation signals: overall similarity and
    the robustness classification metrics.
    """
    similarity = _clamp(quality.get("overall_similarity", 0.0))
    accuracy = _clamp(quality.get("accuracy", 0.0))
    recall = _clamp(quality.get("avg_recall", 0.0))
    precision = _clamp(quality.get("avg_precision", 0.0))
    return _clamp(
        0.4 * similarity + 0.2 * accuracy + 0.2 * precision + 0.2 * recall
    )


def score_itemset(quality: Dict[str, float]) -> float:
    """Score a frequent pattern: support damped by ubiquity, rewarded
    for length (longer co-prescription panels are more informative)."""
    support = _clamp(quality.get("support", 0.0))
    length = max(1.0, quality.get("length", 1.0))
    # Support sweet spot: patterns holding for 10-60% of patients.
    if support < 0.1:
        support_factor = support / 0.1
    elif support > 0.6:
        support_factor = max(0.2, 1.0 - (support - 0.6))
    else:
        support_factor = 1.0
    length_factor = 1.0 - 1.0 / (1.0 + 0.5 * (length - 1.0))
    return _clamp(0.6 * support_factor + 0.4 * length_factor)


def score_rule(quality: Dict[str, float]) -> float:
    """Score an association rule by confidence and (log-squashed) lift."""
    confidence = _clamp(quality.get("confidence", 0.0))
    lift = max(0.0, quality.get("lift", 1.0))
    # lift 1 -> 0 (independence), lift >= ~4 saturates toward 1.
    lift_factor = _clamp(math.log(max(lift, 1e-9)) / math.log(4.0))
    support = _clamp(quality.get("support", 0.0))
    return _clamp(0.45 * confidence + 0.4 * lift_factor + 0.15 * support)


def score_outlier_set(quality: Dict[str, float]) -> float:
    """Score an outlier set: rarity is the point, but an 'outlier set'
    holding half the cohort signals a bad eps, not knowledge."""
    noise_ratio = _clamp(quality.get("noise_ratio", 0.0))
    if noise_ratio <= 0.0:
        return 0.0
    if noise_ratio <= 0.1:
        return _clamp(0.5 + 5.0 * noise_ratio)
    return _clamp(1.0 - (noise_ratio - 0.1))


def score_sequence(quality: Dict[str, float]) -> float:
    """Score a sequential care-pathway pattern.

    Like itemsets, support has a sweet spot; temporal *length* (number
    of ordered visits) is the real information carrier, so it weighs
    more than it does for plain co-occurrence patterns.
    """
    support = _clamp(quality.get("support", 0.0))
    n_elements = max(1.0, quality.get("n_elements", 1.0))
    if support < 0.05:
        support_factor = support / 0.05
    elif support > 0.7:
        support_factor = max(0.2, 1.0 - (support - 0.7))
    else:
        support_factor = 1.0
    length_factor = 1.0 - 1.0 / (1.0 + 0.8 * (n_elements - 1.0))
    return _clamp(0.5 * support_factor + 0.5 * length_factor)


_SCORERS = {
    "cluster": score_cluster_item,
    "cluster_set": score_cluster_set,
    "itemset": score_itemset,
    "association_rule": score_rule,
    "sequence": score_sequence,
    "outlier_set": score_outlier_set,
    "profile": lambda quality: _clamp(quality.get("coverage", 0.5)),
}


def score_item(item: KnowledgeItem) -> float:
    """Dispatch to the kind-specific scorer."""
    try:
        scorer = _SCORERS[item.kind]
    except KeyError:
        raise EngineError(f"no scorer for kind {item.kind!r}") from None
    return scorer(item.quality)


def score_items(items: Iterable[KnowledgeItem]) -> List[KnowledgeItem]:
    """Set ``item.score`` in place for every item; returns the list."""
    result = list(items)
    for item in result:
        item.score = score_item(item)
    return result


def degree_from_score(score: float) -> str:
    """Map a score to the paper's {high, medium, low} degrees."""
    if score >= 0.65:
        return "high"
    if score >= 0.4:
        return "medium"
    return "low"


def degree_rank(degree: str) -> int:
    """0 for high, 1 for medium, 2 for low (sort key)."""
    try:
        return DEGREES.index(degree)
    except ValueError:
        raise EngineError(f"unknown degree {degree!r}") from None


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, float(value)))
