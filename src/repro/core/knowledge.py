"""Knowledge-item model.

A *knowledge item* is ADA-HEALTH's unit of output: "These systems provide
a manageable set of knowledge items which are characterized and ranked in
terms of their potential interest to the user". A cluster of patients, a
frequent co-prescription pattern, an association rule and an outlier set
are all knowledge items; they share a common envelope (provenance,
quality metrics, interestingness) so the ranking, navigation and K-DB
layers can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import EngineError

#: Recognised knowledge kinds.
KINDS = (
    "cluster",
    "cluster_set",
    "itemset",
    "association_rule",
    "sequence",
    "outlier_set",
    "profile",
)

#: The paper's interestingness degrees, best first.
DEGREES = ("high", "medium", "low")


@dataclass
class KnowledgeItem:
    """One extracted piece of knowledge.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    end_goal:
        Name of the analysis end-goal that produced the item.
    title:
        Short human-readable headline.
    payload:
        Kind-specific JSON-ready content (cluster centroid summary, rule
        sides, member counts...).
    quality:
        ``metric name -> value`` (SSE share, support, confidence...).
    provenance:
        How the item was obtained: algorithm, parameters, dataset id.
    score:
        Ranking score in ``[0, 1]``; set by the interestingness module
        and adjusted by user feedback.
    degree:
        Expert-style interestingness degree (``high/medium/low``) once
        labelled or predicted; ``None`` when unknown.
    item_id:
        K-DB identifier once stored.
    """

    kind: str
    end_goal: str
    title: str
    payload: Dict[str, Any] = field(default_factory=dict)
    quality: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    score: float = 0.0
    degree: Optional[str] = None
    item_id: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise EngineError(
                f"unknown knowledge kind {self.kind!r};"
                f" expected one of {KINDS}"
            )
        if self.degree is not None and self.degree not in DEGREES:
            raise EngineError(
                f"unknown degree {self.degree!r}; expected one of {DEGREES}"
            )

    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, Any]:
        """JSON-ready dict for K-DB storage (``_id`` only if assigned)."""
        document: Dict[str, Any] = {
            "kind": self.kind,
            "end_goal": self.end_goal,
            "title": self.title,
            "payload": self.payload,
            "quality": self.quality,
            "provenance": self.provenance,
            "score": self.score,
            "degree": self.degree,
        }
        if self.item_id is not None:
            document["_id"] = self.item_id
        return document

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "KnowledgeItem":
        """Inverse of :meth:`to_document`."""
        return cls(
            kind=document["kind"],
            end_goal=document["end_goal"],
            title=document["title"],
            payload=dict(document.get("payload", {})),
            quality=dict(document.get("quality", {})),
            provenance=dict(document.get("provenance", {})),
            score=float(document.get("score", 0.0)),
            degree=document.get("degree"),
            item_id=document.get("_id"),
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"[{self.kind}] {self.title} (score={self.score:.3f}"]
        if self.degree:
            parts.append(f", degree={self.degree}")
        parts.append(")")
        return "".join(parts)

    def feature_vector_fields(self) -> Dict[str, float]:
        """Numeric features for interestingness prediction.

        Used by the K-DB degree predictor: one indicator per kind plus
        the quality metrics (missing metrics default to 0).
        """
        features: Dict[str, float] = {
            f"kind_{kind}": 1.0 if self.kind == kind else 0.0
            for kind in KINDS
        }
        for metric in (
            "support",
            "confidence",
            "lift",
            "cohesion",
            "size_share",
            "sse_share",
            "coverage",
            "distinctiveness",
        ):
            features[metric] = float(self.quality.get(metric, 0.0))
        features["score"] = float(self.score)
        return features
