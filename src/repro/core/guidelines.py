"""Guideline-compliance assessment.

One of the paper's motivating analysis families is "(ii) assessing the
adherence of medical prescriptions and treatments to relevant clinical
guidelines". This module implements that end-goal: a *guideline* states
how often an examination (or any exam of a category) should occur in
the observation window; the assessor measures, per guideline, which
fraction of the cohort complies, and per patient, an overall compliance
score — both packaged as knowledge items.

The default guideline set encodes standard annual diabetes-care
recommendations (HbA1c at least twice a year, annual eye/renal/lipid
checks, an annual diabetology visit).

Note on synthetic data: absolute compliance rates measured on the
generated log are artefacts of the generator's frequency calibration
(it matches the paper's *coverage curve*, not per-exam clinical rates);
the machinery — per-guideline gap ranking, per-patient scores — is what
this module contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.knowledge import KnowledgeItem
from repro.data.records import ExamLog
from repro.data.taxonomy import (
    CARDIOVASCULAR,
    METABOLIC,
    OPHTHALMIC,
    RENAL,
    ROUTINE,
)
from repro.exceptions import EngineError


@dataclass(frozen=True)
class Guideline:
    """A minimum-frequency care recommendation.

    Exactly one of ``exam_name`` / ``category`` must be given: the rule
    counts either occurrences of that exam type, or occurrences of any
    exam belonging to the category.
    """

    name: str
    min_count: int
    exam_name: Optional[str] = None
    category: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.exam_name is None) == (self.category is None):
            raise EngineError(
                "a guideline needs exactly one of exam_name / category"
            )
        if self.min_count < 1:
            raise EngineError("min_count must be >= 1")


def default_diabetes_guidelines() -> List[Guideline]:
    """Standard annual diabetes-care recommendations."""
    return [
        Guideline(
            name="HbA1c at least twice a year",
            exam_name="glycated hemoglobin (HbA1c)",
            min_count=2,
        ),
        Guideline(
            name="annual diabetology visit",
            exam_name="diabetology visit",
            min_count=1,
        ),
        Guideline(
            name="annual lipid or metabolic panel",
            category=METABOLIC,
            min_count=1,
        ),
        Guideline(
            name="annual eye examination",
            category=OPHTHALMIC,
            min_count=1,
        ),
        Guideline(
            name="annual renal check",
            category=RENAL,
            min_count=1,
        ),
    ]


@dataclass
class GuidelineResult:
    """Cohort-level outcome of one guideline."""

    guideline: Guideline
    compliant_patients: int
    total_patients: int

    @property
    def compliance_rate(self) -> float:
        if self.total_patients == 0:
            return 0.0
        return self.compliant_patients / self.total_patients


@dataclass
class ComplianceReport:
    """Full compliance assessment of a cohort."""

    results: List[GuidelineResult]
    patient_scores: Dict[int, float]  # patient -> fraction of rules met

    @property
    def mean_patient_score(self) -> float:
        if not self.patient_scores:
            return 0.0
        return float(np.mean(list(self.patient_scores.values())))

    def fully_compliant(self) -> List[int]:
        """Patients meeting every guideline."""
        return sorted(
            pid
            for pid, score in self.patient_scores.items()
            if score >= 1.0
        )

    def least_compliant(self, count: int = 10) -> List[Tuple[int, float]]:
        """The ``count`` patients with the lowest compliance scores."""
        ordered = sorted(
            self.patient_scores.items(), key=lambda kv: (kv[1], kv[0])
        )
        return ordered[:count]

    def format_table(self) -> str:
        """Render the per-guideline compliance table."""
        lines = [f"{'guideline':<36} {'compliant':>10} {'rate':>7}"]
        for result in self.results:
            lines.append(
                f"{result.guideline.name:<36}"
                f" {result.compliant_patients:>10}"
                f" {result.compliance_rate:>6.1%}"
            )
        lines.append(
            f"mean per-patient compliance: {self.mean_patient_score:.1%}"
        )
        return "\n".join(lines)


def assess_compliance(
    log: ExamLog,
    guidelines: Optional[Sequence[Guideline]] = None,
) -> ComplianceReport:
    """Measure guideline compliance over an examination log."""
    guidelines = list(
        guidelines if guidelines is not None
        else default_diabetes_guidelines()
    )
    if not guidelines:
        raise EngineError("no guidelines given")
    counts, patient_ids = log.count_matrix()

    # Column selector per guideline.
    selectors: List[np.ndarray] = []
    for guideline in guidelines:
        if guideline.exam_name is not None:
            exam = log.taxonomy.by_name(guideline.exam_name)
            columns = [exam.code]
        else:
            columns = log.taxonomy.codes_in_category(
                guideline.category  # type: ignore[arg-type]
            )
        selectors.append(np.array(columns, dtype=int))

    met = np.zeros((len(patient_ids), len(guidelines)), dtype=bool)
    for g, (guideline, columns) in enumerate(zip(guidelines, selectors)):
        met[:, g] = counts[:, columns].sum(axis=1) >= guideline.min_count

    results = [
        GuidelineResult(
            guideline=guideline,
            compliant_patients=int(met[:, g].sum()),
            total_patients=len(patient_ids),
        )
        for g, guideline in enumerate(guidelines)
    ]
    patient_scores = {
        int(pid): float(met[i].mean())
        for i, pid in enumerate(patient_ids)
    }
    return ComplianceReport(results=results, patient_scores=patient_scores)


def extract_compliance_items(
    report: ComplianceReport,
    end_goal: str = "guideline-compliance",
    provenance: Optional[Dict] = None,
) -> List[KnowledgeItem]:
    """One profile item per guideline plus a cohort-level summary item.

    Low-compliance guidelines score *higher* — a care gap is the
    actionable finding; near-universal compliance is unremarkable.
    """
    provenance = dict(provenance or {})
    items: List[KnowledgeItem] = []
    for result in report.results:
        rate = result.compliance_rate
        items.append(
            KnowledgeItem(
                kind="profile",
                end_goal=end_goal,
                title=(
                    f"{result.guideline.name}:"
                    f" {rate:.0%} of patients compliant"
                ),
                payload={
                    "guideline": result.guideline.name,
                    "compliant": result.compliant_patients,
                    "total": result.total_patients,
                },
                quality={
                    "coverage": 1.0 - rate,  # the gap is the knowledge
                    "compliance_rate": rate,
                },
                provenance=provenance,
            )
        )
    worst = report.least_compliant(10)
    items.append(
        KnowledgeItem(
            kind="profile",
            end_goal=end_goal,
            title=(
                f"cohort compliance {report.mean_patient_score:.0%};"
                f" {len(report.fully_compliant())} fully compliant"
            ),
            payload={
                "mean_patient_score": report.mean_patient_score,
                "least_compliant": [
                    {"patient_id": pid, "score": score}
                    for pid, score in worst
                ],
            },
            quality={
                "coverage": 1.0 - report.mean_patient_score,
            },
            provenance=provenance,
        )
    )
    return items


# ----------------------------------------------------------------------
# Past experience (execution history from the K-DB runs collection)
# ----------------------------------------------------------------------
def past_experience(
    kdb,
    goal_name: Optional[str] = None,
    dataset_fingerprint: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Aggregate real execution history from the ``runs`` collection.

    The paper's automation needs "past experience" to decide what is
    worth running next; run manifests (see :mod:`repro.obs.manifest`)
    make that experience concrete. Per goal, this summarises every
    recorded run: how often it ran, failed or came from cache, the mean
    wall time of the runs that actually executed, the mean knowledge
    yield, and which algorithms history used.

    Parameters
    ----------
    kdb:
        A :class:`repro.kdb.KnowledgeBase` with recorded runs.
    goal_name:
        Restrict the summary to one end-goal.
    dataset_fingerprint:
        Restrict to runs over one dataset's content fingerprint.
    """
    experience: Dict[str, Dict[str, object]] = {}
    tallies: Dict[str, Dict[str, object]] = {}
    for run in kdb.run_history(dataset_fingerprint=dataset_fingerprint):
        for goal in run.get("goals", []):
            name = goal.get("name")
            if name is None or (
                goal_name is not None and name != goal_name
            ):
                continue
            entry = tallies.setdefault(
                name,
                {
                    "runs": 0,
                    "failures": 0,
                    "cached": 0,
                    "wall_s": 0.0,
                    "n_items": 0,
                    "algorithms": set(),
                },
            )
            entry["runs"] += 1
            if goal.get("status") != "completed":
                entry["failures"] += 1
            if goal.get("cached"):
                entry["cached"] += 1
            entry["wall_s"] += float(goal.get("wall_s", 0.0))
            entry["n_items"] += int(goal.get("n_items", 0))
            entry["algorithms"].update(goal.get("algorithms", []))
    for name, entry in tallies.items():
        executed = entry["runs"] - entry["cached"]
        experience[name] = {
            "runs": entry["runs"],
            "failures": entry["failures"],
            "cached": entry["cached"],
            "mean_wall_s": (
                entry["wall_s"] / executed if executed else 0.0
            ),
            "mean_items": entry["n_items"] / entry["runs"],
            "algorithms": sorted(entry["algorithms"]),
        }
    return experience
