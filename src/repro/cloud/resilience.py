"""Fault tolerance for the execution backends.

The paper pitches ADA-HEALTH as an engine a clinician can leave
unattended, which means the execution layer has to absorb the faults a
real deployment throws at it — transient task errors, hung workers,
dead processes, a whole backend gone bad — instead of aborting the
analysis. This module is that layer:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded* jitter, so retried sweeps stay reproducible. Applied
  per-task inside every :mod:`repro.cloud.executor` backend.
* :class:`CircuitBreaker` — trips after N consecutive infrastructure
  failures so a misbehaving backend stops being asked.
* :class:`ResilientExecutor` — wraps any backend with a breaker and a
  serial fallback: when the breaker opens, work is downgraded to the
  fallback (and the downgrade is recorded) rather than lost.
* :class:`FaultInjector` — a deterministic chaos harness: wraps any
  backend and injects raises, hangs and result-drop faults by task
  index from a seeded ``default_rng`` schedule, so the chaos suite can
  assert exact recovery behaviour.

Determinism guarantees: backoff delays are derived from
``default_rng((seed, task_index, attempt))`` and fault schedules from
``default_rng(seed)``, so a given (policy, injector, task list) triple
always fails, hangs and recovers identically. All sleeping for backoff
purposes lives here — adalint rule ADA013 forbids ad-hoc
``time.sleep`` retry loops anywhere else.

This module deliberately avoids importing :mod:`repro.cloud.executor`
at module level (the executors import :class:`RetryPolicy` helpers'
*duck type*, and this module needs their result classes), so the two
sides load in either order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import (
    InjectedFault,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)

#: Exception types that mark *infrastructure* (not task) failures —
#: what circuit breakers count and fallbacks rescue.
INFRASTRUCTURE_ERRORS = (TaskTimeoutError, WorkerCrashError)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass
class RetryOutcome:
    """Result of running one task under a :class:`RetryPolicy`."""

    value: Any = None
    error: Optional[Exception] = None
    attempts: int = 1
    #: One ``"ExcType: message"`` summary per failed attempt.
    history: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-task retries with seeded exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts per task (1 means no retries).
    base_delay / backoff / max_delay:
        Attempt ``a`` (1-based) sleeps
        ``min(max_delay, base_delay * backoff**(a-1))`` before attempt
        ``a + 1``, scaled by jitter.
    jitter:
        Fractional jitter in ``[0, 1]``: the delay is multiplied by
        ``1 + jitter * u`` where ``u`` is drawn from
        ``default_rng((seed, task_index, attempt))`` — deterministic
        for a given policy, task and attempt, yet decorrelated across
        tasks so a retry storm does not re-synchronise.
    retryable:
        Optional predicate over the raised exception; ``None`` retries
        every ``Exception``. Must be a picklable (module-level)
        callable when the policy rides into a process-pool worker.

    The policy is frozen, hashable and picklable, so one instance can
    be shared by every backend of an engine and shipped to workers.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Optional[Callable[[Exception], bool]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ReproError("backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def should_retry(self, error: Exception, attempt: int) -> bool:
        """May attempt ``attempt`` (1-based), which raised, be retried?"""
        if attempt >= self.max_attempts:
            return False
        if self.retryable is not None and not self.retryable(error):
            return False
        return True

    def delay_for(self, attempt: int, task_index: int = 0) -> float:
        """Backoff delay after a failed ``attempt`` (deterministic)."""
        base = min(
            self.max_delay,
            self.base_delay * self.backoff ** (attempt - 1),
        )
        if base <= 0.0 or self.jitter <= 0.0:
            return base
        rng = np.random.default_rng((self.seed, task_index, attempt))
        return base * (1.0 + self.jitter * float(rng.random()))

    def sleep(self, attempt: int, task_index: int = 0) -> None:
        """Sleep out the backoff for ``attempt`` (the one sanctioned
        home of retry sleeping — see ADA013)."""
        delay = self.delay_for(attempt, task_index)
        if delay > 0.0:
            time.sleep(delay)

    def execute(
        self, task: Callable[[], Any], task_index: int = 0
    ) -> RetryOutcome:
        """Run ``task`` under this policy; never raises.

        Returns a :class:`RetryOutcome` carrying either the value of
        the first successful attempt or the *last* exception once
        attempts are exhausted (with the full failure history).
        """
        history: List[str] = []
        attempt = 1
        while True:
            try:
                value = task()
            except Exception as exc:  # noqa: BLE001 - recorded per attempt
                history.append(f"{type(exc).__name__}: {exc}")
                if not self.should_retry(exc, attempt):
                    return RetryOutcome(
                        error=exc, attempts=attempt, history=history
                    )
                self.sleep(attempt, task_index)
                attempt += 1
                continue
            return RetryOutcome(
                value=value, attempts=attempt, history=history
            )


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Trip after ``threshold`` consecutive infrastructure failures.

    The breaker counts *infrastructure* failures (timeouts, worker
    crashes, backend exceptions) — a task raising on bad parameters
    would fail identically on any backend and must not condemn the
    backend. A success resets the streak; once the count reaches the
    threshold the breaker opens and stays open until :meth:`reset`.
    """

    def __init__(
        self, threshold: int = 3, metrics: Optional[Any] = None
    ) -> None:
        if threshold < 1:
            raise ReproError("threshold must be >= 1")
        self.threshold = threshold
        self.metrics = metrics
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0

    @property
    def is_open(self) -> bool:
        return self.state == "open"

    def record_success(self) -> None:
        """A clean backend run: reset the failure streak."""
        self.consecutive_failures = 0

    def record_failure(self, count: int = 1) -> None:
        """Count ``count`` infrastructure failures; trip on threshold."""
        if count < 1:
            raise ReproError("count must be >= 1")
        self.consecutive_failures += count
        if (
            self.state == "closed"
            and self.consecutive_failures >= self.threshold
        ):
            self.state = "open"
            self.trips += 1
            if self.metrics is not None:
                self.metrics.counter("resilience.breaker_trips").inc()

    def reset(self) -> None:
        """Close the breaker and clear the streak (manual recovery)."""
        self.state = "closed"
        self.consecutive_failures = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state for run manifests."""
        return {
            "state": self.state,
            "threshold": self.threshold,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }


class ResilientExecutor:
    """Breaker-guarded executor wrapper with a serial fallback.

    Delegates ``run`` to ``backend``; infrastructure failures
    (:data:`INFRASTRUCTURE_ERRORS` in result slots, or the backend
    itself raising) feed the breaker. When the breaker opens the work
    moves to ``fallback`` (a fresh
    :class:`~repro.cloud.executor.SerialExecutor` by default) and the
    downgrade is recorded in :attr:`events` and the
    ``resilience.fallbacks`` counter. A trip *during* a run rescues
    just the infrastructure-failed slots through the fallback, so
    surviving results are never thrown away.
    """

    def __init__(
        self,
        backend: Any,
        breaker: Optional[CircuitBreaker] = None,
        fallback: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.backend = backend
        self.breaker = breaker or CircuitBreaker(metrics=metrics)
        self.metrics = metrics
        self._fallback = fallback
        self.downgrades = 0
        #: Downgrade log: ``{"event": "fallback", "reason": ...}`` dicts.
        self.events: List[Dict[str, Any]] = []

    @property
    def name(self) -> str:
        return getattr(self.backend, "name", "backend")

    @property
    def retry(self) -> Optional[Any]:
        """The wrapped backend's retry policy (for ``run_chunked``)."""
        return getattr(self.backend, "retry", None)

    def fallback(self) -> Any:
        """The downgrade target (created lazily)."""
        if self._fallback is None:
            from repro.cloud.executor import SerialExecutor

            self._fallback = SerialExecutor(
                metrics=self.metrics,
                retry=getattr(self.backend, "retry", None),
            )
        return self._fallback

    def run(self, tasks: Sequence[Callable[[], Any]]) -> Any:
        from repro.cloud.executor import SweepResult, TaskFailure

        tasks = list(tasks)
        if self.breaker.is_open:
            self._record_downgrade("breaker-open")
            return self.fallback().run(tasks)
        try:
            outcome = self.backend.run(tasks)
        except Exception as exc:  # noqa: BLE001 - recorded, downgraded
            self.breaker.record_failure()
            self._record_downgrade(
                f"backend-error: {type(exc).__name__}: {exc}"
            )
            return self.fallback().run(tasks)
        infra = [
            index
            for index, value in enumerate(outcome.results)
            if isinstance(value, TaskFailure)
            and isinstance(value.error, INFRASTRUCTURE_ERRORS)
        ]
        if not infra:
            self.breaker.record_success()
            return outcome
        self.breaker.record_failure(len(infra))
        if not self.breaker.is_open:
            return outcome
        # The breaker tripped mid-run: rescue only the slots the
        # infrastructure lost; completed siblings are kept as-is.
        self._record_downgrade(
            f"breaker-tripped: rescuing {len(infra)} failed task(s)"
        )
        rescue = self.fallback().run([tasks[index] for index in infra])
        results = list(outcome.results)
        task_seconds = (
            list(outcome.task_seconds)
            if outcome.task_seconds is not None
            else None
        )
        for slot, value, seconds in zip(
            infra,
            rescue.results,
            rescue.task_seconds or [None] * len(infra),
        ):
            results[slot] = value
            if task_seconds is not None:
                task_seconds[slot] = seconds
        failures = sum(
            1 for value in results if isinstance(value, TaskFailure)
        )
        return SweepResult(
            results=results,
            wall_seconds=outcome.wall_seconds + rescue.wall_seconds,
            simulated_seconds=outcome.simulated_seconds,
            n_failures=failures,
            task_seconds=task_seconds,
            queue_seconds=outcome.queue_seconds,
        )

    def _record_downgrade(self, reason: str) -> None:
        self.downgrades += 1
        self.events.append({"event": "fallback", "reason": reason})
        if self.metrics is not None:
            self.metrics.counter("resilience.fallbacks").inc()


# ----------------------------------------------------------------------
# Deterministic fault injection (chaos harness)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """One scheduled fault on one task index."""

    kind: str  #: ``"raise"``, ``"hang"`` or ``"drop"``
    failures: int = 1  #: how many calls misbehave before healing
    hang_seconds: float = 0.0


class FaultyTask:
    """A task wrapped with a scheduled fault (picklable).

    ``raise`` faults fail the first ``failures`` calls with
    :class:`InjectedFault`, then heal — retries inside the executing
    process see the recovery. ``hang`` faults sleep ``hang_seconds``
    before delegating, which a per-task timeout turns into a kill.
    The call counter lives on the (per-process copy of the) wrapper,
    so a respawned process-pool chunk re-injects its fault — exactly
    how a deterministic poison-pill behaves.
    """

    def __init__(self, task: Callable[[], Any], fault: Fault) -> None:
        self.task = task
        self.fault = fault
        self.calls = 0

    def __call__(self) -> Any:
        self.calls += 1
        if self.calls <= self.fault.failures:
            if self.fault.kind == "raise":
                raise InjectedFault(
                    f"injected raise (call {self.calls}"
                    f"/{self.fault.failures})"
                )
            if self.fault.kind == "hang":
                time.sleep(self.fault.hang_seconds)
        return self.task()


class FaultInjector:
    """Wrap a backend with a seeded, per-task-index fault schedule.

    Parameters
    ----------
    backend:
        Any :mod:`repro.cloud.executor` backend (or another wrapper).
    raise_rate / hang_rate / drop_rate:
        Probabilities (summing to at most 1) that a task index draws a
        raise, hang or result-drop fault from the schedule.
    hang_seconds:
        Sleep injected by hang faults (choose it above the backend's
        ``task_timeout`` to simulate a hung worker).
    max_failures:
        Raise/hang faults misbehave for ``1..max_failures`` calls
        (drawn from the schedule) before healing, so a retry policy
        with enough attempts always recovers the fault-free result.
    redeliver:
        Drop faults discard the task's *delivered result*; with
        ``redeliver`` the injector re-runs dropped tasks through the
        backend (at-least-once delivery), otherwise the slot becomes a
        failure.
    seed:
        Seed of the ``default_rng`` schedule — same seed, same task
        count, same faults, every time.
    """

    def __init__(
        self,
        backend: Any,
        raise_rate: float = 0.0,
        hang_rate: float = 0.0,
        drop_rate: float = 0.0,
        hang_seconds: float = 0.25,
        max_failures: int = 2,
        redeliver: bool = True,
        seed: int = 0,
        metrics: Optional[Any] = None,
    ) -> None:
        rates = (raise_rate, hang_rate, drop_rate)
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ReproError("fault rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ReproError("fault rates must sum to at most 1")
        if max_failures < 1:
            raise ReproError("max_failures must be >= 1")
        self.backend = backend
        self.raise_rate = raise_rate
        self.hang_rate = hang_rate
        self.drop_rate = drop_rate
        self.hang_seconds = hang_seconds
        self.max_failures = max_failures
        self.redeliver = redeliver
        self.seed = seed
        self.metrics = metrics

    @property
    def name(self) -> str:
        return f"fault-injector({getattr(self.backend, 'name', '?')})"

    @property
    def retry(self) -> Optional[Any]:
        """The wrapped backend's retry policy (for ``run_chunked``)."""
        return getattr(self.backend, "retry", None)

    def schedule(self, n_tasks: int) -> List[Optional[Fault]]:
        """The fault (or None) drawn for each task index."""
        rng = np.random.default_rng(self.seed)
        plan: List[Optional[Fault]] = []
        for _ in range(n_tasks):
            # Two draws per index, unconditionally, so the schedule at
            # index i never depends on which kinds earlier indexes drew.
            u = float(rng.random())
            failures = int(rng.integers(1, self.max_failures + 1))
            if u < self.raise_rate:
                plan.append(Fault("raise", failures=failures))
            elif u < self.raise_rate + self.hang_rate:
                plan.append(
                    Fault(
                        "hang",
                        failures=failures,
                        hang_seconds=self.hang_seconds,
                    )
                )
            elif u < self.raise_rate + self.hang_rate + self.drop_rate:
                plan.append(Fault("drop"))
            else:
                plan.append(None)
        return plan

    def run(self, tasks: Sequence[Callable[[], Any]]) -> Any:
        from repro.cloud.executor import SweepResult, TaskFailure

        tasks = list(tasks)
        plan = self.schedule(len(tasks))
        injected = sum(1 for fault in plan if fault is not None)
        if self.metrics is not None and injected:
            self.metrics.counter("resilience.faults_injected").inc(
                injected
            )
        wrapped = [
            task
            if fault is None or fault.kind == "drop"
            else FaultyTask(task, fault)
            for task, fault in zip(tasks, plan)
        ]
        outcome = self.backend.run(wrapped)
        results = list(outcome.results)
        wall = outcome.wall_seconds
        dropped = [
            index
            for index, fault in enumerate(plan)
            if fault is not None
            and fault.kind == "drop"
            and not isinstance(results[index], TaskFailure)
        ]
        if dropped and self.redeliver:
            redo = self.backend.run([tasks[index] for index in dropped])
            for slot, value in zip(dropped, redo.results):
                results[slot] = value
            wall += redo.wall_seconds
        elif dropped:
            for index in dropped:
                results[index] = TaskFailure(
                    InjectedFault("result dropped in transit"),
                    history=["InjectedFault: result dropped in transit"],
                )
        failures = sum(
            1 for value in results if isinstance(value, TaskFailure)
        )
        return SweepResult(
            results=results,
            wall_seconds=wall,
            simulated_seconds=outcome.simulated_seconds,
            n_failures=failures,
            task_seconds=outcome.task_seconds,
            queue_seconds=outcome.queue_seconds,
        )
