"""Parameter-sweep service over an execution backend.

The optimiser explores "large parameter spaces ... at different
abstraction levels (i.e., end-goal analysis, algorithm and algorithm
parameters)". :class:`ParameterSweep` is the plumbing: it expands a
parameter grid, evaluates a function at every grid point through an
executor backend and collects scored outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cloud.executor import SerialExecutor, SweepResult, TaskFailure
from repro.exceptions import ReproError


@dataclass
class SweepPoint:
    """One evaluated grid point."""

    params: Dict[str, Any]
    value: Any

    @property
    def failed(self) -> bool:
        return isinstance(self.value, TaskFailure)


def expand_grid(grid: Dict[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a ``name -> values`` grid, in stable order."""
    if not grid:
        raise ReproError("empty parameter grid")
    names = list(grid)
    combos = []
    for values in product(*(grid[name] for name in names)):
        combos.append(dict(zip(names, values)))
    return combos


class ParameterSweep:
    """Evaluate ``function(**params)`` over a parameter grid.

    Parameters
    ----------
    function:
        Callable evaluated at each grid point.
    executor:
        Backend from :mod:`repro.cloud.executor`; serial by default.
    retry:
        Optional :class:`repro.cloud.resilience.RetryPolicy` for the
        default serial backend (ignored when ``executor`` is given —
        configure retries on the backend itself in that case).
    """

    def __init__(
        self,
        function: Callable[..., Any],
        executor=None,
        retry=None,
    ) -> None:
        self.function = function
        self.executor = executor or SerialExecutor(retry=retry)

    def run(self, grid: Dict[str, Sequence[Any]]) -> List[SweepPoint]:
        """Expand the grid and evaluate every point."""
        combos = expand_grid(grid)
        tasks = [
            (lambda params=params: self.function(**params))
            for params in combos
        ]
        outcome: SweepResult = self.executor.run(tasks)
        return [
            SweepPoint(params=params, value=value)
            for params, value in zip(combos, outcome.results)
        ]

    def best(
        self,
        grid: Dict[str, Sequence[Any]],
        key: Callable[[Any], float],
        maximize: bool = True,
    ) -> SweepPoint:
        """Run the sweep and return the best-scoring successful point."""
        points = self.run(grid)
        survivors = [point for point in points if not point.failed]
        if not survivors:
            errors = sorted(
                {type(point.value.error).__name__ for point in points}
            )
            raise ReproError(
                "every sweep point failed"
                + (f" ({', '.join(errors)})" if errors else "")
            )
        chooser = max if maximize else min
        return chooser(survivors, key=lambda point: key(point.value))
