"""Execution backends and parameter-sweep service."""

from repro.cloud.executor import (
    SerialExecutor,
    SimulatedClusterExecutor,
    SweepResult,
    TaskFailure,
    ThreadPoolExecutorBackend,
    make_executor,
)
from repro.cloud.sweep import ParameterSweep, SweepPoint, expand_grid

__all__ = [
    "ParameterSweep",
    "SerialExecutor",
    "SimulatedClusterExecutor",
    "SweepPoint",
    "SweepResult",
    "TaskFailure",
    "ThreadPoolExecutorBackend",
    "expand_grid",
    "make_executor",
]
