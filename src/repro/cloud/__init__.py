"""Execution backends and parameter-sweep service."""

from repro.cloud.executor import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedClusterExecutor,
    SweepResult,
    TaskFailure,
    TaskSpec,
    ThreadPoolExecutorBackend,
    make_executor,
    run_chunked,
)
from repro.cloud.sweep import ParameterSweep, SweepPoint, expand_grid

__all__ = [
    "ParameterSweep",
    "ProcessPoolExecutorBackend",
    "SerialExecutor",
    "SimulatedClusterExecutor",
    "SweepPoint",
    "SweepResult",
    "TaskFailure",
    "TaskSpec",
    "ThreadPoolExecutorBackend",
    "expand_grid",
    "make_executor",
    "run_chunked",
]
