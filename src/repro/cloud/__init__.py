"""Execution backends, parameter-sweep service and fault tolerance."""

from repro.cloud.executor import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedClusterExecutor,
    SweepResult,
    TaskFailure,
    TaskSpec,
    ThreadPoolExecutorBackend,
    make_executor,
    payload_bytes,
    run_chunked,
)
from repro.cloud.resilience import (
    CircuitBreaker,
    FaultInjector,
    ResilientExecutor,
    RetryOutcome,
    RetryPolicy,
)
from repro.cloud.sweep import ParameterSweep, SweepPoint, expand_grid
from repro.cloud.transport import (
    SharedLogHandle,
    backend_name,
    log_lease,
    matrix_lease,
    open_log,
    uses_processes,
)

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "ParameterSweep",
    "ProcessPoolExecutorBackend",
    "ResilientExecutor",
    "RetryOutcome",
    "RetryPolicy",
    "SerialExecutor",
    "SharedLogHandle",
    "SimulatedClusterExecutor",
    "SweepPoint",
    "SweepResult",
    "TaskFailure",
    "TaskSpec",
    "ThreadPoolExecutorBackend",
    "backend_name",
    "expand_grid",
    "log_lease",
    "make_executor",
    "matrix_lease",
    "open_log",
    "payload_bytes",
    "uses_processes",
    "run_chunked",
]
