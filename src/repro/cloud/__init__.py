"""Execution backends, parameter-sweep service and fault tolerance."""

from repro.cloud.executor import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedClusterExecutor,
    SweepResult,
    TaskFailure,
    TaskSpec,
    ThreadPoolExecutorBackend,
    make_executor,
    run_chunked,
)
from repro.cloud.resilience import (
    CircuitBreaker,
    FaultInjector,
    ResilientExecutor,
    RetryOutcome,
    RetryPolicy,
)
from repro.cloud.sweep import ParameterSweep, SweepPoint, expand_grid

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "ParameterSweep",
    "ProcessPoolExecutorBackend",
    "ResilientExecutor",
    "RetryOutcome",
    "RetryPolicy",
    "SerialExecutor",
    "SimulatedClusterExecutor",
    "SweepPoint",
    "SweepResult",
    "TaskFailure",
    "TaskSpec",
    "ThreadPoolExecutorBackend",
    "expand_grid",
    "make_executor",
    "run_chunked",
]
