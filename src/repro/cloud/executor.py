"""Execution backends for configuration sweeps.

"A set of online cloud-based services for automatic configuration of
data analytics will exploit the computational advantages of massively
parallel cloud computing." The reproduction cannot assume a cloud, so
this module abstracts *where* candidate configurations run:

* :class:`SerialExecutor` — in-process, deterministic ordering;
* :class:`ThreadPoolExecutorBackend` — local threads (effective because
  the heavy kernels release the GIL inside numpy);
* :class:`ProcessPoolExecutorBackend` — local worker processes, the
  real-parallelism backend for CPU-bound sweeps. Tasks cross a process
  boundary, so they must be picklable: pass :class:`TaskSpec` (a
  module-level function plus arguments) rather than closures;
* :class:`SimulatedClusterExecutor` — runs tasks locally but models a
  cluster's scheduling: per-task dispatch latency and a worker count,
  reporting the *simulated* makespan alongside the real results. This
  lets benchmarks reason about cloud speed-ups without a cloud.

All backends evaluate ``tasks`` — zero-argument callables — and return
their results in submission order. A task that raises is reported as a
:class:`TaskFailure` rather than aborting the sweep. For fan-outs whose
per-task cost is small relative to dispatch overhead, :func:`run_chunked`
groups tasks into batches before handing them to any backend.

Fault tolerance: every backend accepts a ``retry`` policy (the
:class:`repro.cloud.resilience.RetryPolicy` duck type) applied *per
task* — serial and simulated backends retry inline, the thread pool
retries inside the worker thread, and the process pool ships the
policy into the worker so retries happen without an extra IPC round
trip. The pooled backends additionally accept a ``task_timeout``: a
task exceeding its wall-clock budget is failed with
:class:`~repro.exceptions.TaskTimeoutError` while its siblings'
results are kept, and the process backend respawns its pool so a hung
worker cannot wedge the sweep. Retry, timeout and worker-crash events
are mirrored into ``resilience.*`` metrics counters.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError, TaskTimeoutError, WorkerCrashError

Task = Callable[[], Any]


@dataclass(frozen=True)
class TaskSpec:
    """A picklable task: a module-level callable plus its arguments.

    Closures cannot cross a process boundary; a spec can, as long as
    ``fn`` is importable (module-level) and the arguments pickle. Specs
    are themselves zero-argument callables, so every backend accepts
    them interchangeably with plain thunks.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Optional[Dict[str, Any]] = None

    def __call__(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


@dataclass
class TaskFailure:
    """Marker result for a task that raised; carries the exception.

    ``attempts`` counts how many times the task ran before the failure
    stood (1 when no retry policy was active); ``history`` holds one
    ``"ExcType: message"`` line per failed attempt.
    """

    error: Exception
    attempts: int = 1
    history: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # failures are falsy in result lists
        return False


@dataclass
class SweepResult:
    """Results of an executor run plus timing metadata.

    ``task_seconds`` aligns with ``results``: the wall time each task
    spent executing (measured inside the worker for process backends),
    or None for tasks that never ran. ``queue_seconds`` — dispatch→start
    latency — is only populated by the pooled backends.
    """

    results: List[Any]
    wall_seconds: float
    simulated_seconds: Optional[float] = None
    n_failures: int = 0
    task_seconds: Optional[List[Optional[float]]] = None
    queue_seconds: Optional[List[float]] = None

    def successes(self) -> List[Any]:
        """Results of the tasks that did not fail."""
        return [r for r in self.results if not isinstance(r, TaskFailure)]


def _observe(metrics, task_seconds, queue_seconds, failures) -> None:
    """Record one run's telemetry into an obs metrics registry."""
    if metrics is None:
        return
    histogram = metrics.histogram("executor.task_seconds")
    for seconds in task_seconds or []:
        if seconds is not None:
            histogram.observe(seconds)
    latency = metrics.histogram("executor.queue_seconds")
    for seconds in queue_seconds or []:
        latency.observe(seconds)
    if failures:
        metrics.counter("executor.task_failures").inc(failures)


def payload_bytes(task) -> int:
    """Pickled size of one task — what a process boundary ships.

    The whole point of the shared-memory transport is visible here: a
    :class:`TaskSpec` carrying a raw matrix weighs megabytes, one
    carrying a :class:`repro.data.SharedMatrixHandle` weighs a few
    hundred bytes. Unpicklable tasks report 0 (the pool path will fail
    them as :class:`TaskFailure` anyway).
    """
    try:
        return len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - any pickle error means "won't ship"
        return 0


def _observe_payloads(metrics, tasks) -> None:
    """Record per-task payload sizes into ``cloud.payload_bytes``.

    Only process backends call this: in-process backends serialise
    nothing, so a payload histogram there would measure a cost that is
    never paid.
    """
    if metrics is None:
        return
    from repro.obs.metrics import PAYLOAD_BUCKETS

    histogram = metrics.histogram(
        "cloud.payload_bytes", bounds=PAYLOAD_BUCKETS
    )
    for task in tasks:
        histogram.observe(float(payload_bytes(task)))


def _observe_resilience(
    metrics, retries: int = 0, timeouts: int = 0, crashes: int = 0
) -> None:
    """Record retry/timeout/crash events into a metrics registry."""
    if metrics is None:
        return
    if retries:
        metrics.counter("resilience.retries").inc(retries)
    if timeouts:
        metrics.counter("resilience.timeouts").inc(timeouts)
    if crashes:
        metrics.counter("resilience.worker_crashes").inc(crashes)


def _attempt(task: Task, retry, index: int) -> Tuple[Any, int]:
    """Run one task, optionally under a retry policy; never raises.

    ``retry`` is any object with the
    :class:`repro.cloud.resilience.RetryPolicy` duck type — an
    ``execute(task, task_index)`` method returning an outcome with
    ``value``/``error``/``attempts``/``history``. Returns the task's
    value (or a :class:`TaskFailure`) plus the number of retries used.
    """
    if retry is None:
        try:
            return task(), 0
        except Exception as exc:  # noqa: BLE001 - reported, not lost
            return TaskFailure(exc), 0
    outcome = retry.execute(task, index)
    used = outcome.attempts - 1
    if outcome.error is not None:
        return (
            TaskFailure(
                outcome.error,
                attempts=outcome.attempts,
                history=list(outcome.history),
            ),
            used,
        )
    return outcome.value, used


class SerialExecutor:
    """Run tasks one after the other in the calling thread."""

    name = "serial"

    def __init__(self, metrics=None, retry=None) -> None:
        self.metrics = metrics
        self.retry = retry

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        task_seconds: List[Optional[float]] = []
        failures = 0
        retries = 0
        for index, task in enumerate(tasks):
            t0 = time.perf_counter()
            value, used = _attempt(task, self.retry, index)
            retries += used
            if isinstance(value, TaskFailure):
                failures += 1
            results.append(value)
            task_seconds.append(time.perf_counter() - t0)
        _observe(self.metrics, task_seconds, None, failures)
        _observe_resilience(self.metrics, retries=retries)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
        )


class ThreadPoolExecutorBackend:
    """Run tasks on a local thread pool (numpy releases the GIL).

    ``task_timeout`` bounds how long the parent waits on each task
    (measured from when the parent starts waiting, so queueing behind a
    busy pool does not count against the task). A timed-out slot
    becomes a :class:`TaskFailure` carrying
    :class:`~repro.exceptions.TaskTimeoutError`; threads cannot be
    killed, so the hung thread itself is orphaned until its task
    returns and the pool is released without joining it.
    """

    name = "threads"

    def __init__(
        self,
        max_workers: int = 4,
        metrics=None,
        retry=None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ReproError("task_timeout must be > 0")
        self.max_workers = max_workers
        self.metrics = metrics
        self.retry = retry
        self.task_timeout = task_timeout

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = [None] * len(tasks)
        task_seconds: List[Optional[float]] = [None] * len(tasks)
        queue_seconds: List[float] = [0.0] * len(tasks)
        failures = 0
        retries = 0
        timeouts = 0

        def wrap(index: int, task: Task, submitted: float):
            begun = time.perf_counter()
            value, used = _attempt(task, self.retry, index)
            return index, value, used, time.perf_counter() - begun, (
                begun - submitted
            )

        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        clean = True
        try:
            futures = [
                pool.submit(wrap, index, task, time.perf_counter())
                for index, task in enumerate(tasks)
            ]
            for position, future in enumerate(futures):
                try:
                    index, value, used, seconds, waited = future.result(
                        timeout=self.task_timeout
                    )
                except FuturesTimeout:
                    future.cancel()
                    clean = False
                    timeouts += 1
                    failures += 1
                    results[position] = TaskFailure(
                        TaskTimeoutError(
                            f"task {position} exceeded its "
                            f"{self.task_timeout:g}s wall-clock budget"
                        )
                    )
                    continue
                results[index] = value
                task_seconds[index] = seconds
                queue_seconds[index] = max(0.0, waited)
                retries += used
                if isinstance(value, TaskFailure):
                    failures += 1
        finally:
            # A hung thread cannot be joined without wedging the sweep;
            # on a clean run this is an ordinary synchronous shutdown.
            pool.shutdown(wait=clean, cancel_futures=True)
        _observe(self.metrics, task_seconds, queue_seconds, failures)
        _observe_resilience(
            self.metrics, retries=retries, timeouts=timeouts
        )
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
            queue_seconds=queue_seconds,
        )


def _picklable_error(error: Exception) -> Exception:
    """Return ``error`` if it survives pickling, else a summary of it.

    Worker results travel back through a pipe; an exception holding an
    unpicklable payload would otherwise poison its whole chunk.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickle failure downgrades
        return ReproError(f"{type(error).__name__}: {error!r}")


@dataclass
class ChunkReport:
    """A worker's report for one timed chunk: results plus telemetry.

    ``started_at`` is the worker's ``time.time()`` when it began the
    chunk — same-machine comparable with the parent's submission stamp,
    which is how queue latency crosses the process boundary.
    ``retries`` counts in-worker retry attempts beyond each task's
    first, so the parent can aggregate them without extra IPC.
    """

    results: List[Any]
    task_seconds: List[float]
    started_at: float
    retries: int = 0


def _execute_chunk(
    tasks: Sequence[Task],
    timed: bool = False,
    retry=None,
    base_index: int = 0,
):
    """Worker entry point: run a batch of tasks, capturing failures.

    With ``timed`` (threaded through the dispatching
    :class:`TaskSpec`'s arguments, so it crosses the process boundary),
    per-task wall times and the chunk start stamp come back inside a
    :class:`ChunkReport` rather than a bare result list. ``retry``
    applies the retry policy *inside* the worker — backoff and
    re-attempts never pay a process round trip — and ``base_index``
    keeps the policy's per-task jitter streams aligned with global
    task indexes.
    """
    started_at = time.time()
    results: List[Any] = []
    task_seconds: List[float] = []
    retries = 0
    for offset, task in enumerate(tasks):
        t0 = time.perf_counter()
        value, used = _attempt(task, retry, base_index + offset)
        retries += used
        if isinstance(value, TaskFailure):
            value = TaskFailure(
                _picklable_error(value.error),
                attempts=value.attempts,
                history=value.history,
            )
        results.append(value)
        task_seconds.append(time.perf_counter() - t0)
    if timed:
        return ChunkReport(
            results=results,
            task_seconds=task_seconds,
            started_at=started_at,
            retries=retries,
        )
    return results


def _partition(tasks: Sequence[Task], chunk_size: int) -> List[List[Task]]:
    return [
        list(tasks[start : start + chunk_size])
        for start in range(0, len(tasks), chunk_size)
    ]


class ProcessPoolExecutorBackend:
    """Run tasks on local worker processes (true CPU parallelism).

    Parameters
    ----------
    workers:
        Number of worker processes.
    chunk_size:
        Tasks shipped to a worker per dispatch. Larger chunks amortise
        the pickle/IPC overhead of small tasks; 1 maximises balance.
    mp_context:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or None for the platform default. Task specs
        are pickled either way, so both fork and spawn starts work.
    retry:
        Optional per-task retry policy, shipped into the worker (it
        must pickle — :class:`repro.cloud.resilience.RetryPolicy`
        does) so re-attempts happen without extra IPC.
    task_timeout:
        Per-task wall-clock budget. A chunk of *k* tasks gets a
        ``k * task_timeout`` budget; when it expires the chunk is
        respawned as single-task chunks so the hung task is isolated
        (and finally failed with
        :class:`~repro.exceptions.TaskTimeoutError`) while its
        siblings re-run to completion. The budget excludes time spent
        queued behind other chunks, and retries run inside it.

    Tasks should be :class:`TaskSpec` instances (or otherwise picklable
    zero-argument callables). A task that fails to pickle — or raises in
    the worker — is reported as a :class:`TaskFailure` in its slot; a
    worker-process death fails only the culprit task (as a
    :class:`~repro.exceptions.WorkerCrashError`) after the pool is
    respawned and its chunk's siblings are re-executed; the rest of
    the sweep is unaffected either way.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 4,
        chunk_size: int = 1,
        mp_context: Optional[str] = None,
        metrics=None,
        retry=None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ReproError("workers must be >= 1")
        if chunk_size < 1:
            raise ReproError("chunk_size must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ReproError("task_timeout must be > 0")
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.metrics = metrics
        self.retry = retry
        self.task_timeout = task_timeout

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        tasks = list(tasks)
        _observe_payloads(self.metrics, tasks)
        results: List[Any] = [None] * len(tasks)
        task_seconds: List[Optional[float]] = [None] * len(tasks)
        queue_seconds: List[float] = []
        counts = {
            "chunk_failures": 0,
            "timeouts": 0,
            "crashes": 0,
            "retries": 0,
        }
        # How often a singleton task may ride a broken pool before it
        # is condemned as the crasher: a broken pool cannot say which
        # task killed the worker, so innocents get re-runs up to the
        # retry budget.
        crash_budget = (
            self.retry.max_attempts - 1 if self.retry is not None else 0
        )
        crash_counts: Dict[int, int] = {}

        def place(report: ChunkReport, chunk, dispatched) -> None:
            for index, value, seconds in zip(
                chunk, report.results, report.task_seconds
            ):
                results[index] = value
                task_seconds[index] = seconds
            queue_seconds.append(max(0.0, report.started_at - dispatched))
            counts["retries"] += report.retries

        def split(chunk, requeue) -> None:
            counts["chunk_failures"] += 1
            requeue.extend([index] for index in chunk)

        def crash(chunk, exc, requeue) -> None:
            if len(chunk) > 1:
                split(chunk, requeue)
                return
            counts["chunk_failures"] += 1
            index = chunk[0]
            crash_counts[index] = crash_counts.get(index, 0) + 1
            if crash_counts[index] <= crash_budget:
                requeue.append([index])
                return
            counts["crashes"] += 1
            results[index] = TaskFailure(
                WorkerCrashError(
                    f"worker process died running task {index}: {exc}"
                ),
                attempts=crash_counts[index],
                history=[f"WorkerCrashError: {exc}"] * crash_counts[index],
            )

        def flunk(chunk, exc, requeue) -> None:
            # The future failed without breaking the pool (typically
            # the chunk did not pickle): split to isolate the culprit,
            # fail it outright once it is alone.
            counts["chunk_failures"] += 1
            if len(chunk) > 1:
                requeue.extend([index] for index in chunk)
            else:
                results[chunk[0]] = TaskFailure(_picklable_error(exc))

        def harvest(future, chunk, dispatched, requeue) -> None:
            # Settle an already-finished future while the pool is
            # being condemned — completed siblings are never re-run.
            try:
                report = future.result(timeout=0)
            except BrokenProcessPool:
                # A broken pool fails *every* pending future with the
                # same exception; this chunk is an innocent bystander
                # of the crash already being handled, so it re-runs
                # whole next round rather than being blamed.
                requeue.append(chunk)
            except Exception as exc:  # noqa: BLE001 - settled per task
                flunk(chunk, exc, requeue)
            else:
                place(report, chunk, dispatched)

        def settle(future, chunk, dispatched, requeue) -> bool:
            # Wait for one future; False means the pool must die.
            budget = (
                self.task_timeout * len(chunk)
                if self.task_timeout is not None
                else None
            )
            try:
                report = future.result(timeout=budget)
            except FuturesTimeout:
                future.cancel()
                counts["chunk_failures"] += 1
                if len(chunk) > 1:
                    requeue.extend([index] for index in chunk)
                else:
                    counts["timeouts"] += 1
                    results[chunk[0]] = TaskFailure(
                        TaskTimeoutError(
                            f"task {chunk[0]} exceeded its "
                            f"{self.task_timeout:g}s wall-clock budget"
                        )
                    )
                return False
            except BrokenProcessPool as exc:
                crash(chunk, exc, requeue)
                return False
            except Exception as exc:  # noqa: BLE001 - settled per task
                flunk(chunk, exc, requeue)
                return True
            place(report, chunk, dispatched)
            return True

        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        pending: List[List[int]] = [
            list(range(low, min(low + self.chunk_size, len(tasks))))
            for low in range(0, len(tasks), self.chunk_size)
        ]
        # Each round either settles every chunk or condemns the pool,
        # keeps whatever finished, and respawns the rest — with the
        # culprit chunk split or resolved, so the loop always shrinks.
        while pending:
            # Not a ``with`` block: on an error (or KeyboardInterrupt)
            # mid-run, ``__exit__`` would wait for every queued chunk
            # to finish, leaking busy workers. Cancel what never
            # started, then wait only for the in-flight chunks.
            pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
            requeue: List[List[int]] = []
            healthy = True
            try:
                futures: List[Any] = []
                submitted: List[float] = []
                for chunk in pending:
                    batch = [tasks[index] for index in chunk]
                    try:
                        # _execute_chunk stamps queue-latency telemetry
                        # with time.time(); the timestamps never feed
                        # results, so the clock read is benign here.
                        futures.append(
                            # The executor is higher-order by design:
                            # certifying the submitted callables is
                            # the *caller's* contract (ADA019 at the
                            # submission site), not the pool's.
                            pool.submit(  # adalint: disable=ADA009,ADA019
                                _execute_chunk,
                                batch,
                                True,
                                self.retry,
                                chunk[0],
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - submit
                        futures.append(None)
                        flunk(chunk, exc, requeue)
                    submitted.append(time.time())
                for future, chunk, dispatched in zip(
                    futures, pending, submitted
                ):
                    if future is None:
                        continue
                    if not healthy:
                        if future.done():
                            harvest(future, chunk, dispatched, requeue)
                        else:
                            future.cancel()
                            requeue.append(chunk)
                        continue
                    healthy = settle(future, chunk, dispatched, requeue)
            finally:
                if healthy:
                    pool.shutdown(wait=True, cancel_futures=True)
                else:
                    _kill_pool(pool)
            pending = requeue
        failures = sum(
            1 for value in results if isinstance(value, TaskFailure)
        )
        _observe(self.metrics, task_seconds, queue_seconds, failures)
        if self.metrics is not None and counts["chunk_failures"]:
            self.metrics.counter("executor.chunk_failures").inc(
                counts["chunk_failures"]
            )
        _observe_resilience(
            self.metrics,
            retries=counts["retries"],
            timeouts=counts["timeouts"],
            crashes=counts["crashes"],
        )
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
            queue_seconds=queue_seconds,
        )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that holds hung or dead workers.

    ``shutdown(wait=False)`` alone would leave a hung worker running
    (and the interpreter joining its queue threads at exit), so the
    worker processes are terminated explicitly.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():
            process.terminate()


def run_chunked(
    executor,
    fn: Callable[..., Any],
    items: Sequence[Any],
    chunk_size: int = 1,
) -> SweepResult:
    """Fan ``fn`` out over ``items`` in chunks through any backend.

    Builds one :class:`TaskSpec` per item (so the fan-out is picklable
    for process backends), partitions them into ``chunk_size`` batches
    to amortise dispatch overhead, and flattens the batched results back
    into item order. Per-item failures stay :class:`TaskFailure`s in
    their slots. The executor's retry policy (if any) is threaded into
    the inner batches so it still applies per *item*, not per batch.
    """
    if chunk_size < 1:
        raise ReproError("chunk_size must be >= 1")
    retry = getattr(executor, "retry", None)
    # run_chunked is generic plumbing: ``fn`` is the caller's callable
    # and is certified (or pragma'd) at the caller's site.
    specs: List[Task] = [
        TaskSpec(fn, (item,))  # adalint: disable=ADA019
        for item in items
    ]
    batches = _partition(specs, chunk_size)
    # _execute_chunk's time.time() stamp is telemetry-only (queue
    # latency); it never influences task results.
    outcome = executor.run(
        [
            TaskSpec(  # adalint: disable=ADA009,ADA019
                _execute_chunk,
                (batch,),
                {"retry": retry, "base_index": start},
            )
            for start, batch in zip(
                range(0, len(specs), chunk_size), batches
            )
        ]
    )
    results: List[Any] = []
    for value, batch in zip(outcome.results, batches):
        if isinstance(value, TaskFailure):
            results.extend([value] * len(batch))
        else:
            results.extend(value)
    failures = sum(1 for value in results if isinstance(value, TaskFailure))
    return SweepResult(
        results=results,
        wall_seconds=outcome.wall_seconds,
        simulated_seconds=outcome.simulated_seconds,
        n_failures=failures,
    )


class SimulatedClusterExecutor:
    """Local execution with a simulated cluster cost model.

    Each task is timed locally; the simulator then schedules those
    durations greedily (longest processing time first is *not* used —
    submission order, as a real queue would) onto ``n_workers`` workers,
    adding ``dispatch_latency`` per task, and reports the resulting
    makespan as ``simulated_seconds``.
    """

    name = "simulated-cluster"

    def __init__(
        self,
        n_workers: int = 8,
        dispatch_latency: float = 0.05,
        metrics=None,
        retry=None,
    ) -> None:
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if dispatch_latency < 0:
            raise ReproError("dispatch_latency must be >= 0")
        self.n_workers = n_workers
        self.dispatch_latency = dispatch_latency
        self.metrics = metrics
        self.retry = retry

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        durations: List[float] = []
        failures = 0
        retries = 0
        for index, task in enumerate(tasks):
            t0 = time.perf_counter()
            value, used = _attempt(task, self.retry, index)
            retries += used
            if isinstance(value, TaskFailure):
                failures += 1
            results.append(value)
            durations.append(time.perf_counter() - t0)
        _observe(self.metrics, durations, None, failures)
        _observe_resilience(self.metrics, retries=retries)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            simulated_seconds=self.simulate_makespan(durations),
            n_failures=failures,
            task_seconds=list(durations),
        )

    def simulate_makespan(self, durations: Sequence[float]) -> float:
        """Makespan of scheduling ``durations`` on the modelled cluster."""
        workers = [0.0] * self.n_workers
        for duration in durations:
            soonest = min(range(self.n_workers), key=workers.__getitem__)
            workers[soonest] += self.dispatch_latency + duration
        return max(workers) if workers else 0.0


_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadPoolExecutorBackend,
    "process": ProcessPoolExecutorBackend,
    "simulated-cluster": SimulatedClusterExecutor,
}


def make_executor(name: str, **kwargs):
    """Instantiate an executor backend by name."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown executor {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    return backend(**kwargs)
