"""Execution backends for configuration sweeps.

"A set of online cloud-based services for automatic configuration of
data analytics will exploit the computational advantages of massively
parallel cloud computing." The reproduction cannot assume a cloud, so
this module abstracts *where* candidate configurations run:

* :class:`SerialExecutor` — in-process, deterministic ordering;
* :class:`ThreadPoolExecutorBackend` — local threads (effective because
  the heavy kernels release the GIL inside numpy);
* :class:`ProcessPoolExecutorBackend` — local worker processes, the
  real-parallelism backend for CPU-bound sweeps. Tasks cross a process
  boundary, so they must be picklable: pass :class:`TaskSpec` (a
  module-level function plus arguments) rather than closures;
* :class:`SimulatedClusterExecutor` — runs tasks locally but models a
  cluster's scheduling: per-task dispatch latency and a worker count,
  reporting the *simulated* makespan alongside the real results. This
  lets benchmarks reason about cloud speed-ups without a cloud.

All backends evaluate ``tasks`` — zero-argument callables — and return
their results in submission order. A task that raises is reported as a
:class:`TaskFailure` rather than aborting the sweep. For fan-outs whose
per-task cost is small relative to dispatch overhead, :func:`run_chunked`
groups tasks into batches before handing them to any backend.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

Task = Callable[[], Any]


@dataclass(frozen=True)
class TaskSpec:
    """A picklable task: a module-level callable plus its arguments.

    Closures cannot cross a process boundary; a spec can, as long as
    ``fn`` is importable (module-level) and the arguments pickle. Specs
    are themselves zero-argument callables, so every backend accepts
    them interchangeably with plain thunks.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Optional[Dict[str, Any]] = None

    def __call__(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


@dataclass
class TaskFailure:
    """Marker result for a task that raised; carries the exception."""

    error: Exception

    def __bool__(self) -> bool:  # failures are falsy in result lists
        return False


@dataclass
class SweepResult:
    """Results of an executor run plus timing metadata.

    ``task_seconds`` aligns with ``results``: the wall time each task
    spent executing (measured inside the worker for process backends),
    or None for tasks that never ran. ``queue_seconds`` — dispatch→start
    latency — is only populated by the pooled backends.
    """

    results: List[Any]
    wall_seconds: float
    simulated_seconds: Optional[float] = None
    n_failures: int = 0
    task_seconds: Optional[List[Optional[float]]] = None
    queue_seconds: Optional[List[float]] = None

    def successes(self) -> List[Any]:
        """Results of the tasks that did not fail."""
        return [r for r in self.results if not isinstance(r, TaskFailure)]


def _observe(metrics, task_seconds, queue_seconds, failures) -> None:
    """Record one run's telemetry into an obs metrics registry."""
    if metrics is None:
        return
    histogram = metrics.histogram("executor.task_seconds")
    for seconds in task_seconds or []:
        if seconds is not None:
            histogram.observe(seconds)
    latency = metrics.histogram("executor.queue_seconds")
    for seconds in queue_seconds or []:
        latency.observe(seconds)
    if failures:
        metrics.counter("executor.task_failures").inc(failures)


class SerialExecutor:
    """Run tasks one after the other in the calling thread."""

    name = "serial"

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        task_seconds: List[Optional[float]] = []
        failures = 0
        for task in tasks:
            t0 = time.perf_counter()
            try:
                results.append(task())
            except Exception as exc:  # noqa: BLE001 - reported, not lost
                results.append(TaskFailure(exc))
                failures += 1
            task_seconds.append(time.perf_counter() - t0)
        _observe(self.metrics, task_seconds, None, failures)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
        )


class ThreadPoolExecutorBackend:
    """Run tasks on a local thread pool (numpy releases the GIL)."""

    name = "threads"

    def __init__(self, max_workers: int = 4, metrics=None) -> None:
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.metrics = metrics

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = [None] * len(tasks)
        task_seconds: List[Optional[float]] = [None] * len(tasks)
        queue_seconds: List[float] = [0.0] * len(tasks)
        failures = 0

        def wrap(index: int, task: Task, submitted: float):
            begun = time.perf_counter()
            try:
                value = task()
            except Exception as exc:  # noqa: BLE001
                value = TaskFailure(exc)
            return index, value, time.perf_counter() - begun, (
                begun - submitted
            )

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(wrap, index, task, time.perf_counter())
                for index, task in enumerate(tasks)
            ]
            for future in futures:
                index, value, seconds, waited = future.result()
                results[index] = value
                task_seconds[index] = seconds
                queue_seconds[index] = max(0.0, waited)
                if isinstance(value, TaskFailure):
                    failures += 1
        _observe(self.metrics, task_seconds, queue_seconds, failures)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
            queue_seconds=queue_seconds,
        )


def _picklable_error(error: Exception) -> Exception:
    """Return ``error`` if it survives pickling, else a summary of it.

    Worker results travel back through a pipe; an exception holding an
    unpicklable payload would otherwise poison its whole chunk.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickle failure downgrades
        return ReproError(f"{type(error).__name__}: {error!r}")


@dataclass
class ChunkReport:
    """A worker's report for one timed chunk: results plus telemetry.

    ``started_at`` is the worker's ``time.time()`` when it began the
    chunk — same-machine comparable with the parent's submission stamp,
    which is how queue latency crosses the process boundary.
    """

    results: List[Any]
    task_seconds: List[float]
    started_at: float


def _execute_chunk(tasks: Sequence[Task], timed: bool = False):
    """Worker entry point: run a batch of tasks, capturing failures.

    With ``timed`` (threaded through the dispatching
    :class:`TaskSpec`'s arguments, so it crosses the process boundary),
    per-task wall times and the chunk start stamp come back inside a
    :class:`ChunkReport` rather than a bare result list.
    """
    started_at = time.time()
    results: List[Any] = []
    task_seconds: List[float] = []
    for task in tasks:
        t0 = time.perf_counter()
        try:
            results.append(task())
        except Exception as exc:  # noqa: BLE001 - reported, not lost
            results.append(TaskFailure(_picklable_error(exc)))
        task_seconds.append(time.perf_counter() - t0)
    if timed:
        return ChunkReport(
            results=results,
            task_seconds=task_seconds,
            started_at=started_at,
        )
    return results


def _partition(tasks: Sequence[Task], chunk_size: int) -> List[List[Task]]:
    return [
        list(tasks[start : start + chunk_size])
        for start in range(0, len(tasks), chunk_size)
    ]


class ProcessPoolExecutorBackend:
    """Run tasks on local worker processes (true CPU parallelism).

    Parameters
    ----------
    workers:
        Number of worker processes.
    chunk_size:
        Tasks shipped to a worker per dispatch. Larger chunks amortise
        the pickle/IPC overhead of small tasks; 1 maximises balance.
    mp_context:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or None for the platform default. Task specs
        are pickled either way, so both fork and spawn starts work.

    Tasks should be :class:`TaskSpec` instances (or otherwise picklable
    zero-argument callables). A task that fails to pickle — or raises in
    the worker — is reported as a :class:`TaskFailure` in its slot;
    the rest of the sweep is unaffected.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 4,
        chunk_size: int = 1,
        mp_context: Optional[str] = None,
        metrics=None,
    ) -> None:
        if workers < 1:
            raise ReproError("workers must be >= 1")
        if chunk_size < 1:
            raise ReproError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.metrics = metrics

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        chunks = _partition(list(tasks), self.chunk_size)
        results: List[Any] = []
        task_seconds: List[Optional[float]] = []
        queue_seconds: List[float] = []
        chunk_failures = 0
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        # Not a ``with`` block: on an error (or KeyboardInterrupt)
        # mid-run, ``__exit__`` would wait for every queued chunk to
        # finish, leaking busy workers. Cancel what never started, then
        # wait only for the in-flight chunks.
        pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )
        try:
            futures = []
            submitted = []
            for chunk in chunks:
                try:
                    # _execute_chunk stamps queue-latency telemetry
                    # with time.time(); the timestamps never feed
                    # results, so the clock read is benign here.
                    futures.append(
                        pool.submit(  # adalint: disable=ADA009
                            _execute_chunk, chunk, True
                        )
                    )
                except Exception as exc:  # noqa: BLE001 - submit pickle
                    futures.append(TaskFailure(_picklable_error(exc)))
                submitted.append(time.time())
            for future, chunk, dispatched in zip(
                futures, chunks, submitted
            ):
                if isinstance(future, TaskFailure):
                    results.extend([future] * len(chunk))
                    task_seconds.extend([None] * len(chunk))
                    chunk_failures += 1
                    continue
                try:
                    report = future.result()
                except Exception as exc:  # noqa: BLE001 - worker death
                    failure = TaskFailure(_picklable_error(exc))
                    results.extend([failure] * len(chunk))
                    task_seconds.extend([None] * len(chunk))
                    chunk_failures += 1
                    continue
                results.extend(report.results)
                task_seconds.extend(report.task_seconds)
                queue_seconds.append(
                    max(0.0, report.started_at - dispatched)
                )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        failures = sum(
            1 for value in results if isinstance(value, TaskFailure)
        )
        _observe(self.metrics, task_seconds, queue_seconds, failures)
        if self.metrics is not None and chunk_failures:
            self.metrics.counter("executor.chunk_failures").inc(
                chunk_failures
            )
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
            task_seconds=task_seconds,
            queue_seconds=queue_seconds,
        )


def run_chunked(
    executor,
    fn: Callable[..., Any],
    items: Sequence[Any],
    chunk_size: int = 1,
) -> SweepResult:
    """Fan ``fn`` out over ``items`` in chunks through any backend.

    Builds one :class:`TaskSpec` per item (so the fan-out is picklable
    for process backends), partitions them into ``chunk_size`` batches
    to amortise dispatch overhead, and flattens the batched results back
    into item order. Per-item failures stay :class:`TaskFailure`s in
    their slots.
    """
    if chunk_size < 1:
        raise ReproError("chunk_size must be >= 1")
    specs: List[Task] = [TaskSpec(fn, (item,)) for item in items]
    batches = _partition(specs, chunk_size)
    # _execute_chunk's time.time() stamp is telemetry-only (queue
    # latency); it never influences task results.
    outcome = executor.run(
        [
            TaskSpec(_execute_chunk, (batch,))  # adalint: disable=ADA009
            for batch in batches
        ]
    )
    results: List[Any] = []
    for value, batch in zip(outcome.results, batches):
        if isinstance(value, TaskFailure):
            results.extend([value] * len(batch))
        else:
            results.extend(value)
    failures = sum(1 for value in results if isinstance(value, TaskFailure))
    return SweepResult(
        results=results,
        wall_seconds=outcome.wall_seconds,
        simulated_seconds=outcome.simulated_seconds,
        n_failures=failures,
    )


class SimulatedClusterExecutor:
    """Local execution with a simulated cluster cost model.

    Each task is timed locally; the simulator then schedules those
    durations greedily (longest processing time first is *not* used —
    submission order, as a real queue would) onto ``n_workers`` workers,
    adding ``dispatch_latency`` per task, and reports the resulting
    makespan as ``simulated_seconds``.
    """

    name = "simulated-cluster"

    def __init__(
        self,
        n_workers: int = 8,
        dispatch_latency: float = 0.05,
        metrics=None,
    ) -> None:
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if dispatch_latency < 0:
            raise ReproError("dispatch_latency must be >= 0")
        self.n_workers = n_workers
        self.dispatch_latency = dispatch_latency
        self.metrics = metrics

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        durations: List[float] = []
        failures = 0
        for task in tasks:
            t0 = time.perf_counter()
            try:
                results.append(task())
            except Exception as exc:  # noqa: BLE001
                results.append(TaskFailure(exc))
                failures += 1
            durations.append(time.perf_counter() - t0)
        _observe(self.metrics, durations, None, failures)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            simulated_seconds=self.simulate_makespan(durations),
            n_failures=failures,
            task_seconds=list(durations),
        )

    def simulate_makespan(self, durations: Sequence[float]) -> float:
        """Makespan of scheduling ``durations`` on the modelled cluster."""
        workers = [0.0] * self.n_workers
        for duration in durations:
            soonest = min(range(self.n_workers), key=workers.__getitem__)
            workers[soonest] += self.dispatch_latency + duration
        return max(workers) if workers else 0.0


_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadPoolExecutorBackend,
    "process": ProcessPoolExecutorBackend,
    "simulated-cluster": SimulatedClusterExecutor,
}


def make_executor(name: str, **kwargs):
    """Instantiate an executor backend by name."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown executor {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    return backend(**kwargs)
