"""Execution backends for configuration sweeps.

"A set of online cloud-based services for automatic configuration of
data analytics will exploit the computational advantages of massively
parallel cloud computing." The reproduction cannot assume a cloud, so
this module abstracts *where* candidate configurations run:

* :class:`SerialExecutor` — in-process, deterministic ordering;
* :class:`ThreadPoolExecutorBackend` — local threads (effective because
  the heavy kernels release the GIL inside numpy);
* :class:`SimulatedClusterExecutor` — runs tasks locally but models a
  cluster's scheduling: per-task dispatch latency and a worker count,
  reporting the *simulated* makespan alongside the real results. This
  lets benchmarks reason about cloud speed-ups without a cloud.

All backends evaluate ``tasks`` — zero-argument callables — and return
their results in submission order. A task that raises is reported as a
:class:`TaskFailure` rather than aborting the sweep.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

Task = Callable[[], Any]


@dataclass
class TaskFailure:
    """Marker result for a task that raised; carries the exception."""

    error: Exception

    def __bool__(self) -> bool:  # failures are falsy in result lists
        return False


@dataclass
class SweepResult:
    """Results of an executor run plus timing metadata."""

    results: List[Any]
    wall_seconds: float
    simulated_seconds: Optional[float] = None
    n_failures: int = 0

    def successes(self) -> List[Any]:
        """Results of the tasks that did not fail."""
        return [r for r in self.results if not isinstance(r, TaskFailure)]


class SerialExecutor:
    """Run tasks one after the other in the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        failures = 0
        for task in tasks:
            try:
                results.append(task())
            except Exception as exc:  # noqa: BLE001 - reported, not lost
                results.append(TaskFailure(exc))
                failures += 1
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
        )


class ThreadPoolExecutorBackend:
    """Run tasks on a local thread pool (numpy releases the GIL)."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = [None] * len(tasks)
        failures = 0

        def wrap(index: int, task: Task):
            try:
                return index, task()
            except Exception as exc:  # noqa: BLE001
                return index, TaskFailure(exc)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(wrap, index, task)
                for index, task in enumerate(tasks)
            ]
            for future in futures:
                index, value = future.result()
                results[index] = value
                if isinstance(value, TaskFailure):
                    failures += 1
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            n_failures=failures,
        )


class SimulatedClusterExecutor:
    """Local execution with a simulated cluster cost model.

    Each task is timed locally; the simulator then schedules those
    durations greedily (longest processing time first is *not* used —
    submission order, as a real queue would) onto ``n_workers`` workers,
    adding ``dispatch_latency`` per task, and reports the resulting
    makespan as ``simulated_seconds``.
    """

    name = "simulated-cluster"

    def __init__(
        self, n_workers: int = 8, dispatch_latency: float = 0.05
    ) -> None:
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if dispatch_latency < 0:
            raise ReproError("dispatch_latency must be >= 0")
        self.n_workers = n_workers
        self.dispatch_latency = dispatch_latency

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        start = time.perf_counter()
        results: List[Any] = []
        durations: List[float] = []
        failures = 0
        for task in tasks:
            t0 = time.perf_counter()
            try:
                results.append(task())
            except Exception as exc:  # noqa: BLE001
                results.append(TaskFailure(exc))
                failures += 1
            durations.append(time.perf_counter() - t0)
        return SweepResult(
            results=results,
            wall_seconds=time.perf_counter() - start,
            simulated_seconds=self.simulate_makespan(durations),
            n_failures=failures,
        )

    def simulate_makespan(self, durations: Sequence[float]) -> float:
        """Makespan of scheduling ``durations`` on the modelled cluster."""
        workers = [0.0] * self.n_workers
        for duration in durations:
            soonest = min(range(self.n_workers), key=workers.__getitem__)
            workers[soonest] += self.dispatch_latency + duration
        return max(workers) if workers else 0.0


_BACKENDS = {
    "serial": SerialExecutor,
    "threads": ThreadPoolExecutorBackend,
    "simulated-cluster": SimulatedClusterExecutor,
}


def make_executor(name: str, **kwargs):
    """Instantiate an executor backend by name."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown executor {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    return backend(**kwargs)
