"""Shared-memory task transport: leases, handles and backend probes.

The glue between the data plane (:mod:`repro.data.blocks`) and the
executor stack: callers that fan work out over a matrix or an exam log
take a *lease* around the dispatch —

::

    with matrix_lease(executor, matrix) as (ref,):
        tasks = [TaskSpec(work, (ref, k)) for k in k_values]
        outcome = executor.run(tasks)

— and the lease decides the transport. Serial, thread and
simulated-cluster backends short-circuit: the ref *is* the original
object and nothing is copied or mapped. Process backends copy the data
once into a :class:`repro.data.SharedMatrix` segment and hand out its
~100-byte picklable handle instead, so each ``TaskSpec`` pickles the
descriptor rather than the payload; workers resolve the handle with
:func:`repro.data.open_matrix` / :func:`open_log`.

Cleanup is unconditional: leases unlink their segments in ``finally``
blocks, so faulty sweeps — worker crashes, injected faults, timeouts —
cannot leak ``/dev/shm`` segments (pinned by the chaos regression
test).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.data.blocks import (
    BlockedDataset,
    SharedMatrix,
    SharedMatrixHandle,
    open_matrix,
)
from repro.data.records import ExamLog, PatientInfo
from repro.data.taxonomy import ExamTaxonomy

__all__ = [
    "SharedLogHandle",
    "backend_name",
    "log_lease",
    "matrix_lease",
    "open_log",
    "open_matrix",
    "uses_processes",
]


def backend_name(executor) -> str:
    """Name of the innermost backend, unwrapping resilience layers.

    :class:`~repro.cloud.resilience.ResilientExecutor` and
    :class:`~repro.cloud.resilience.FaultInjector` both expose the
    wrapped executor as ``.backend``; the chain bottoms out at a
    concrete backend with a ``name``.
    """
    seen = 0
    while hasattr(executor, "backend") and seen < 8:
        executor = executor.backend
        seen += 1
    return str(getattr(executor, "name", "unknown"))


def uses_processes(executor) -> bool:
    """True when tasks will cross a process boundary (pickled)."""
    return backend_name(executor) == "process"


@contextmanager
def matrix_lease(executor, *matrices) -> Iterator[Tuple]:
    """Lease matrices to a sweep: shared segments for process backends.

    Yields one ref per input matrix, in order. For in-process backends
    the refs are the matrices themselves (zero copy, zero syscalls);
    for process backends each matrix is copied once into a shared
    segment and the ref is its :class:`repro.data.SharedMatrixHandle`.
    Segments are unlinked when the ``with`` block exits — normally or
    not — so the lease is the single owner on every exit path.
    """
    if executor is None or not uses_processes(executor):
        yield tuple(matrices)
        return
    shared = []
    refs = []
    try:
        for matrix in matrices:
            if isinstance(matrix, BlockedDataset):
                matrix = matrix.matrix
            matrix = np.asarray(matrix)
            if matrix.dtype.kind == "O":
                # Object arrays hold pointers; a flat segment cannot
                # carry them, so they fall back to pickling.
                refs.append(matrix)
            else:
                segment = SharedMatrix.create(matrix)
                shared.append(segment)
                refs.append(segment.handle())
        yield tuple(refs)
    finally:
        for segment in shared:
            segment.unlink()


@dataclass(frozen=True)
class SharedLogHandle:
    """Picklable descriptor of an :class:`repro.data.ExamLog`.

    The record triples — the bulk of a log — travel as a shared
    ``(n_records, 3)`` int64 matrix; the taxonomy and demographics
    (small, per-patient) ride along pickled.
    """

    rows: SharedMatrixHandle
    taxonomy: ExamTaxonomy
    patients: Tuple[PatientInfo, ...]


#: Anything :func:`open_log` can resolve into an :class:`ExamLog`.
LogRef = Union[ExamLog, SharedLogHandle]


@contextmanager
def log_lease(executor, log: ExamLog) -> Iterator[LogRef]:
    """Lease an exam log to a sweep (the goal fan-out's transport).

    In-process backends receive the log object itself; process backends
    receive a :class:`SharedLogHandle` whose record rows live in a
    shared segment, unlinked in ``finally`` when the lease exits.
    """
    if executor is None or not uses_processes(executor):
        yield log
        return
    segment = SharedMatrix.create(log.to_rows())
    try:
        yield SharedLogHandle(
            rows=segment.handle(),
            taxonomy=log.taxonomy,
            patients=tuple(log.patients.values()),
        )
    finally:
        segment.unlink()


@contextmanager
def open_log(ref: LogRef) -> Iterator[ExamLog]:
    """Resolve a log reference in a worker (or in-process).

    A plain :class:`ExamLog` passes through; a
    :class:`SharedLogHandle` attaches the rows segment, rebuilds the
    log — records are copied out of the segment into objects — and
    detaches in ``finally``.
    """
    if isinstance(ref, SharedLogHandle):
        with open_matrix(ref.rows) as rows:
            yield ExamLog.from_rows(
                rows, taxonomy=ref.taxonomy, patients=ref.patients
            )
    else:
        yield ref
