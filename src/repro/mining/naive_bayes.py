"""Naive Bayes classifiers (Gaussian and multinomial).

The paper's optimiser used decision trees "in our first implementation"
— explicitly leaving the classifier pluggable. These two Bayes variants
are the natural alternatives for the robustness assessment: Gaussian NB
for scaled/normalised VSMs, multinomial NB for raw examination counts
(patient vectors are term-frequency-like, exactly multinomial NB's home
turf). The optimiser accepts either through its ``classifier_factory``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix


class GaussianNaiveBayes:
    """Gaussian NB with per-class feature means and variances.

    Variances are smoothed by ``var_smoothing`` times the largest
    feature variance, so constant features do not break the likelihood.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing <= 0:
            raise MiningError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self.theta_: Optional[np.ndarray] = None  # (k, d) means
        self.var_: Optional[np.ndarray] = None  # (k, d) variances
        self.class_log_prior_: Optional[np.ndarray] = None

    def fit(self, data, labels) -> "GaussianNaiveBayes":
        data = as_matrix(data)
        labels = np.asarray(labels)
        if labels.shape[0] != data.shape[0]:
            raise MiningError("labels must align with data")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        k = len(self.classes_)
        d = data.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        priors = np.zeros(k)
        epsilon = self.var_smoothing * max(data.var(axis=0).max(), 1e-12)
        for j in range(k):
            members = data[encoded == j]
            priors[j] = members.shape[0] / data.shape[0]
            self.theta_[j] = members.mean(axis=0)
            self.var_[j] = members.var(axis=0) + epsilon
        self.class_log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, data: np.ndarray) -> np.ndarray:
        if self.theta_ is None or self.var_ is None:
            raise NotFittedError("GaussianNaiveBayes is not fitted")
        outputs = []
        for j in range(len(self.classes_)):  # type: ignore[arg-type]
            log_det = -0.5 * np.log(2.0 * np.pi * self.var_[j]).sum()
            gaps = data - self.theta_[j]
            quad = -0.5 * (gaps**2 / self.var_[j]).sum(axis=1)
            outputs.append(
                self.class_log_prior_[j] + log_det + quad
            )
        return np.vstack(outputs).T

    def predict(self, data) -> np.ndarray:
        """Most probable class per row."""
        if self.classes_ is None:
            raise NotFittedError("GaussianNaiveBayes is not fitted")
        data = as_matrix(data)
        joint = self._joint_log_likelihood(data)
        return self.classes_[np.argmax(joint, axis=1)]

    def predict_proba(self, data) -> np.ndarray:
        """Posterior class probabilities (softmax of the joint)."""
        if self.classes_ is None:
            raise NotFittedError("GaussianNaiveBayes is not fitted")
        data = as_matrix(data)
        joint = self._joint_log_likelihood(data)
        joint -= joint.max(axis=1, keepdims=True)
        exp = np.exp(joint)
        return exp / exp.sum(axis=1, keepdims=True)

    def score(self, data, labels) -> float:
        """Mean accuracy."""
        labels = np.asarray(labels)
        return float((self.predict(data) == labels).mean())


class MultinomialNaiveBayes:
    """Multinomial NB for non-negative count data.

    ``alpha`` is the Laplace/Lidstone smoothing on feature counts.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise MiningError("alpha must be positive")
        self.alpha = alpha
        self.classes_: Optional[np.ndarray] = None
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.class_log_prior_: Optional[np.ndarray] = None

    def fit(self, data, labels) -> "MultinomialNaiveBayes":
        data = as_matrix(data)
        if (data < 0).any():
            raise MiningError("multinomial NB requires non-negative data")
        labels = np.asarray(labels)
        if labels.shape[0] != data.shape[0]:
            raise MiningError("labels must align with data")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        k = len(self.classes_)
        d = data.shape[1]
        counts = np.zeros((k, d))
        priors = np.zeros(k)
        for j in range(k):
            members = data[encoded == j]
            counts[j] = members.sum(axis=0) + self.alpha
            priors[j] = members.shape[0] / data.shape[0]
        self.feature_log_prob_ = np.log(
            counts / counts.sum(axis=1, keepdims=True)
        )
        self.class_log_prior_ = np.log(priors)
        return self

    def predict(self, data) -> np.ndarray:
        """Most probable class per row."""
        if self.classes_ is None:
            raise NotFittedError("MultinomialNaiveBayes is not fitted")
        data = as_matrix(data)
        joint = data @ self.feature_log_prob_.T + self.class_log_prior_
        return self.classes_[np.argmax(joint, axis=1)]

    def score(self, data, labels) -> float:
        """Mean accuracy."""
        labels = np.asarray(labels)
        return float((self.predict(data) == labels).mean())
