"""DBSCAN density-based clustering.

The exploratory engine ADA-HEALTH uses for *outlier detection* end-goals
(the paper notes rarely-prescribed exams "could affect other types of
analyses such as outlier detection"): points in low-density regions get
the noise label ``-1`` instead of being forced into a cluster.

Region queries run through the kd-tree for low/medium dimensionality and
fall back to brute force for very wide data (kd-trees degrade there).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, squared_euclidean
from repro.mining.kdtree import KDTree

#: Label assigned to noise points.
NOISE = -1


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (the point itself included) for a
        point to be a core point.
    brute_force_dims:
        Use brute-force region queries when the data has at least this
        many columns (kd-trees lose their advantage in high dimension).
    """

    def __init__(
        self,
        eps: float,
        min_samples: int = 5,
        brute_force_dims: int = 25,
    ) -> None:
        if eps <= 0:
            raise MiningError("eps must be positive")
        if min_samples < 1:
            raise MiningError("min_samples must be >= 1")
        self.eps = eps
        self.min_samples = min_samples
        self.brute_force_dims = brute_force_dims
        self.labels_: Optional[np.ndarray] = None
        self.core_sample_indices_: Optional[np.ndarray] = None

    def fit(self, data) -> "DBSCAN":
        """Cluster ``data``; returns ``self``."""
        data = as_matrix(data)
        n, dims = data.shape
        if dims >= self.brute_force_dims:
            neighbour_lists = self._brute_neighbours(data)
        else:
            tree = KDTree(data)
            neighbour_lists = [
                tree.query_radius(data[i], self.eps) for i in range(n)
            ]

        is_core = np.array(
            [len(nbrs) >= self.min_samples for nbrs in neighbour_lists]
        )
        labels = np.full(n, NOISE, dtype=int)
        cluster = 0
        for start in range(n):
            if labels[start] != NOISE or not is_core[start]:
                continue
            # BFS over density-reachable points.
            labels[start] = cluster
            queue = deque([start])
            while queue:
                point = queue.popleft()
                if not is_core[point]:
                    continue
                for neighbour in neighbour_lists[point]:
                    if labels[neighbour] == NOISE:
                        labels[neighbour] = cluster
                        queue.append(int(neighbour))
            cluster += 1
        self.labels_ = labels
        self.core_sample_indices_ = np.nonzero(is_core)[0]
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit and return the labels (noise = -1)."""
        return self.fit(data).labels_  # type: ignore[return-value]

    def _brute_neighbours(self, data: np.ndarray):
        """Radius neighbourhoods via a blocked distance computation."""
        n = data.shape[0]
        eps2 = self.eps * self.eps
        neighbour_lists = []
        block = max(1, 2_000_000 // max(n, 1))
        for start in range(0, n, block):
            chunk = data[start : start + block]
            distances = squared_euclidean(chunk, data)
            for row in distances:
                neighbour_lists.append(np.nonzero(row <= eps2)[0])
        return neighbour_lists

    def n_clusters(self) -> int:
        """Number of clusters found (noise excluded)."""
        if self.labels_ is None:
            raise NotFittedError("DBSCAN is not fitted")
        unique = set(self.labels_.tolist())
        unique.discard(NOISE)
        return len(unique)

    def noise_ratio(self) -> float:
        """Fraction of points labelled noise."""
        if self.labels_ is None:
            raise NotFittedError("DBSCAN is not fitted")
        return float((self.labels_ == NOISE).mean())
