"""Bootstrap stability assessment for clusterings.

The paper's optimiser assesses cluster "robustness" with a classifier;
this module provides the complementary *resampling* view: cluster
bootstrap replicates of the data and measure how consistently pairs of
points stay together (mean adjusted Rand index between replicate
clusterings, evaluated on the overlap). Stable structure survives
resampling; structure fitted to noise does not. Used by the ablation
benchmarks to corroborate the K chosen by Table I's combined rule.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import MiningError
from repro.mining.distance import as_matrix
from repro.mining.kmeans import KMeans
from repro.mining.metrics import adjusted_rand_index


def bootstrap_stability(
    data,
    n_clusters: int,
    n_replicates: int = 10,
    sample_fraction: float = 0.8,
    seed: int = 0,
    model_factory: Optional[Callable[[int], object]] = None,
) -> float:
    """Mean pairwise ARI of clusterings over bootstrap subsamples.

    Parameters
    ----------
    data:
        The matrix to cluster.
    n_clusters:
        K used for every replicate.
    n_replicates:
        Number of subsample clusterings; all pairs are compared on the
        intersection of their samples.
    sample_fraction:
        Fraction of rows drawn (without replacement) per replicate.
    model_factory:
        ``seed -> estimator`` with ``fit_predict``; K-means by default.

    Returns
    -------
    Mean ARI in ``[-1, 1]``; close to 1 = highly stable.
    """
    data = as_matrix(data)
    n = data.shape[0]
    if n_replicates < 2:
        raise MiningError("need at least 2 replicates")
    if not 0.1 <= sample_fraction <= 1.0:
        raise MiningError("sample_fraction must be in [0.1, 1.0]")
    take = max(n_clusters + 1, int(round(sample_fraction * n)))
    if take > n:
        raise MiningError("sample larger than the dataset")
    rng = np.random.default_rng(seed)

    if model_factory is None:
        model_factory = lambda replicate_seed: KMeans(
            n_clusters, seed=replicate_seed, n_init=2
        )

    samples = []
    labelings = []
    for replicate in range(n_replicates):
        rows = np.sort(rng.choice(n, size=take, replace=False))
        model = model_factory(seed + replicate)
        labels = model.fit_predict(data[rows])  # type: ignore[attr-defined]
        samples.append(rows)
        labelings.append(np.asarray(labels))

    scores = []
    for i in range(n_replicates):
        for j in range(i + 1, n_replicates):
            common, in_i, in_j = np.intersect1d(
                samples[i], samples[j], return_indices=True
            )
            if len(common) < 2:
                continue
            scores.append(
                adjusted_rand_index(
                    labelings[i][in_i], labelings[j][in_j]
                )
            )
    if not scores:
        raise MiningError("no overlapping samples to compare")
    return float(np.mean(scores))


def stability_profile(
    data,
    k_values,
    n_replicates: int = 8,
    seed: int = 0,
) -> dict:
    """``K -> bootstrap stability`` over a sweep of K values."""
    return {
        int(k): bootstrap_stability(
            data, int(k), n_replicates=n_replicates, seed=seed
        )
        for k in k_values
    }
