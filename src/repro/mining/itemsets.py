"""Frequent-itemset mining: Apriori and FP-growth.

The paper's second exploratory algorithm is "a pattern-based discovery
approach" (reference [2], MeTA) used to "identify medical examinations
commonly prescribed by physicians to patients with a given disease" and
to "discover previously unknown interaction between drugs or medical
conditions". Transactions here are sets of examination names per patient
(or per visit, see :meth:`repro.data.ExamLog.transactions`).

Two independent miners are provided and tested for equivalence:

* :func:`apriori` — breadth-first candidate generation with the
  downward-closure prune; simple and memory-friendly at high support;
* :func:`fpgrowth` — FP-tree projection mining; much faster at low
  support on the sparse medical logs.

Support is expressed as a fraction of the transaction count.

Both miners share one integer-encoding front end: item strings are
interned once into a vocabulary (ids assigned in lexicographic order,
so every ordering decision on ids matches the ordering on the original
strings), and all inner-loop work — candidate joins, subset tests,
support counting, FP-tree ordering — runs on small ints instead of
re-hashing strings per pass. Apriori counts support with per-item
transaction bitsets (one big int per item; candidate support is a
popcount of an AND), so no transaction is rescanned after encoding.
The decoded public output is identical to the historical string-based
implementation, itemset for itemset.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import MiningError

Transaction = Sequence[str]


@dataclass(frozen=True)
class Itemset:
    """A frequent itemset with its absolute and relative support."""

    items: FrozenSet[str]
    count: int
    support: float

    def __len__(self) -> int:
        return len(self.items)

    def sorted_items(self) -> Tuple[str, ...]:
        return tuple(sorted(self.items))


def _validate(
    transactions: Sequence[Transaction], min_support: float
) -> None:
    if not 0.0 < min_support <= 1.0:
        raise MiningError("min_support must be in (0, 1]")
    if len(transactions) == 0:
        raise MiningError("no transactions given")


# ----------------------------------------------------------------------
# Integer encoding (shared front end)
# ----------------------------------------------------------------------
def _encode(
    transactions: Sequence[Transaction],
) -> Tuple[List[str], List[FrozenSet[int]]]:
    """Intern items into ids assigned in sorted (lexicographic) order.

    Because ids follow the lexicographic order of the item strings,
    comparisons and sorts over ids reproduce exactly the decisions the
    string implementation made — tie-breaks included — so decoded
    output is identical.
    """
    vocabulary = sorted({item for t in transactions for item in t})
    index = {item: i for i, item in enumerate(vocabulary)}
    encoded = [frozenset(index[item] for item in t) for t in transactions]
    return vocabulary, encoded


def _popcount(mask: int) -> int:
    """Number of set bits (Python 3.9-compatible spelling)."""
    try:
        return mask.bit_count()
    except AttributeError:  # pragma: no cover - pre-3.10 fallback
        return bin(mask).count("1")


def _popcounts(masks: Tuple[int, ...]) -> int:
    """Total set bits across per-block masks (exact support merge)."""
    return sum(_popcount(mask) for mask in masks)


# ----------------------------------------------------------------------
# Apriori (blockwise bitset engine)
# ----------------------------------------------------------------------
def apriori(
    transactions: Sequence[Transaction],
    min_support: float,
    max_length: Optional[int] = None,
    metrics=None,
) -> List[Itemset]:
    """Mine frequent itemsets breadth-first (Agrawal & Srikant 1994).

    Support counting is bitset-based: each item owns one big-int mask
    with bit ``t`` set when transaction ``t`` contains the item; a
    candidate's support is the popcount of the AND of its items' masks,
    computed incrementally from its parent in the join step. The flat
    call is the single-block case of :func:`apriori_blocks`.

    ``metrics`` (an ``repro.obs.Metrics`` registry) receives per-level
    candidate/pruned/survivor counters and the overall pruning ratio.

    Returns itemsets sorted by (length, items) for determinism.
    """
    _validate(transactions, min_support)
    return apriori_blocks(
        [transactions], min_support, max_length=max_length, metrics=metrics
    )


def apriori_blocks(
    blocks: Iterable[Sequence[Transaction]],
    min_support: float,
    max_length: Optional[int] = None,
    metrics=None,
) -> List[Itemset]:
    """Apriori over a *stream* of transaction blocks, merged exactly.

    The out-of-core entry point: ``blocks`` may be any iterable (a
    generator over :meth:`repro.data.DiabeticExamLogGenerator.generate_blocks`
    output works) and is consumed **once** — only per-block, per-item
    bitsets are retained, never the transactions themselves. Every item
    keeps one mask *per block*; a candidate's support is the sum over
    blocks of the popcount of the per-block AND. Because the flat
    transaction bitset is exactly the concatenation of the per-block
    bitsets, every join, prune and threshold decision is identical to
    the in-memory miner: the decoded output is byte-identical to
    :func:`apriori` (and :func:`fpgrowth`) on the concatenated
    transactions, itemset for itemset.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError("min_support must be in (0, 1]")
    # Single pass over the stream: fold each block into string-keyed
    # bitsets, then remap to sorted-vocabulary ids (the id order the
    # flat encoder would have assigned, so tie-breaks are preserved).
    raw_masks: List[Dict[str, int]] = []
    n = 0
    for block in blocks:
        masks: Dict[str, int] = {}
        size = 0
        for transaction in block:
            bit = 1 << size
            for item in set(transaction):
                masks[item] = masks.get(item, 0) | bit
            size += 1
        raw_masks.append(masks)
        n += size
    if n == 0:
        raise MiningError("no transactions given")
    min_count = _min_count(min_support, n)
    vocabulary = sorted(set().union(*raw_masks)) if raw_masks else []
    block_masks: List[List[int]] = [
        [masks.get(item, 0) for item in vocabulary] for masks in raw_masks
    ]

    # L1: per-item mask tuples double as the support index.
    current: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
    results: Dict[FrozenSet[int], int] = {}
    for item in range(len(vocabulary)):
        masks_of_item = tuple(masks[item] for masks in block_masks)
        count = _popcounts(masks_of_item)
        if count >= min_count:
            current[(item,)] = masks_of_item
            results[frozenset((item,))] = count

    length = 1
    total_candidates = 0
    total_pruned = 0
    while current and (max_length is None or length < max_length):
        length += 1
        current, stats = _apriori_level(current, block_masks, min_count)
        for candidate, candidate_masks in current.items():
            results[frozenset(candidate)] = _popcounts(candidate_masks)
        total_candidates += stats["candidates"]
        total_pruned += stats["pruned"] + stats["infrequent"]
        if metrics is not None:
            metrics.counter("apriori.candidates").inc(stats["candidates"])
            metrics.counter("apriori.pruned").inc(stats["pruned"])
            metrics.counter("apriori.infrequent").inc(stats["infrequent"])
            metrics.counter("apriori.survivors").inc(len(current))
            metrics.histogram("apriori.level_candidates").observe(
                stats["candidates"]
            )
    if metrics is not None:
        metrics.gauge("apriori.levels").set(length - 1)
        if total_candidates:
            metrics.gauge("apriori.pruning_ratio").set(
                total_pruned / total_candidates
            )

    return _to_itemsets(results, n, vocabulary)


def _apriori_level(
    frequent: Dict[Tuple[int, ...], Tuple[int, ...]],
    block_masks: List[List[int]],
    min_count: int,
) -> Tuple[Dict[Tuple[int, ...], Tuple[int, ...]], Dict[str, int]]:
    """One breadth-first level: join, prune, count via blockwise bitsets.

    ``frequent`` maps each (k-1)-itemset — a sorted id tuple — to its
    per-block transaction bitsets; returns the frequent k-itemsets with
    theirs, plus the level's mining statistics: ``candidates`` joined,
    ``pruned`` by downward closure, ``infrequent`` below min support.
    Counts merge exactly: support is the popcount sum over blocks.
    """
    frequent_keys = set(frequent)
    ordered = sorted(frequent)
    survivors: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
    candidates = 0
    pruned = 0
    infrequent = 0
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            a, b = ordered[i], ordered[j]
            if a[:-1] != b[:-1]:
                break  # ordered list: no further joins share the prefix
            candidate = a + (b[-1],)
            candidates += 1
            if not all(
                subset in frequent_keys
                for subset in combinations(candidate, len(candidate) - 1)
            ):
                pruned += 1
                continue
            masks = tuple(
                mask & block[b[-1]]
                for mask, block in zip(frequent[a], block_masks)
            )
            if _popcounts(masks) >= min_count:
                survivors[candidate] = masks
            else:
                infrequent += 1
    stats = {
        "candidates": candidates,
        "pruned": pruned,
        "infrequent": infrequent,
    }
    return survivors, stats


# ----------------------------------------------------------------------
# FP-growth
# ----------------------------------------------------------------------
class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[int], parent: Optional["_FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "_FPNode"] = {}
        self.link: Optional["_FPNode"] = None


class _FPTree:
    """FP-tree with header links, built from (itemlist, count) pairs.

    Items are vocabulary ids (ints): all ordering and hashing in the
    projection loop stays in the integer domain. Because ids follow the
    lexicographic order of the original strings, the frequency order's
    tie-break ("ties broken lexicographically") is preserved exactly.
    """

    def __init__(
        self, entries: Iterable[Tuple[Sequence[int], int]], min_count: int
    ) -> None:
        tallies: Dict[int, int] = defaultdict(int)
        cached = []
        for items, count in entries:
            cached.append((items, count))
            for item in items:
                tallies[item] += count
        self.item_counts = {
            item: count
            for item, count in tallies.items()
            if count >= min_count
        }
        # Global frequency order, ties broken lexicographically.
        self.order = {
            item: position
            for position, item in enumerate(
                sorted(
                    self.item_counts,
                    key=lambda item: (-self.item_counts[item], item),
                )
            )
        }
        self.root = _FPNode(None, None)
        self.headers: Dict[int, _FPNode] = {}
        for items, count in cached:
            filtered = sorted(
                (item for item in items if item in self.item_counts),
                key=self.order.__getitem__,
            )
            if filtered:
                self._insert(filtered, count)

    def _insert(self, items: Sequence[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                # Prepend to the header chain.
                child.link = self.headers.get(item)
                self.headers[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> List[Tuple[List[int], int]]:
        """Conditional pattern base for ``item``."""
        paths: List[Tuple[List[int], int]] = []
        node = self.headers.get(item)
        while node is not None:
            path: List[str] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.link
        return paths

    def single_path(self) -> Optional[List[Tuple[int, int]]]:
        """If the tree is a single chain, return it; else None."""
        path: List[Tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (child,) = node.children.values()
            path.append((child.item, child.count))  # type: ignore[arg-type]
            node = child
        return path


def fpgrowth(
    transactions: Sequence[Transaction],
    min_support: float,
    max_length: Optional[int] = None,
    metrics=None,
) -> List[Itemset]:
    """Mine frequent itemsets with FP-growth (Han, Pei & Yin 2000).

    ``metrics`` (an ``repro.obs.Metrics`` registry) receives counters
    for conditional trees built, single-path shortcuts taken and
    itemsets emitted.
    """
    _validate(transactions, min_support)
    n = len(transactions)
    min_count = _min_count(min_support, n)
    vocabulary, encoded = _encode(transactions)
    tree = _FPTree(((sorted(t), 1) for t in encoded), min_count)
    results: Dict[FrozenSet[int], int] = {}
    _fp_mine(tree, min_count, frozenset(), results, max_length, metrics)
    if metrics is not None:
        metrics.counter("fpgrowth.itemsets").inc(len(results))
    return _to_itemsets(results, n, vocabulary)


def _fp_mine(
    tree: _FPTree,
    min_count: int,
    suffix: FrozenSet[int],
    results: Dict[FrozenSet[int], int],
    max_length: Optional[int],
    metrics=None,
) -> None:
    chain = tree.single_path()
    if chain is not None:
        # Enumerate all combinations of the single path directly.
        if metrics is not None:
            metrics.counter("fpgrowth.single_paths").inc()
        for size in range(1, len(chain) + 1):
            if max_length is not None and len(suffix) + size > max_length:
                break
            for combo in combinations(chain, size):
                itemset = suffix | frozenset(item for item, __ in combo)
                count = min(count for __, count in combo)
                if count >= min_count:
                    existing = results.get(itemset, 0)
                    results[itemset] = max(existing, count)
        return
    # Bottom-up over the header table (least frequent first).
    items = sorted(
        tree.item_counts, key=lambda item: (-tree.order[item], item)
    )
    for item in items:
        new_suffix = suffix | {item}
        results[new_suffix] = tree.item_counts[item]
        if max_length is not None and len(new_suffix) >= max_length:
            continue
        conditional = _FPTree(tree.prefix_paths(item), min_count)
        if metrics is not None:
            metrics.counter("fpgrowth.conditional_trees").inc()
        if conditional.item_counts:
            _fp_mine(
                conditional,
                min_count,
                new_suffix,
                results,
                max_length,
                metrics,
            )


# ----------------------------------------------------------------------
# Shared helpers / facade
# ----------------------------------------------------------------------
def _min_count(min_support: float, n: int) -> int:
    """Smallest absolute count meeting the relative support threshold."""
    return max(1, int(-(-min_support * n // 1)))  # ceil


def _to_itemsets(
    results: Dict[FrozenSet[int], int], n: int, vocabulary: List[str]
) -> List[Itemset]:
    """Decode id-itemsets back to the public string representation."""
    itemsets = [
        Itemset(
            items=frozenset(vocabulary[item] for item in items),
            count=count,
            support=count / n,
        )
        for items, count in results.items()
    ]
    itemsets.sort(key=lambda s: (len(s.items), s.sorted_items()))
    return itemsets


_ALGORITHMS = {"apriori": apriori, "fpgrowth": fpgrowth}


def mine_frequent_itemsets(
    transactions: Sequence[Transaction],
    min_support: float,
    algorithm: str = "fpgrowth",
    max_length: Optional[int] = None,
    metrics=None,
) -> List[Itemset]:
    """Facade dispatching to :func:`apriori` or :func:`fpgrowth`."""
    try:
        miner = _ALGORITHMS[algorithm]
    except KeyError:
        raise MiningError(
            f"unknown algorithm {algorithm!r};"
            f" choose from {sorted(_ALGORITHMS)}"
        ) from None
    return miner(
        transactions, min_support, max_length=max_length, metrics=metrics
    )


def itemset_index(
    itemsets: Iterable[Itemset],
) -> Dict[FrozenSet[str], Itemset]:
    """Map items -> Itemset for O(1) support lookups."""
    return {itemset.items: itemset for itemset in itemsets}


def closed_itemsets(itemsets: Sequence[Itemset]) -> List[Itemset]:
    """Keep only *closed* itemsets (no superset with equal support).

    Closed itemsets are a lossless compression of the frequent-itemset
    collection: all supports are recoverable. The paper asks for "a
    manageable set of knowledge" — this is the standard way to shrink
    pattern output without losing information.
    """
    by_size: Dict[int, List[Itemset]] = {}
    for itemset in itemsets:
        by_size.setdefault(len(itemset.items), []).append(itemset)
    closed: List[Itemset] = []
    for size, group in by_size.items():
        supersets = by_size.get(size + 1, [])
        for itemset in group:
            if not any(
                itemset.items < candidate.items
                and candidate.count == itemset.count
                for candidate in supersets
            ):
                closed.append(itemset)
    closed.sort(key=lambda s: (len(s.items), s.sorted_items()))
    return closed


def maximal_itemsets(itemsets: Sequence[Itemset]) -> List[Itemset]:
    """Keep only *maximal* itemsets (no frequent superset at all).

    A lossy but much smaller summary: the positive border of the
    frequent collection.
    """
    by_size: Dict[int, List[Itemset]] = {}
    for itemset in itemsets:
        by_size.setdefault(len(itemset.items), []).append(itemset)
    maximal: List[Itemset] = []
    sizes = sorted(by_size)
    for size in sizes:
        larger = [
            candidate
            for bigger in sizes
            if bigger > size
            for candidate in by_size[bigger]
        ]
        for itemset in by_size[size]:
            if not any(
                itemset.items < candidate.items for candidate in larger
            ):
                maximal.append(itemset)
    maximal.sort(key=lambda s: (len(s.items), s.sorted_items()))
    return maximal
