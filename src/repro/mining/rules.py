"""Association-rule generation from frequent itemsets.

Produces ``antecedent => consequent`` rules with the classical quality
measures (support, confidence, lift, leverage, conviction). In the
medical setting a rule such as ``{HbA1c, fundus oculi} => {retinal
photography}`` surfaces examinations "prescribed in conjunction or
needed to monitor/diagnose the same condition" — the correlation the
paper offers as the reason partial mining loses so little information.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.exceptions import MiningError
from repro.mining.itemsets import Itemset, itemset_index


@dataclass(frozen=True)
class AssociationRule:
    """An association rule with its quality measures.

    ``support`` is the relative support of the union; ``confidence`` is
    ``P(consequent | antecedent)``; ``lift`` compares the confidence
    with the consequent's base rate; ``leverage`` is the difference
    between observed and independent joint support; ``conviction``
    measures implication strength (``inf`` for exact rules).
    """

    antecedent: FrozenSet[str]
    consequent: FrozenSet[str]
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lhs = ", ".join(sorted(self.antecedent))
        rhs = ", ".join(sorted(self.consequent))
        return (
            f"{{{lhs}}} => {{{rhs}}}"
            f" (sup={self.support:.3f}, conf={self.confidence:.3f},"
            f" lift={self.lift:.2f})"
        )


def generate_rules(
    itemsets: Sequence[Itemset],
    min_confidence: float = 0.5,
    min_lift: Optional[float] = None,
    max_consequent: Optional[int] = None,
) -> List[AssociationRule]:
    """Derive rules from every frequent itemset of size >= 2.

    Parameters
    ----------
    itemsets:
        Output of :func:`repro.mining.itemsets.mine_frequent_itemsets`.
        Must be closed under subsets (both miners guarantee this) so all
        needed supports are available.
    min_confidence:
        Keep rules whose confidence meets this threshold.
    min_lift:
        Optionally also require a minimum lift.
    max_consequent:
        Cap on the consequent size (None = no cap).

    Returns
    -------
    list of AssociationRule, sorted by (confidence, lift) descending.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError("min_confidence must be in (0, 1]")
    index = itemset_index(itemsets)
    rules: List[AssociationRule] = []
    for itemset in itemsets:
        if len(itemset.items) < 2:
            continue
        items = sorted(itemset.items)
        for size in range(1, len(items)):
            consequent_size = len(items) - size
            if (
                max_consequent is not None
                and consequent_size > max_consequent
            ):
                continue
            for antecedent_items in combinations(items, size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset.items - antecedent
                rule = _build_rule(itemset, antecedent, consequent, index)
                if rule is None:
                    continue
                if rule.confidence < min_confidence:
                    continue
                if min_lift is not None and rule.lift < min_lift:
                    continue
                rules.append(rule)
    rules.sort(key=lambda r: (-r.confidence, -r.lift, sorted(r.antecedent)))
    return rules


def _build_rule(
    itemset: Itemset,
    antecedent: FrozenSet[str],
    consequent: FrozenSet[str],
    index: Dict[FrozenSet[str], Itemset],
) -> Optional[AssociationRule]:
    antecedent_set = index.get(antecedent)
    consequent_set = index.get(consequent)
    if antecedent_set is None or consequent_set is None:
        # Support below threshold for a subset can only happen if the
        # caller passed a truncated itemset list; skip such rules.
        return None
    support = itemset.support
    confidence = support / antecedent_set.support
    lift = confidence / consequent_set.support
    leverage = support - antecedent_set.support * consequent_set.support
    if confidence >= 1.0:
        conviction = float("inf")
    else:
        conviction = (1.0 - consequent_set.support) / (1.0 - confidence)
    return AssociationRule(
        antecedent=antecedent,
        consequent=consequent,
        support=support,
        confidence=min(confidence, 1.0),
        lift=lift,
        leverage=leverage,
        conviction=conviction,
    )


def filter_rules(
    rules: Iterable[AssociationRule],
    contains: Optional[str] = None,
    antecedent_contains: Optional[str] = None,
    consequent_contains: Optional[str] = None,
) -> List[AssociationRule]:
    """Select rules mentioning given items (navigation helper)."""
    selected = []
    for rule in rules:
        everything = rule.antecedent | rule.consequent
        if contains is not None and contains not in everything:
            continue
        if (
            antecedent_contains is not None
            and antecedent_contains not in rule.antecedent
        ):
            continue
        if (
            consequent_contains is not None
            and consequent_contains not in rule.consequent
        ):
            continue
        selected.append(rule)
    return selected
