"""Sequential-pattern mining over dated examination logs (PrefixSpan).

The examination log carries "the type and date of every exam", so the
natural extension of the paper's pattern-based discovery is *temporal*:
which sequences of visits recur across patients? (e.g. ``general
checkup -> HbA1c -> fundus oculi``). This is the care-pathway view the
MeTA line of work (paper ref [2]) develops, and a listed ADA-HEALTH
end-goal family: assessing "the adherence of medical prescriptions and
treatments to relevant clinical guidelines" needs the order of events,
not just their co-occurrence.

Sequences here are lists of *itemsets* (one itemset per visit day);
a pattern ``<{a} {b, c}>`` is supported by a patient whose history
contains a visit with ``a`` followed (strictly later) by a visit
containing both ``b`` and ``c``. Mining is PrefixSpan (Pei et al.,
2001) with the standard itemset-extension and sequence-extension steps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.data.records import ExamLog
from repro.exceptions import MiningError

#: One patient's history: a time-ordered list of visit itemsets.
Sequence_ = List[FrozenSet[str]]


@dataclass(frozen=True)
class SequentialPattern:
    """A frequent sequence of visit itemsets with its support."""

    elements: Tuple[FrozenSet[str], ...]
    count: int
    support: float

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def n_items(self) -> int:
        """Total items across all elements."""
        return sum(len(element) for element in self.elements)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            "{" + ", ".join(sorted(element)) + "}"
            for element in self.elements
        ]
        return "<" + " -> ".join(parts) + f"> (sup={self.support:.3f})"


def sequences_from_log(log: ExamLog) -> List[Sequence_]:
    """One sequence per patient: visit itemsets in day order.

    Exams on the same day form one itemset (a visit); repeated exams on
    a day collapse. Patients are emitted in id order.
    """
    per_patient: Dict[int, Dict[int, set]] = defaultdict(dict)
    for record in log.records:
        visits = per_patient[record.patient_id]
        visits.setdefault(record.day, set()).add(
            log.taxonomy.by_code(record.exam_code).name
        )
    sequences = []
    for patient_id in sorted(per_patient):
        visits = per_patient[patient_id]
        sequences.append(
            [frozenset(visits[day]) for day in sorted(visits)]
        )
    return sequences


def mine_sequences(
    sequences: Sequence[Sequence_],
    min_support: float,
    max_length: Optional[int] = 4,
    max_patterns: int = 100_000,
) -> List[SequentialPattern]:
    """Mine frequent sequential patterns with PrefixSpan.

    Parameters
    ----------
    sequences:
        The sequence database (e.g. :func:`sequences_from_log` output).
    min_support:
        Relative support threshold over the sequence count.
    max_length:
        Cap on the number of *elements* (visits) in a pattern; ``None``
        for unbounded (can explode on dense data).
    max_patterns:
        Safety cap on the number of emitted patterns.

    Returns
    -------
    Patterns sorted by (length, rendered form) for determinism.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError("min_support must be in (0, 1]")
    n = len(sequences)
    if n == 0:
        raise MiningError("no sequences given")
    min_count = max(1, -(-min_support * n // 1).__int__())

    database = [
        [frozenset(element) for element in sequence]
        for sequence in sequences
    ]
    results: List[SequentialPattern] = []

    # A projected database entry: (sequence index, element position,
    # within-element marker). After matching a prefix ending inside
    # element `position`, itemset-extensions continue in that element
    # (items greater than the last matched item) and sequence-extensions
    # start from element `position + 1`.
    initial = [(i, -1, frozenset()) for i in range(n)]
    _prefix_span(
        database,
        prefix=[],
        projection=initial,
        min_count=min_count,
        max_length=max_length,
        max_patterns=max_patterns,
        results=results,
        n_sequences=n,
    )
    results.sort(
        key=lambda pattern: (
            len(pattern.elements),
            [tuple(sorted(element)) for element in pattern.elements],
        )
    )
    return results


def _prefix_span(
    database: List[Sequence_],
    prefix: List[FrozenSet[str]],
    projection: List[Tuple[int, int, FrozenSet[str]]],
    min_count: int,
    max_length: Optional[int],
    max_patterns: int,
    results: List[SequentialPattern],
    n_sequences: int,
) -> None:
    if len(results) >= max_patterns:
        return
    # Count candidate extensions: sequence-extensions (new element) and
    # itemset-extensions (grow the last element).
    seq_counts: Dict[str, int] = defaultdict(int)
    item_counts: Dict[str, int] = defaultdict(int)
    for seq_index, position, matched in projection:
        sequence = database[seq_index]
        seen_seq: set = set()
        for element in sequence[position + 1 :]:
            for item in element:
                if item not in seen_seq:
                    seen_seq.add(item)
        for item in seen_seq:
            seq_counts[item] += 1
        if prefix and 0 <= position < len(sequence):
            # Items that can extend the current last element: present in
            # this element alongside everything matched so far.
            last = prefix[-1]
            seen_item: set = set()
            for probe_pos in range(position, len(sequence)):
                element = sequence[probe_pos]
                if last <= element:
                    for item in element:
                        if item not in last:
                            seen_item.add(item)
            for item in seen_item:
                item_counts[item] += 1

    # Sequence extensions.
    for item in sorted(seq_counts):
        if seq_counts[item] < min_count:
            continue
        if max_length is not None and len(prefix) + 1 > max_length:
            continue
        new_prefix = prefix + [frozenset([item])]
        new_projection = []
        for seq_index, position, __ in projection:
            sequence = database[seq_index]
            for probe in range(position + 1, len(sequence)):
                if item in sequence[probe]:
                    new_projection.append(
                        (seq_index, probe, frozenset([item]))
                    )
                    break
        _emit_and_recurse(
            database,
            new_prefix,
            new_projection,
            min_count,
            max_length,
            max_patterns,
            results,
            n_sequences,
        )

    # Itemset extensions (grow the final element). Canonical order: only
    # items lexicographically greater than everything already in the
    # element, so each itemset is generated exactly once.
    if prefix:
        last = prefix[-1]
        ceiling = max(last)
        for item in sorted(item_counts):
            if item_counts[item] < min_count:
                continue
            if item <= ceiling:
                continue
            grown = last | {item}
            new_prefix = prefix[:-1] + [grown]
            new_projection = []
            for seq_index, position, __ in projection:
                sequence = database[seq_index]
                for probe in range(position, len(sequence)):
                    if probe < 0:
                        continue
                    if grown <= sequence[probe]:
                        new_projection.append((seq_index, probe, grown))
                        break
            if len(new_projection) >= min_count:
                _emit_and_recurse(
                    database,
                    new_prefix,
                    new_projection,
                    min_count,
                    max_length,
                    max_patterns,
                    results,
                    n_sequences,
                )


def _emit_and_recurse(
    database,
    prefix,
    projection,
    min_count,
    max_length,
    max_patterns,
    results,
    n_sequences,
) -> None:
    count = len({seq_index for seq_index, __, __ in projection})
    if count < min_count or len(results) >= max_patterns:
        return
    results.append(
        SequentialPattern(
            elements=tuple(prefix),
            count=count,
            support=count / n_sequences,
        )
    )
    _prefix_span(
        database,
        prefix,
        projection,
        min_count,
        max_length,
        max_patterns,
        results,
        n_sequences,
    )


def mine_log_sequences(
    log: ExamLog,
    min_support: float,
    max_length: Optional[int] = 3,
) -> List[SequentialPattern]:
    """Convenience: :func:`sequences_from_log` + :func:`mine_sequences`."""
    return mine_sequences(
        sequences_from_log(log), min_support, max_length=max_length
    )


def pattern_contains(
    pattern: SequentialPattern, sequence: Sequence_
) -> bool:
    """True when ``sequence`` supports ``pattern`` (subsequence match)."""
    position = 0
    for element in pattern.elements:
        while position < len(sequence) and not (
            element <= sequence[position]
        ):
            position += 1
        if position == len(sequence):
            return False
        position += 1
    return True
