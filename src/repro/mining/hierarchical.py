"""Agglomerative hierarchical clustering (Lance-Williams update).

Bottom-up merging with single / complete / average / Ward linkage.
Included as the third exploratory clustering engine ADA-HEALTH can
select: unlike K-means it requires no K up front — the dendrogram is cut
wherever the end-goal demands — and it handles non-globular groups.

The implementation keeps the full distance matrix in memory (O(n^2)),
fine for the cohort sizes clustering is applied to after partial mining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, squared_euclidean

_LINKAGES = ("single", "complete", "average", "ward")


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: clusters ``a`` and ``b`` joined at ``height``.

    Cluster ids follow scipy convention: leaves are 0..n-1; the i-th
    merge creates cluster ``n + i``.
    """

    a: int
    b: int
    height: float
    size: int


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut the dendrogram into.
    linkage:
        ``"single"``, ``"complete"``, ``"average"`` or ``"ward"``.
        Ward operates on squared Euclidean distances (variance merging);
        the others on Euclidean distances.
    """

    def __init__(self, n_clusters: int = 2, linkage: str = "average"):
        if n_clusters < 1:
            raise MiningError("n_clusters must be >= 1")
        if linkage not in _LINKAGES:
            raise MiningError(
                f"unknown linkage {linkage!r}; choose from {_LINKAGES}"
            )
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: Optional[np.ndarray] = None
        self.merges_: Optional[List[Merge]] = None

    def fit(self, data) -> "AgglomerativeClustering":
        """Build the dendrogram and cut it at ``n_clusters``."""
        data = as_matrix(data)
        n = data.shape[0]
        if n < self.n_clusters:
            raise MiningError(
                f"need at least {self.n_clusters} points, got {n}"
            )
        distances = squared_euclidean(data, data)
        if self.linkage != "ward":
            distances = np.sqrt(distances)
        np.fill_diagonal(distances, np.inf)

        sizes = np.ones(n)
        active = np.ones(n, dtype=bool)
        # member id -> current dendrogram cluster id
        cluster_ids = np.arange(n)
        merges: List[Merge] = []
        working = distances.copy()

        for step in range(n - 1):
            flat = np.argmin(working)
            i, j = np.unravel_index(flat, working.shape)
            if i > j:
                i, j = j, i
            height = float(working[i, j])
            if self.linkage == "ward":
                height = float(np.sqrt(height))
            merges.append(
                Merge(
                    a=int(cluster_ids[i]),
                    b=int(cluster_ids[j]),
                    height=height,
                    size=int(sizes[i] + sizes[j]),
                )
            )
            # Lance-Williams update of row/column i; deactivate j.
            updated = self._lance_williams(
                working, sizes, i, j, np.nonzero(active)[0]
            )
            working[i, :] = updated
            working[:, i] = updated
            working[i, i] = np.inf
            working[j, :] = np.inf
            working[:, j] = np.inf
            sizes[i] += sizes[j]
            active[j] = False
            cluster_ids[i] = n + step

        self.merges_ = merges
        self.labels_ = self._cut(n, merges, self.n_clusters)
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit and return the flat labels."""
        return self.fit(data).labels_  # type: ignore[return-value]

    def _lance_williams(
        self,
        working: np.ndarray,
        sizes: np.ndarray,
        i: int,
        j: int,
        active_indexes: np.ndarray,
    ) -> np.ndarray:
        """Distances from the merged cluster (i U j) to every other."""
        di = working[i, :]
        dj = working[j, :]
        ni, nj = sizes[i], sizes[j]
        if self.linkage == "single":
            merged = np.minimum(di, dj)
        elif self.linkage == "complete":
            merged = np.where(
                np.isinf(di) | np.isinf(dj),
                np.minimum(di, dj),
                np.maximum(di, dj),
            )
        elif self.linkage == "average":
            merged = (ni * di + nj * dj) / (ni + nj)
        else:  # ward on squared distances
            nk = sizes
            total = ni + nj + nk
            merged = (
                (ni + nk) * di + (nj + nk) * dj - nk * working[i, j]
            ) / total
        merged = merged.copy()
        merged[i] = np.inf
        merged[j] = np.inf
        return merged

    @staticmethod
    def _cut(n: int, merges: List[Merge], n_clusters: int) -> np.ndarray:
        """Flat labels from the first ``n - n_clusters`` merges."""
        parent = list(range(2 * n - 1))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for step, merge in enumerate(merges[: n - n_clusters]):
            new_id = n + step
            parent[find(merge.a)] = new_id
            parent[find(merge.b)] = new_id

        roots = {}
        labels = np.empty(n, dtype=int)
        for leaf in range(n):
            root = find(leaf)
            if root not in roots:
                roots[root] = len(roots)
            labels[leaf] = roots[root]
        return labels

    def dendrogram_heights(self) -> np.ndarray:
        """Merge heights in order (useful to pick a cut automatically)."""
        if self.merges_ is None:
            raise NotFittedError("AgglomerativeClustering is not fitted")
        return np.array([merge.height for merge in self.merges_])
