"""Distance-based outlier scoring (k-NN distance).

Complements DBSCAN's binary noise flag with a *ranked* outlier view:
each patient gets a score — the distance to their k-th nearest
neighbour — so the navigation layer can present "the 20 most atypical
examination histories" rather than an unordered noise set.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import MiningError
from repro.mining.distance import as_matrix, squared_euclidean
from repro.mining.kdtree import KDTree


def knn_outlier_scores(
    data,
    n_neighbors: int = 5,
    brute_force_dims: int = 25,
) -> np.ndarray:
    """Distance to each point's ``n_neighbors``-th nearest neighbour.

    Higher = more isolated. The point itself is excluded from its own
    neighbourhood.
    """
    data = as_matrix(data)
    n = data.shape[0]
    if not 1 <= n_neighbors < n:
        raise MiningError("need 1 <= n_neighbors < n_points")
    k = n_neighbors + 1  # the query returns the point itself first
    scores = np.empty(n)
    if data.shape[1] < brute_force_dims:
        tree = KDTree(data)
        for i in range(n):
            distances, __ = tree.query(data[i], k=k)
            scores[i] = float(np.sort(distances)[-1])
    else:
        block = max(1, 4_000_000 // max(n, 1))
        for start in range(0, n, block):
            chunk = data[start : start + block]
            dist2 = squared_euclidean(chunk, data)
            part = np.partition(dist2, k - 1, axis=1)[:, k - 1]
            scores[start : start + len(chunk)] = np.sqrt(part)
    return scores


def top_outliers(
    data,
    n_outliers: int = 10,
    n_neighbors: int = 5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(indexes, scores)`` of the most isolated points,
    ordered most-atypical first."""
    scores = knn_outlier_scores(data, n_neighbors=n_neighbors)
    if n_outliers < 1:
        raise MiningError("n_outliers must be >= 1")
    n_outliers = min(n_outliers, len(scores))
    order = np.argsort(-scores, kind="stable")[:n_outliers]
    return order, scores[order]
