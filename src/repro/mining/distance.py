"""Distance and similarity primitives shared by the mining algorithms.

All functions operate on 2-D ``numpy`` arrays with observations in rows
and accept ``float64`` data; they are pure and allocate their outputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import MiningError


def as_matrix(data) -> np.ndarray:
    """Validate and convert input to a 2-D float64 array."""
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise MiningError(f"expected a 2-D array, got shape {matrix.shape}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise MiningError("input matrix must be non-empty")
    if not np.all(np.isfinite(matrix)):
        raise MiningError("input contains NaN or infinite values")
    return matrix


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(len(a), len(b))``.

    Uses the expansion ``|x-y|^2 = |x|^2 + |y|^2 - 2 x.y`` and clips tiny
    negative values produced by floating-point cancellation.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    bb = np.einsum("ij,ij->i", b, b)[None, :]
    distances = aa + bb - 2.0 * (a @ b.T)
    np.maximum(distances, 0.0, out=distances)
    return distances


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances."""
    return np.sqrt(squared_euclidean(a, b))


def manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Manhattan (L1) distances."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


def row_norms(matrix: np.ndarray) -> np.ndarray:
    """Euclidean norm of every row."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return np.sqrt(np.einsum("ij,ij->i", matrix, matrix))


def cosine_similarity(a: np.ndarray, b: Optional[np.ndarray] = None):
    """Pairwise cosine similarities in ``[-1, 1]``.

    All-zero rows have undefined direction; by convention their similarity
    to anything (including themselves) is 0.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = a if b is None else np.atleast_2d(np.asarray(b, dtype=np.float64))
    norms_a = row_norms(a)
    norms_b = row_norms(b)
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = (a @ b.T) / np.outer(norms_a, norms_b)
    sims = np.nan_to_num(sims, nan=0.0, posinf=0.0, neginf=0.0)
    return np.clip(sims, -1.0, 1.0)


def cosine_distance(a: np.ndarray, b: Optional[np.ndarray] = None):
    """Pairwise cosine distances (``1 - similarity``)."""
    return 1.0 - cosine_similarity(a, b)


_METRICS = {
    "euclidean": euclidean,
    "sqeuclidean": squared_euclidean,
    "manhattan": manhattan,
    "cosine": cosine_distance,
}


def pairwise_distances(
    a: np.ndarray, b: Optional[np.ndarray] = None, metric: str = "euclidean"
) -> np.ndarray:
    """Dispatch to a named distance metric."""
    try:
        function = _METRICS[metric]
    except KeyError:
        raise MiningError(
            f"unknown metric {metric!r}; choose from {sorted(_METRICS)}"
        ) from None
    if metric == "cosine":
        return function(a, b)
    return function(a, a if b is None else b)
