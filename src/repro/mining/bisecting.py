"""Bisecting K-means: top-down divisive clustering.

An alternative center-based engine for the ADA-HEALTH optimiser: start
with one cluster and repeatedly split the cluster with the largest SSE
using 2-means, until ``n_clusters`` clusters exist. Often yields more
balanced, lower-variance solutions than direct K-means on sparse data
(Tan/Steinbach/Kumar, the paper's ref [4], recommends it for document-
like vectors — which the VSM patient vectors are).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, squared_euclidean
from repro.mining.kmeans import KMeans


class BisectingKMeans:
    """Divisive clustering by repeated 2-means splits.

    Parameters
    ----------
    n_clusters:
        Final number of clusters.
    n_init:
        Restarts of the inner 2-means at every split.
    max_iter:
        Iteration cap of the inner 2-means.
    seed:
        Seed for all randomness.

    Attributes mirror :class:`repro.mining.kmeans.KMeans`.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 3,
        max_iter: int = 100,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise MiningError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    def fit(self, data) -> "BisectingKMeans":
        """Cluster ``data``; returns ``self``."""
        data = as_matrix(data)
        if data.shape[0] < self.n_clusters:
            raise MiningError(
                f"need at least {self.n_clusters} points,"
                f" got {data.shape[0]}"
            )
        labels = np.zeros(data.shape[0], dtype=int)
        cluster_sse = {0: _cluster_sse(data)}
        next_label = 1
        seed = self.seed
        while len(cluster_sse) < self.n_clusters:
            # Split the cluster with the largest SSE (if splittable).
            splittable = [
                cluster
                for cluster in cluster_sse
                if (labels == cluster).sum() >= 2
            ]
            if not splittable:
                break
            target = max(splittable, key=lambda c: cluster_sse[c])
            mask = labels == target
            members = data[mask]
            splitter = KMeans(
                2,
                n_init=self.n_init,
                max_iter=self.max_iter,
                seed=seed,
            ).fit(members)
            seed += 1
            sub_labels = splitter.labels_
            if sub_labels is None:
                raise RuntimeError("KMeans split left labels_ unset")
            new_labels = labels.copy()
            member_indexes = np.nonzero(mask)[0]
            new_labels[member_indexes[sub_labels == 1]] = next_label
            labels = new_labels
            cluster_sse[target] = _cluster_sse(data[labels == target])
            cluster_sse[next_label] = _cluster_sse(
                data[labels == next_label]
            )
            next_label += 1

        # Relabel 0..k-1 in first-appearance order for determinism.
        remap = {}
        compact = np.empty_like(labels)
        for i, value in enumerate(labels):
            if value not in remap:
                remap[value] = len(remap)
            compact[i] = remap[value]
        self.labels_ = compact
        k = len(remap)
        self.cluster_centers_ = np.vstack(
            [data[compact == j].mean(axis=0) for j in range(k)]
        )
        self.inertia_ = float(
            sum(
                _cluster_sse(data[compact == j])
                for j in range(k)
            )
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(data).labels_  # type: ignore[return-value]

    def predict(self, data) -> np.ndarray:
        """Assign new points to the nearest fitted centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("BisectingKMeans.predict before fit")
        data = as_matrix(data)
        return np.argmin(
            squared_euclidean(data, self.cluster_centers_), axis=1
        )


def _cluster_sse(members: np.ndarray) -> float:
    if members.shape[0] == 0:
        return 0.0
    center = members.mean(axis=0)
    diffs = members - center
    return float(np.einsum("ij,ij->", diffs, diffs))
