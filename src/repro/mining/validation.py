"""Model validation: k-fold splitters, cross-validation, hold-out split.

The paper evaluates its cluster-robustness classifier with 10-fold cross
validation; :func:`cross_validate` reproduces that protocol and reports
exactly the Table I metrics (accuracy, average precision, average
recall) by default.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MiningError
from repro.mining.metrics import accuracy, precision_recall_f1


class KFold:
    """Plain k-fold splitter with optional shuffling."""

    def __init__(
        self, n_splits: int = 10, shuffle: bool = True, seed: int = 0
    ) -> None:
        if n_splits < 2:
            raise MiningError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(
        self, n_samples: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indexes, test_indexes)`` pairs."""
        if n_samples < self.n_splits:
            raise MiningError(
                f"cannot split {n_samples} samples into"
                f" {self.n_splits} folds"
            )
        indexes = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indexes)
        folds = np.array_split(indexes, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train, test


class StratifiedKFold:
    """k-fold preserving per-class proportions in every fold."""

    def __init__(
        self, n_splits: int = 10, shuffle: bool = True, seed: int = 0
    ) -> None:
        if n_splits < 2:
            raise MiningError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, labels) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indexes, test_indexes)`` stratified on labels."""
        labels = np.asarray(labels)
        rng = np.random.default_rng(self.seed)
        fold_members: List[List[int]] = [[] for __ in range(self.n_splits)]
        for cls in np.unique(labels):
            members = np.nonzero(labels == cls)[0]
            if self.shuffle:
                rng.shuffle(members)
            for position, index in enumerate(members):
                fold_members[position % self.n_splits].append(int(index))
        folds = [np.array(sorted(m), dtype=int) for m in fold_members]
        if any(len(fold) == 0 for fold in folds):
            raise MiningError(
                "too few samples for the requested number of folds"
            )
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train, test


def train_test_split(
    data,
    labels,
    test_size: float = 0.25,
    stratify: bool = False,
    seed: int = 0,
):
    """Split into ``(X_train, X_test, y_train, y_test)``."""
    data = np.asarray(data)
    labels = np.asarray(labels)
    if data.shape[0] != labels.shape[0]:
        raise MiningError("data and labels must align")
    if not 0.0 < test_size < 1.0:
        raise MiningError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    if stratify:
        test_indexes: List[int] = []
        for cls in np.unique(labels):
            members = np.nonzero(labels == cls)[0]
            rng.shuffle(members)
            take = max(1, int(round(test_size * len(members))))
            test_indexes.extend(members[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_indexes] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return (
        data[~test_mask],
        data[test_mask],
        labels[~test_mask],
        labels[test_mask],
    )


def macro_precision(y_true, y_pred) -> float:
    """Macro-averaged precision (module-level, hence picklable)."""
    return precision_recall_f1(y_true, y_pred, "macro")[0]


def macro_recall(y_true, y_pred) -> float:
    """Macro-averaged recall (module-level, hence picklable)."""
    return precision_recall_f1(y_true, y_pred, "macro")[1]


#: Metric functions usable with :func:`cross_validate`. Each maps
#: ``(y_true, y_pred) -> float``.
DEFAULT_METRICS: Dict[str, Callable] = {
    "accuracy": accuracy,
    "avg_precision": macro_precision,
    "avg_recall": macro_recall,
}


def _fit_score_fold(
    model_factory: Callable[[], object],
    data_ref,
    labels_ref,
    train: np.ndarray,
    test: np.ndarray,
    metrics: Dict[str, Callable],
) -> Dict[str, float]:
    """Fit one fold and score it (module-level for process backends).

    ``data_ref``/``labels_ref`` are whatever the matrix lease shipped:
    the arrays themselves in-process, or shared-memory handles that
    are attached for the duration of the fold and detached after.
    """
    from repro.data.blocks import open_matrix

    with open_matrix(data_ref) as data, open_matrix(labels_ref) as labels:
        model = model_factory()
        model.fit(data[train], labels[train])  # type: ignore[attr-defined]
        predicted = model.predict(data[test])  # type: ignore[attr-defined]
        return {
            name: float(function(labels[test], predicted))
            for name, function in metrics.items()
        }


def cross_validate(
    model_factory: Callable[[], object],
    data,
    labels,
    n_splits: int = 10,
    stratified: bool = True,
    metrics: Optional[Dict[str, Callable]] = None,
    executor=None,
    seed: int = 0,
) -> Dict[str, float]:
    """k-fold cross-validation, averaging each metric over folds.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh estimator exposing
        ``fit(X, y)`` and ``predict(X)``.
    metrics:
        ``name -> function(y_true, y_pred)``; defaults to the paper's
        Table I metrics (accuracy, average precision, average recall).
    executor:
        Optional :mod:`repro.cloud` backend; folds are independent and
        run through it when given (None keeps the serial in-process
        path). With a process backend, ``model_factory`` and the metric
        functions must pickle (the defaults do; ``functools.partial``
        over a model class is a convenient picklable factory).

    Returns
    -------
    dict
        ``metric name -> mean value across folds``.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    metrics = metrics or DEFAULT_METRICS
    if stratified:
        splits = StratifiedKFold(n_splits, seed=seed).split(labels)
    else:
        splits = KFold(n_splits, seed=seed).split(len(labels))

    if executor is not None:
        from repro.cloud.executor import TaskFailure, TaskSpec
        from repro.cloud.transport import matrix_lease

        with matrix_lease(executor, data, labels) as (
            data_ref,
            labels_ref,
        ):
            tasks = [
                # model_factory is the cross-validation seam itself:
                # callers pass seeded constructors, which ADA019's
                # closure analysis cannot certify through.
                TaskSpec(  # adalint: disable=ADA019
                    _fit_score_fold,
                    (model_factory, data_ref, labels_ref, train, test,
                     metrics),
                )
                for train, test in splits
            ]
            outcome = executor.run(tasks)
        for value in outcome.results:
            if isinstance(value, TaskFailure):
                raise value.error
        fold_scores = outcome.results
    else:
        fold_scores = [
            _fit_score_fold(
                model_factory, data, labels, train, test, metrics
            )
            for train, test in splits
        ]
    if not fold_scores:
        raise MiningError("no folds were evaluated")
    sums = {name: 0.0 for name in metrics}
    for scores in fold_scores:
        for name in metrics:
            sums[name] += scores[name]
    return {
        name: value / len(fold_scores) for name, value in sums.items()
    }


def cross_val_score(
    model_factory: Callable[[], object],
    data,
    labels,
    n_splits: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Per-fold accuracy scores (stratified)."""
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    scores = []
    for train, test in StratifiedKFold(n_splits, seed=seed).split(labels):
        model = model_factory()
        model.fit(data[train], labels[train])  # type: ignore[attr-defined]
        predicted = model.predict(data[test])  # type: ignore[attr-defined]
        scores.append(accuracy(labels[test], predicted))
    return np.array(scores)
