"""Mining substrate: clustering, classification, patterns, metrics.

Everything here is implemented from scratch on numpy — the library has
no scikit-learn dependency. Public surface::

    from repro.mining import (
        KMeans, kmeans, BisectingKMeans, AgglomerativeClustering, DBSCAN,
        KDTree,
        DecisionTreeClassifier, MajorityClassifier,
        apriori, fpgrowth, mine_frequent_itemsets, Itemset,
        generate_rules, AssociationRule,
        mine_generalized_itemsets, GeneralizedItemset,
        sse, overall_similarity, silhouette_score, ...
        KFold, StratifiedKFold, cross_validate, train_test_split,
    )
"""

from repro.mining.bisecting import BisectingKMeans
from repro.mining.dbscan import DBSCAN, NOISE
from repro.mining.decision_tree import (
    DecisionTreeClassifier,
    MajorityClassifier,
    TreeNode,
    entropy_impurity,
    gini_impurity,
)
from repro.mining.distance import (
    cosine_distance,
    cosine_similarity,
    euclidean,
    manhattan,
    pairwise_distances,
    squared_euclidean,
)
from repro.mining.generalized import (
    GeneralizedItemset,
    extend_transactions,
    level_summary,
    mine_generalized_itemsets,
)
from repro.mining.hierarchical import AgglomerativeClustering, Merge
from repro.mining.itemsets import (
    Itemset,
    apriori,
    apriori_blocks,
    closed_itemsets,
    fpgrowth,
    itemset_index,
    maximal_itemsets,
    mine_frequent_itemsets,
)
from repro.mining.kdtree import KDNode, KDTree
from repro.mining.kmedoids import KMedoids
from repro.mining.knn import KNeighborsClassifier
from repro.mining.kmeans import (
    KMeans,
    filtering_stats,
    kmeans,
    kmeans_plus_plus,
)
from repro.mining.naive_bayes import (
    GaussianNaiveBayes,
    MultinomialNaiveBayes,
)
from repro.mining.metrics import (
    accuracy,
    adjusted_rand_index,
    calinski_harabasz_index,
    classification_report,
    confusion_matrix,
    davies_bouldin_index,
    normalized_mutual_information,
    overall_similarity,
    precision_recall_f1,
    purity,
    silhouette_score,
    sse,
)
from repro.mining.outliers import knn_outlier_scores, top_outliers
from repro.mining.rules import AssociationRule, filter_rules, generate_rules
from repro.mining.stability import bootstrap_stability, stability_profile
from repro.mining.sequences import (
    SequentialPattern,
    mine_log_sequences,
    mine_sequences,
    pattern_contains,
    sequences_from_log,
)
from repro.mining.validation import (
    DEFAULT_METRICS,
    KFold,
    StratifiedKFold,
    cross_val_score,
    cross_validate,
    train_test_split,
)

__all__ = [
    "AgglomerativeClustering",
    "AssociationRule",
    "BisectingKMeans",
    "DBSCAN",
    "DEFAULT_METRICS",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "GeneralizedItemset",
    "Itemset",
    "KDNode",
    "KDTree",
    "KFold",
    "KMeans",
    "KMedoids",
    "KNeighborsClassifier",
    "MajorityClassifier",
    "MultinomialNaiveBayes",
    "Merge",
    "NOISE",
    "SequentialPattern",
    "StratifiedKFold",
    "TreeNode",
    "accuracy",
    "adjusted_rand_index",
    "apriori",
    "apriori_blocks",
    "calinski_harabasz_index",
    "bootstrap_stability",
    "classification_report",
    "closed_itemsets",
    "confusion_matrix",
    "cosine_distance",
    "cosine_similarity",
    "cross_val_score",
    "cross_validate",
    "davies_bouldin_index",
    "entropy_impurity",
    "euclidean",
    "extend_transactions",
    "filter_rules",
    "filtering_stats",
    "fpgrowth",
    "generate_rules",
    "gini_impurity",
    "itemset_index",
    "kmeans",
    "knn_outlier_scores",
    "kmeans_plus_plus",
    "level_summary",
    "manhattan",
    "maximal_itemsets",
    "mine_frequent_itemsets",
    "mine_generalized_itemsets",
    "mine_log_sequences",
    "mine_sequences",
    "normalized_mutual_information",
    "overall_similarity",
    "pairwise_distances",
    "pattern_contains",
    "precision_recall_f1",
    "purity",
    "sequences_from_log",
    "silhouette_score",
    "squared_euclidean",
    "sse",
    "stability_profile",
    "top_outliers",
    "train_test_split",
]
