"""Generalised (multi-level) itemset mining over an item taxonomy.

Paper reference [2] — MeTA, "Characterization of Medical Treatments at
Different Abstraction Levels" — mines patterns where items may be either
concrete examinations or their taxonomy ancestors (exam categories), so
that rare-but-coherent behaviour surfaces at the category level even
when each individual exam is infrequent.

The approach implemented here follows the classical generalised-itemset
scheme (Srikant & Agrawal 1995, with MeTA's level-sensitive support):

1. transactions are *extended* with the ancestors of their items;
2. frequent itemsets are mined over the extended transactions;
3. itemsets mixing an item with its own ancestor are discarded as
   redundant (their support equals the itemset without the ancestor);
4. each surviving itemset is annotated with its abstraction level —
   0 for pure leaf-level itemsets, 1 for pure category-level ones,
   otherwise *mixed*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import MiningError
from repro.mining.itemsets import Itemset, mine_frequent_itemsets

Transaction = Sequence[str]


@dataclass(frozen=True)
class GeneralizedItemset:
    """A frequent itemset annotated with its abstraction level."""

    items: FrozenSet[str]
    count: int
    support: float
    level: str  # "leaf", "category" or "mixed"

    def sorted_items(self) -> Tuple[str, ...]:
        return tuple(sorted(self.items))


def extend_transactions(
    transactions: Sequence[Transaction],
    parent_of: Dict[str, str],
) -> List[List[str]]:
    """Add each item's taxonomy ancestor to its transaction.

    Unknown items (absent from ``parent_of``) are kept but contribute no
    ancestor. Each ancestor appears at most once per transaction.
    """
    extended = []
    for transaction in transactions:
        items = set(transaction)
        ancestors = {
            parent_of[item] for item in transaction if item in parent_of
        }
        extended.append(sorted(items | ancestors))
    return extended


def mine_generalized_itemsets(
    transactions: Sequence[Transaction],
    parent_of: Dict[str, str],
    min_support: float,
    algorithm: str = "fpgrowth",
    max_length: Optional[int] = None,
) -> List[GeneralizedItemset]:
    """Mine multi-level frequent itemsets.

    Parameters
    ----------
    transactions:
        Leaf-level transactions (e.g. exam names per patient).
    parent_of:
        ``item -> ancestor`` map, e.g.
        :meth:`repro.data.ExamTaxonomy.parent_map`.
    min_support:
        Relative support threshold applied at every level.

    Returns
    -------
    list of GeneralizedItemset sorted by (length, items); redundant
    itemsets containing both an item and its own ancestor are removed.
    """
    if not parent_of:
        raise MiningError("parent_of taxonomy map is empty")
    categories = set(parent_of.values())
    overlap = categories & set(parent_of)
    if overlap:
        raise MiningError(
            f"taxonomy is not two-level; these are both item and"
            f" ancestor: {sorted(overlap)[:3]}"
        )
    extended = extend_transactions(transactions, parent_of)
    raw = mine_frequent_itemsets(
        extended, min_support, algorithm=algorithm, max_length=max_length
    )
    results = []
    for itemset in raw:
        if _is_redundant(itemset.items, parent_of):
            continue
        results.append(
            GeneralizedItemset(
                items=itemset.items,
                count=itemset.count,
                support=itemset.support,
                level=_level_of(itemset.items, categories),
            )
        )
    return results


def _is_redundant(
    items: FrozenSet[str], parent_of: Dict[str, str]
) -> bool:
    """True when the itemset holds an item together with its ancestor."""
    return any(
        parent_of.get(item) in items for item in items if item in parent_of
    )


def _level_of(items: FrozenSet[str], categories: set) -> str:
    in_category = sum(1 for item in items if item in categories)
    if in_category == 0:
        return "leaf"
    if in_category == len(items):
        return "category"
    return "mixed"


def level_summary(
    itemsets: Sequence[GeneralizedItemset],
) -> Dict[str, int]:
    """Count itemsets per abstraction level."""
    summary = {"leaf": 0, "category": 0, "mixed": 0}
    for itemset in itemsets:
        summary[itemset.level] += 1
    return summary
