"""CART decision-tree classifier (plus a majority-class baseline).

The ADA-HEALTH optimiser assesses the robustness of a cluster set by
training a classifier "using the same input features of the clustering
algorithm, and the class label assigned by the clustering algorithm
itself as target. ... In our first implementation, we used decision
trees as classification model." This module supplies that model: a
binary CART tree with gini/entropy impurity, the usual pre-pruning
controls and optional reduced-error post-pruning.

The implementation is vectorised per node: each candidate feature's
split scan is one sort plus cumulative class counts, so trees over the
full 6,380 x 159 patient matrix build in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix


def gini_impurity(counts: np.ndarray) -> float:
    """Gini impurity from a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - (proportions**2).sum())


def entropy_impurity(counts: np.ndarray) -> float:
    """Shannon entropy (nats) from a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    nonzero = proportions[proportions > 0]
    return float(-(nonzero * np.log(nonzero)).sum())


@dataclass
class TreeNode:
    """A node of the fitted tree. Leaves carry the class distribution."""

    counts: np.ndarray
    depth: int
    feature: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def prediction(self) -> int:
        """Majority class index (ties break low)."""
        return int(np.argmax(self.counts))

    @property
    def n_samples(self) -> int:
        return int(self.counts.sum())


class DecisionTreeClassifier:
    """Binary CART classifier.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_depth:
        Depth cap (root has depth 0); ``None`` for unbounded.
    min_samples_split:
        Minimum node size to attempt a split.
    min_samples_leaf:
        Minimum samples on each side of any accepted split.
    min_impurity_decrease:
        Minimum weighted impurity decrease to accept a split.
    max_features:
        If set, the number of features sampled (without replacement) at
        every node; ``None`` evaluates all features.
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise MiningError(f"unknown criterion: {criterion!r}")
        if max_depth is not None and max_depth < 0:
            raise MiningError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise MiningError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise MiningError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[TreeNode] = None
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, data, labels) -> "DecisionTreeClassifier":
        """Grow the tree on ``(data, labels)``; returns ``self``."""
        data = as_matrix(data)
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != data.shape[0]:
            raise MiningError("labels must be 1-D and aligned with data")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self.n_features_ = data.shape[1]
        self._impurity = (
            gini_impurity if self.criterion == "gini" else entropy_impurity
        )
        self._importance = np.zeros(self.n_features_)
        self._rng = np.random.default_rng(self.seed)
        self._n_total = data.shape[0]
        self.root_ = self._grow(data, encoded, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        return self

    def _grow(
        self, data: np.ndarray, labels: np.ndarray, depth: int
    ) -> TreeNode:
        counts = np.bincount(labels, minlength=len(self.classes_)).astype(
            float
        )
        node = TreeNode(counts=counts, depth=depth)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or data.shape[0] < self.min_samples_split
            or counts.max() == counts.sum()
        ):
            return node
        split = self._best_split(data, labels, counts)
        if split is None:
            return node
        feature, threshold, decrease = split
        mask = data[:, feature] <= threshold
        self._importance[feature] += decrease * data.shape[0] / self._n_total
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(data[mask], labels[mask], depth + 1)
        node.right = self._grow(data[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(
        self, data: np.ndarray, labels: np.ndarray, counts: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        """Return ``(feature, threshold, impurity decrease)`` or None."""
        n, d = data.shape
        parent_impurity = self._impurity(counts)
        if parent_impurity == 0.0:
            return None
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(
                d, size=self.max_features, replace=False
            )
        else:
            features = np.arange(d)

        best: Optional[Tuple[int, float, float]] = None
        n_classes = len(self.classes_)
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), labels] = 1.0
        min_leaf = self.min_samples_leaf
        for feature in features:
            values = data[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            left_counts = np.cumsum(one_hot[order], axis=0)
            # Candidate cut after position i (1-based left size i+1);
            # valid only between distinct consecutive values.
            boundaries = np.nonzero(
                sorted_values[:-1] < sorted_values[1:]
            )[0]
            if min_leaf > 1:
                boundaries = boundaries[
                    (boundaries + 1 >= min_leaf)
                    & (n - boundaries - 1 >= min_leaf)
                ]
            if len(boundaries) == 0:
                continue
            left = left_counts[boundaries]
            right = counts[None, :] - left
            left_sizes = left.sum(axis=1)
            right_sizes = right.sum(axis=1)
            if self.criterion == "gini":
                left_imp = 1.0 - (left**2).sum(axis=1) / left_sizes**2
                right_imp = 1.0 - (right**2).sum(axis=1) / right_sizes**2
            else:
                left_imp = _entropy_rows(left, left_sizes)
                right_imp = _entropy_rows(right, right_sizes)
            weighted = (
                left_sizes * left_imp + right_sizes * right_imp
            ) / n
            decreases = parent_impurity - weighted
            pick = int(np.argmax(decreases))
            decrease = float(decreases[pick])
            if decrease <= self.min_impurity_decrease:
                continue
            if best is None or decrease > best[2]:
                cut = boundaries[pick]
                threshold = float(
                    (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                )
                best = (int(feature), threshold, decrease)
        return best

    # ------------------------------------------------------------------
    def predict(self, data) -> np.ndarray:
        """Predicted class labels."""
        probabilities = self.predict_proba(data)
        picks = np.argmax(probabilities, axis=1)
        return self.classes_[picks]  # type: ignore[index]

    def predict_proba(self, data) -> np.ndarray:
        """Per-class probabilities from leaf class frequencies."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        data = as_matrix(data)
        if data.shape[1] != self.n_features_:
            raise MiningError(
                f"expected {self.n_features_} features, got {data.shape[1]}"
            )
        output = np.empty((data.shape[0], len(self.classes_)))
        for i, row in enumerate(data):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left
                    if row[node.feature] <= node.threshold
                    else node.right
                )
            total = node.counts.sum()
            output[i] = node.counts / total if total else node.counts
        return output

    def score(self, data, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float((self.predict(data) == labels).mean())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the fitted tree (single leaf = 0)."""
        if self.root_ is None:
            raise NotFittedError("tree is not fitted")

        def visit(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(visit(node.left), visit(node.right))

        return visit(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves."""
        if self.root_ is None:
            raise NotFittedError("tree is not fitted")

        def visit(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return visit(node.left) + visit(node.right)

        return visit(self.root_)

    def export_text(
        self, feature_names: Optional[Sequence[str]] = None
    ) -> str:
        """Human-readable rendering of the decision rules."""
        if self.root_ is None:
            raise NotFittedError("tree is not fitted")
        lines: List[str] = []

        def name(feature: int) -> str:
            if feature_names is not None:
                return str(feature_names[feature])
            return f"feature[{feature}]"

        def visit(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                cls = self.classes_[node.prediction]  # type: ignore[index]
                lines.append(
                    f"{indent}predict {cls!r} (n={node.n_samples})"
                )
                return
            lines.append(
                f"{indent}if {name(node.feature)} <= {node.threshold:.4f}:"
            )
            visit(node.left, indent + "  ")
            lines.append(f"{indent}else:")
            visit(node.right, indent + "  ")

        visit(self.root_, "")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def prune(self, data, labels) -> "DecisionTreeClassifier":
        """Reduced-error post-pruning against a validation set.

        Bottom-up: replace an internal node by a leaf whenever doing so
        does not reduce accuracy on ``(data, labels)``.
        """
        if self.root_ is None:
            raise NotFittedError("tree is not fitted")
        data = as_matrix(data)
        labels = np.asarray(labels)
        encoded = np.searchsorted(self.classes_, labels)

        def visit(node: TreeNode, rows: np.ndarray, y: np.ndarray) -> None:
            if node.is_leaf or len(y) == 0:
                return
            mask = rows[:, node.feature] <= node.threshold
            visit(node.left, rows[mask], y[mask])
            visit(node.right, rows[~mask], y[~mask])
            subtree_correct = int(
                (self._subtree_predict(node, rows) == y).sum()
            )
            leaf_correct = int((y == node.prediction).sum())
            if leaf_correct >= subtree_correct:
                node.left = None
                node.right = None
                node.feature = -1

        visit(self.root_, data, encoded)
        return self

    def _subtree_predict(
        self, node: TreeNode, rows: np.ndarray
    ) -> np.ndarray:
        out = np.empty(len(rows), dtype=int)
        for i, row in enumerate(rows):
            cursor = node
            while not cursor.is_leaf:
                cursor = (
                    cursor.left
                    if row[cursor.feature] <= cursor.threshold
                    else cursor.right
                )
            out[i] = cursor.prediction
        return out


def _entropy_rows(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Row-wise entropy of count matrices (sizes = row sums)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        proportions = counts / sizes[:, None]
        logs = np.where(proportions > 0, np.log(proportions), 0.0)
    return -(proportions * logs).sum(axis=1)


class MajorityClassifier:
    """Baseline that always predicts the most frequent training class."""

    def __init__(self) -> None:
        self.prediction_: Optional[object] = None

    def fit(self, data, labels) -> "MajorityClassifier":
        labels = np.asarray(labels)
        if labels.size == 0:
            raise MiningError("cannot fit on empty labels")
        values, counts = np.unique(labels, return_counts=True)
        self.prediction_ = values[int(np.argmax(counts))]
        return self

    def predict(self, data) -> np.ndarray:
        if self.prediction_ is None:
            raise NotFittedError("MajorityClassifier is not fitted")
        data = np.asarray(data)
        return np.full(data.shape[0], self.prediction_)
