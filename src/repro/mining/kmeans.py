"""K-means clustering: Lloyd's algorithm and the kd-tree *filtering* engine.

The paper's preliminary ADA-HEALTH implementation clusters patients with
"a center-based algorithm such as K-Means" and cites Kanungo et al. (IEEE
TPAMI 2002) for the implementation. This module provides both:

* ``algorithm="lloyd"`` — the textbook alternating assignment/update
  iteration, fully vectorised; and
* ``algorithm="filtering"`` — Kanungo's kd-tree filtering algorithm,
  which assigns whole tree cells to a centre when every competing centre
  is provably farther from the cell, avoiding per-point distance
  computations on the dense head of the data.

Both engines produce identical assignments given identical centres; the
ablation benchmark ``benchmarks/test_kmeans_filtering_ablation.py``
verifies equivalence and compares runtimes.

Initialisation is ``k-means++`` (default) or uniform random sampling;
``n_init`` restarts keep the best inertia. All randomness flows through
an explicit seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, squared_euclidean
from repro.mining.kdtree import KDNode, KDTree


def kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007).

    The first centre is uniform; each subsequent centre is drawn with
    probability proportional to the squared distance from the nearest
    centre chosen so far.
    """
    n = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest = squared_euclidean(data, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0.0:
            # All remaining mass at distance zero: duplicate points; pick
            # uniformly to stay well-defined.
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest / total))
        centers[i] = data[choice]
        distance = squared_euclidean(data, centers[i : i + 1]).ravel()
        np.minimum(closest, distance, out=closest)
    return centers


def _random_init(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n_clusters`` distinct rows as initial centres."""
    choice = rng.choice(data.shape[0], size=n_clusters, replace=False)
    return data[choice].copy()


class KMeans:
    """Center-based clustering with SSE (inertia) objective.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``.
    init:
        ``"k-means++"`` or ``"random"``.
    algorithm:
        ``"lloyd"`` or ``"filtering"`` (Kanungo kd-tree engine).
    n_init:
        Number of random restarts; the run with the lowest SSE wins.
    max_iter:
        Iteration cap per restart.
    tol:
        Convergence threshold on the squared movement of centres.
    seed:
        Seed for all randomness.

    Attributes (after ``fit``)
    --------------------------
    cluster_centers_ : ``(K, d)`` centroids.
    labels_ : per-point cluster index.
    inertia_ : SSE — "the total sum of squared errors over all the
        objects in the collection, where for each object the error is
        computed as the squared distance from the closest centroid".
    n_iter_ : iterations of the winning restart.
    """

    def __init__(
        self,
        n_clusters: int,
        init: str = "k-means++",
        algorithm: str = "lloyd",
        n_init: int = 5,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise MiningError("n_clusters must be >= 1")
        if init not in ("k-means++", "random"):
            raise MiningError(f"unknown init: {init!r}")
        if algorithm not in ("lloyd", "filtering"):
            raise MiningError(f"unknown algorithm: {algorithm!r}")
        if n_init < 1 or max_iter < 1:
            raise MiningError("n_init and max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.init = init
        self.algorithm = algorithm
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None
        # Streaming (partial_fit) state: per-cluster sample counts, the
        # pre-init row buffer and the dedicated seeded generator.
        self._stream_counts: Optional[np.ndarray] = None
        self._stream_buffer: Optional[List[np.ndarray]] = None
        self._stream_rng: Optional[np.random.Generator] = None
        self.n_seen_: int = 0

    # ------------------------------------------------------------------
    def fit(self, data) -> "KMeans":
        """Cluster ``data``; returns ``self``."""
        data = as_matrix(data)
        if data.shape[0] < self.n_clusters:
            raise MiningError(
                f"need at least n_clusters={self.n_clusters} points,"
                f" got {data.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        tree = KDTree(data) if self.algorithm == "filtering" else None

        best: Optional[Tuple[float, np.ndarray, np.ndarray, int]] = None
        for __ in range(self.n_init):
            if self.init == "k-means++":
                centers = kmeans_plus_plus(data, self.n_clusters, rng)
            else:
                centers = _random_init(data, self.n_clusters, rng)
            centers, labels, inertia, n_iter = self._run(
                data, centers, rng, tree
            )
            if best is None or inertia < best[0]:
                best = (inertia, centers, labels, n_iter)

        if best is None:
            raise RuntimeError("no k-means initialisation succeeded")
        self.inertia_, self.cluster_centers_, self.labels_, self.n_iter_ = (
            best[0],
            best[1],
            best[2],
            best[3],
        )
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(data).labels_  # type: ignore[return-value]

    def partial_fit(self, block) -> "KMeans":
        """Streaming minibatch update from one row block.

        The out-of-core companion to :meth:`fit`: feed the blocks of a
        :class:`repro.data.BlockedDataset` one at a time and the model
        never sees more than one block of data. Rows are buffered until
        ``n_clusters`` are available, centres are then seeded once
        (``init`` applies, drawn from a generator seeded with ``seed``),
        and every subsequent block performs one assignment pass followed
        by MacQueen running-mean centre updates weighted by the lifetime
        per-cluster counts — so a centre stabilises as it accumulates
        evidence.

        This is an *approximate* single-pass method: it trades the exact
        restarted Lloyd iterations for O(block) memory, and its centres
        are generally close to but not identical to :meth:`fit` on the
        concatenated data. Exact blocked clustering runs :meth:`fit` on
        the blocked dataset's backing matrix instead (what
        :class:`repro.core.KMeansOptimizer` does by default).
        ``inertia_`` reports the latest block's assignment SSE against
        the pre-update centres; do not interleave with :meth:`fit`,
        which ignores and does not reset streaming state.
        """
        block = as_matrix(block)
        if block.shape[0] == 0:
            return self
        if self._stream_counts is None:
            if self._stream_buffer is None:
                self._stream_buffer = []
                self._stream_rng = np.random.default_rng(self.seed)
            self._stream_buffer.append(np.array(block, dtype=np.float64))
            buffered = np.vstack(self._stream_buffer)
            if buffered.shape[0] < self.n_clusters:
                return self
            if self.init == "k-means++":
                centers = kmeans_plus_plus(
                    buffered, self.n_clusters, self._stream_rng
                )
            else:
                centers = _random_init(
                    buffered, self.n_clusters, self._stream_rng
                )
            self.cluster_centers_ = centers.copy()
            self._stream_counts = np.zeros(self.n_clusters)
            self._stream_buffer = None
            block = buffered
        centers = self.cluster_centers_
        labels, sums, counts, inertia = _lloyd_step(block, centers)
        self._stream_counts += counts
        occupied = counts > 0
        centers[occupied] += (
            sums[occupied] - counts[occupied, None] * centers[occupied]
        ) / self._stream_counts[occupied, None]
        self.n_seen_ += block.shape[0]
        self.inertia_ = float(inertia)
        return self

    def predict(self, data) -> np.ndarray:
        """Assign new points to the nearest fitted centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        data = as_matrix(data)
        return np.argmin(
            squared_euclidean(data, self.cluster_centers_), axis=1
        )

    def transform(self, data) -> np.ndarray:
        """Distances from each point to each fitted centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.transform called before fit")
        data = as_matrix(data)
        return np.sqrt(squared_euclidean(data, self.cluster_centers_))

    # ------------------------------------------------------------------
    def _run(
        self,
        data: np.ndarray,
        centers: np.ndarray,
        rng: np.random.Generator,
        tree: Optional[KDTree],
    ) -> Tuple[np.ndarray, np.ndarray, float, int]:
        """One restart: iterate until convergence or ``max_iter``."""
        n_iter = 0
        converged = False
        for n_iter in range(1, self.max_iter + 1):
            if tree is not None:
                labels, sums, counts, inertia = _filtering_step(
                    tree, centers
                )
            else:
                labels, sums, counts, inertia = _lloyd_step(data, centers)
            new_centers = centers.copy()
            occupied = counts > 0
            new_centers[occupied] = (
                sums[occupied] / counts[occupied, None]
            )
            # Re-seed empty clusters on the farthest points: keeps K
            # clusters alive, matching common practice.
            for j in np.nonzero(~occupied)[0]:
                distances = squared_euclidean(data, centers[j : j + 1])
                new_centers[j] = data[int(np.argmax(distances))]
            shift = float(((new_centers - centers) ** 2).sum())
            if shift <= self.tol:
                # The update barely moved: labels/inertia from this step
                # are consistent with `centers` as they stand, so no
                # final assignment pass is needed.
                converged = True
                break
            centers = new_centers
        if not converged:
            if tree is not None:
                labels, __, __, inertia = _filtering_step(tree, centers)
            else:
                labels, __, __, inertia = _lloyd_step(data, centers)
        return centers, labels, float(inertia), n_iter


def _lloyd_step(
    data: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One assignment pass: labels, per-cluster sums/counts, SSE."""
    distances = squared_euclidean(data, centers)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(len(labels)), labels].sum())
    k = centers.shape[0]
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    # Per-dimension bincount beats the np.add.at scatter by a wide
    # margin (add.at's unbuffered fancy indexing is notoriously slow).
    sums = np.column_stack(
        [
            np.bincount(labels, weights=data[:, dim], minlength=k)
            for dim in range(data.shape[1])
        ]
    )
    return labels, sums, counts, inertia


def _filtering_step(
    tree: KDTree, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One assignment pass using Kanungo's filtering traversal.

    Whole cells whose candidate set prunes down to a single centre are
    assigned in O(1) using the cell aggregates (point count, vector sum,
    sum of squared norms). The traversal uses an explicit stack, so deep
    trees over large or degenerate datasets cannot hit Python's
    recursion limit.
    """
    k, dims = centers.shape
    labels = np.empty(tree.data.shape[0], dtype=int)
    sums = np.zeros((k, dims))
    counts = np.zeros(k)
    inertia = 0.0

    stack = [(tree.root, np.arange(k))]
    while stack:
        node, candidates = stack.pop()
        if len(candidates) > 1:
            candidates = _filter_candidates(node, centers, candidates)
        if len(candidates) == 1 and not node.is_leaf:
            winner = int(candidates[0])
            labels[node.indexes] = winner
            sums[winner] += node.vector_sum
            counts[winner] += node.count
            center = centers[winner]
            inertia += (
                node.sq_sum
                - 2.0 * float(center @ node.vector_sum)
                + node.count * float(center @ center)
            )
            continue
        if node.is_leaf:
            points = tree.data[node.indexes]
            distances = squared_euclidean(points, centers[candidates])
            nearest = np.argmin(distances, axis=1)
            chosen = candidates[nearest]
            labels[node.indexes] = chosen
            np.add.at(sums, chosen, points)
            counts[:] = counts + np.bincount(chosen, minlength=k)
            inertia += float(
                distances[np.arange(len(nearest)), nearest].sum()
            )
            continue
        stack.append((node.right, candidates))
        stack.append((node.left, candidates))

    return labels, sums, counts, float(inertia)


def filtering_stats(data, centers) -> dict:
    """Instrumentation for the filtering traversal.

    Returns how effectively one filtering pass prunes work for the given
    centres: the fraction of points assigned in bulk at internal nodes
    (without any per-point distance computation) and the number of
    point-centre distance evaluations performed, versus the ``n * k``
    a Lloyd pass always needs.
    """
    data = as_matrix(data)
    centers = np.asarray(centers, dtype=np.float64)
    tree = KDTree(data)
    k = centers.shape[0]
    stats = {
        "bulk_points": 0,
        "leaf_points": 0,
        "distance_evaluations": 0,
        "nodes_visited": 0,
    }

    stack = [(tree.root, np.arange(k))]
    while stack:
        node, candidates = stack.pop()
        stats["nodes_visited"] += 1
        if len(candidates) > 1:
            candidates = _filter_candidates(node, centers, candidates)
        if len(candidates) == 1 and not node.is_leaf:
            stats["bulk_points"] += node.count
            continue
        if node.is_leaf:
            stats["leaf_points"] += node.count
            stats["distance_evaluations"] += node.count * len(candidates)
            continue
        stack.append((node.right, candidates))
        stack.append((node.left, candidates))

    stats["lloyd_distance_evaluations"] = data.shape[0] * k
    stats["bulk_fraction"] = stats["bulk_points"] / data.shape[0]
    return stats


def _filter_candidates(
    node: KDNode, centers: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Prune candidate centres that cannot own any point of the cell.

    The closest candidate to the cell midpoint is kept; any other
    candidate ``z`` is pruned when the cell corner farthest in the
    direction ``z - z*`` is still closer to ``z*`` (Kanungo et al.,
    Lemma "is_farther").
    """
    subset = centers[candidates]
    midpoint = (node.lower + node.upper) / 2.0
    closest_pos = int(
        np.argmin(squared_euclidean(midpoint[None, :], subset).ravel())
    )
    star = subset[closest_pos]
    keep = np.zeros(len(candidates), dtype=bool)
    keep[closest_pos] = True
    for position, center in enumerate(subset):
        if position == closest_pos:
            continue
        direction = center - star
        corner = np.where(direction > 0.0, node.upper, node.lower)
        to_star = corner - star
        to_center = corner - center
        if float(to_center @ to_center) < float(to_star @ to_star):
            keep[position] = True
    return candidates[keep]


def kmeans(
    data,
    n_clusters: int,
    seed: int = 0,
    **kwargs,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Functional one-shot API: returns ``(labels, centers, sse)``."""
    model = KMeans(n_clusters=n_clusters, seed=seed, **kwargs).fit(data)
    return (
        model.labels_,  # type: ignore[return-value]
        model.cluster_centers_,
        model.inertia_,
    )
