"""kd-tree over data points, built for the *filtering* K-means algorithm.

The paper cites Kanungo et al., "An efficient k-means clustering
algorithm: Analysis and implementation" (IEEE TPAMI 2002) as its K-means
engine. That algorithm stores the data points in a kd-tree whose internal
nodes carry, for the cell they represent,

* the axis-aligned bounding box of the points inside,
* the vector sum of those points (the *weighted centroid*), and
* the point count,

so that during a Lloyd iteration whole subtrees can be assigned to a
centre at once ("filtering" candidate centres as the traversal descends).
This module provides that tree plus exact nearest-neighbour queries used
elsewhere (e.g. DBSCAN region queries fall back to it for wide data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MiningError
from repro.mining.distance import as_matrix


@dataclass
class KDNode:
    """A node of the kd-tree.

    Leaves hold explicit point indexes; internal nodes hold the split
    definition and the per-cell aggregates used by the filtering search.
    """

    lower: np.ndarray
    upper: np.ndarray
    count: int
    vector_sum: np.ndarray
    sq_sum: float
    indexes: np.ndarray
    split_dim: int = -1
    split_value: float = 0.0
    left: Optional["KDNode"] = None
    right: Optional["KDNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def centroid(self) -> np.ndarray:
        """Mean of the points in the cell."""
        return self.vector_sum / self.count


class KDTree:
    """Bulk-built kd-tree with cell aggregates.

    Parameters
    ----------
    data:
        ``(n, d)`` matrix of points.
    leaf_size:
        Maximum number of points in a leaf. Smaller leaves mean deeper
        trees: better filtering but more overhead.
    """

    def __init__(self, data, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise MiningError("leaf_size must be >= 1")
        self.data = as_matrix(data)
        self.leaf_size = leaf_size
        indexes = np.arange(self.data.shape[0])
        self.root = self._build(indexes)

    # ------------------------------------------------------------------
    def _build(self, root_indexes: np.ndarray) -> KDNode:
        """Bulk build with an explicit work stack.

        Iterative rather than recursive: a pathological median split
        (heavily duplicated coordinates) can make the tree nearly as
        deep as the point count, which would overflow Python's
        recursion limit on large datasets.
        """
        root = self._make_node(root_indexes)
        stack = [root]
        while stack:
            node = stack.pop()
            indexes = node.indexes
            points = self.data[indexes]
            if len(indexes) <= self.leaf_size or np.all(
                node.lower == node.upper
            ):
                continue
            spread = node.upper - node.lower
            split_dim = int(np.argmax(spread))
            values = points[:, split_dim]
            split_value = float(np.median(values))
            left_mask = values <= split_value
            # A median equal to the max would send everything left;
            # force a non-degenerate split on the strict side.
            if left_mask.all():
                left_mask = values < split_value
            if not left_mask.any() or left_mask.all():
                continue
            node.split_dim = split_dim
            node.split_value = split_value
            node.left = self._make_node(indexes[left_mask])
            node.right = self._make_node(indexes[~left_mask])
            stack.append(node.right)
            stack.append(node.left)
        return root

    def _make_node(self, indexes: np.ndarray) -> KDNode:
        points = self.data[indexes]
        return KDNode(
            lower=points.min(axis=0),
            upper=points.max(axis=0),
            count=len(indexes),
            vector_sum=points.sum(axis=0),
            sq_sum=float(np.einsum("ij,ij->", points, points)),
            indexes=indexes,
        )

    # ------------------------------------------------------------------
    # Nearest-neighbour queries
    # ------------------------------------------------------------------
    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indexes)`` of the ``k`` nearest points."""
        point = np.asarray(point, dtype=np.float64).ravel()
        if point.shape[0] != self.data.shape[1]:
            raise MiningError("query point has wrong dimensionality")
        if not 1 <= k <= self.data.shape[0]:
            raise MiningError("k must be in [1, n_points]")
        # Max-heap emulation with a sorted list of (distance, index); k is
        # small in practice so insertion cost is negligible. Explicit
        # stack: near child processed first (pushed last), pruning
        # re-checked at pop time with the tightened radius.
        best: List[Tuple[float, int]] = []

        stack = [self.root]
        while stack:
            node = stack.pop()
            if len(best) == k and self._min_dist2(node, point) >= best[-1][0]:
                continue
            if node.is_leaf:
                diffs = self.data[node.indexes] - point
                dist2 = np.einsum("ij,ij->i", diffs, diffs)
                for distance, index in zip(dist2, node.indexes):
                    if len(best) < k:
                        best.append((float(distance), int(index)))
                        best.sort()
                    elif distance < best[-1][0]:
                        best[-1] = (float(distance), int(index))
                        best.sort()
                continue
            near, far = node.left, node.right
            if point[node.split_dim] > node.split_value:
                near, far = far, near
            stack.append(far)  # type: ignore[arg-type]
            stack.append(near)  # type: ignore[arg-type]

        distances = np.sqrt(np.array([distance for distance, __ in best]))
        indexes = np.array([index for __, index in best])
        return distances, indexes

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indexes of all points within ``radius`` of ``point``."""
        point = np.asarray(point, dtype=np.float64).ravel()
        radius2 = radius * radius
        hits: List[int] = []

        stack = [self.root]
        while stack:
            node = stack.pop()
            if self._min_dist2(node, point) > radius2:
                continue
            if node.is_leaf:
                diffs = self.data[node.indexes] - point
                dist2 = np.einsum("ij,ij->i", diffs, diffs)
                hits.extend(
                    int(index)
                    for index, d2 in zip(node.indexes, dist2)
                    if d2 <= radius2
                )
                continue
            stack.append(node.right)  # type: ignore[arg-type]
            stack.append(node.left)  # type: ignore[arg-type]

        return np.array(sorted(hits), dtype=int)

    @staticmethod
    def _min_dist2(node: KDNode, point: np.ndarray) -> float:
        """Squared distance from ``point`` to the node's bounding box."""
        below = np.maximum(node.lower - point, 0.0)
        above = np.maximum(point - node.upper, 0.0)
        gap = below + above
        return float(gap @ gap)

    # ------------------------------------------------------------------
    def leaves(self) -> List[KDNode]:
        """All leaf nodes (left-to-right)."""
        result: List[KDNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]
        return result

    def depth(self) -> int:
        """Height of the tree (a single leaf has depth 1)."""
        deepest = 0
        stack: List[Tuple[KDNode, int]] = [(self.root, 1)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.right, level + 1))  # type: ignore[arg-type]
                stack.append((node.left, level + 1))  # type: ignore[arg-type]
        return deepest
