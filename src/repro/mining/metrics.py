"""Quality metrics for clustering and classification.

Implements every index the paper's optimiser uses —

* **SSE** (Sum of Squared Error), the cluster-cohesion index for
  center-based clustering (paper ref [4], Tan/Steinbach/Kumar);
* **overall similarity**, the interestingness metric the partial-mining
  experiment is scored with: "the internal pairwise similarity of
  patients within each cluster, ... taking the weighted sum over the
  whole cluster set";
* **accuracy / average precision / average recall**, the decision-tree
  robustness metrics of Table I —

plus the standard extras a downstream user expects (silhouette,
Davies-Bouldin, Calinski-Harabasz, purity, ARI, NMI, confusion matrix,
F1 with macro/micro/weighted averaging).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MiningError
from repro.mining.distance import (
    as_matrix,
    cosine_similarity,
    row_norms,
    squared_euclidean,
)


def _check_labels(data: np.ndarray, labels) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != data.shape[0]:
        raise MiningError("labels must be 1-D and aligned with the data")
    return labels


# ----------------------------------------------------------------------
# Clustering quality
# ----------------------------------------------------------------------
def sse(data, labels, centers: Optional[np.ndarray] = None) -> float:
    """Sum of squared errors to each point's cluster centroid.

    When ``centers`` is omitted, centroids are the within-cluster means
    (which minimise SSE for the given assignment).
    """
    data = as_matrix(data)
    labels = _check_labels(data, labels)
    total = 0.0
    for cluster in np.unique(labels):
        members = data[labels == cluster]
        if centers is None:
            center = members.mean(axis=0)
        else:
            center = centers[int(cluster)]
        diffs = members - center
        total += float(np.einsum("ij,ij->", diffs, diffs))
    return total


def overall_similarity(
    data,
    labels,
    exact: bool = False,
) -> float:
    """Weighted average within-cluster pairwise cosine similarity.

    For each cluster the *internal similarity* averages the cosine
    similarity of every ordered pair of members (self-pairs included, as
    in Tan/Steinbach/Kumar where the cluster cohesion equals the squared
    norm of the centroid of the unit-normalised members). The overall
    value is the cluster-size-weighted mean — in ``[0, 1]`` for
    non-negative data, higher is better.

    Parameters
    ----------
    exact:
        Compute the O(m^2) pairwise sum instead of the centroid identity.
        Both paths return the same value up to floating-point error; the
        exact path exists for verification.
    """
    data = as_matrix(data)
    labels = _check_labels(data, labels)
    n = data.shape[0]
    norms = row_norms(data)
    with np.errstate(divide="ignore", invalid="ignore"):
        unit = data / norms[:, None]
    unit = np.nan_to_num(unit)

    total = 0.0
    for cluster in np.unique(labels):
        members = unit[labels == cluster]
        size = members.shape[0]
        if exact:
            sims = cosine_similarity(members)
            internal = float(sims.sum()) / (size * size)
        else:
            centroid = members.mean(axis=0)
            internal = float(centroid @ centroid)
        total += size * internal
    return total / n


def silhouette_score(data, labels) -> float:
    """Mean silhouette coefficient over all points.

    ``(b - a) / max(a, b)`` where ``a`` is the mean intra-cluster
    distance and ``b`` the mean distance to the nearest other cluster.
    Singleton clusters contribute 0 by convention.
    """
    data = as_matrix(data)
    labels = _check_labels(data, labels)
    clusters = np.unique(labels)
    if len(clusters) < 2:
        raise MiningError("silhouette requires at least 2 clusters")
    distances = np.sqrt(squared_euclidean(data, data))
    scores = np.zeros(data.shape[0])
    masks = {cluster: labels == cluster for cluster in clusters}
    for i in range(data.shape[0]):
        own = masks[labels[i]]
        own_size = own.sum()
        if own_size <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own].sum() / (own_size - 1)
        b = np.inf
        for cluster in clusters:
            if cluster == labels[i]:
                continue
            other = masks[cluster]
            b = min(b, distances[i, other].mean())
        scores[i] = 0.0 if max(a, b) == 0 else (b - a) / max(a, b)
    return float(scores.mean())


def davies_bouldin_index(data, labels) -> float:
    """Davies-Bouldin index (lower is better)."""
    data = as_matrix(data)
    labels = _check_labels(data, labels)
    clusters = np.unique(labels)
    if len(clusters) < 2:
        raise MiningError("Davies-Bouldin requires at least 2 clusters")
    centroids = np.vstack(
        [data[labels == cluster].mean(axis=0) for cluster in clusters]
    )
    scatter = np.array(
        [
            float(
                np.sqrt(
                    squared_euclidean(
                        data[labels == cluster], centroids[i : i + 1]
                    )
                ).mean()
            )
            for i, cluster in enumerate(clusters)
        ]
    )
    separation = np.sqrt(squared_euclidean(centroids, centroids))
    k = len(clusters)
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (scatter[i] + scatter[j]) / separation[i, j]
            for j in range(k)
            if j != i and separation[i, j] > 0
        ]
        worst[i] = max(ratios) if ratios else 0.0
    return float(worst.mean())


def calinski_harabasz_index(data, labels) -> float:
    """Calinski-Harabasz variance-ratio criterion (higher is better)."""
    data = as_matrix(data)
    labels = _check_labels(data, labels)
    clusters = np.unique(labels)
    k = len(clusters)
    n = data.shape[0]
    if k < 2 or k >= n:
        raise MiningError("Calinski-Harabasz requires 2 <= k < n")
    overall_mean = data.mean(axis=0)
    between = 0.0
    within = 0.0
    for cluster in clusters:
        members = data[labels == cluster]
        centroid = members.mean(axis=0)
        gap = centroid - overall_mean
        between += members.shape[0] * float(gap @ gap)
        diffs = members - centroid
        within += float(np.einsum("ij,ij->", diffs, diffs))
    if within == 0.0:
        return float("inf")
    return float((between / (k - 1)) / (within / (n - k)))


def purity(true_labels, cluster_labels) -> float:
    """Fraction of points in each cluster's majority true class."""
    true_labels = np.asarray(true_labels)
    cluster_labels = np.asarray(cluster_labels)
    if true_labels.shape != cluster_labels.shape:
        raise MiningError("label arrays must align")
    total = 0
    for cluster in np.unique(cluster_labels):
        members = true_labels[cluster_labels == cluster]
        __, counts = np.unique(members, return_counts=True)
        total += counts.max()
    return total / len(true_labels)


def _pair_counts(a: np.ndarray, b: np.ndarray) -> Tuple[float, float, float]:
    """Comembership pair counts used by the Rand family."""
    classes_a, a_idx = np.unique(a, return_inverse=True)
    classes_b, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((len(classes_a), len(classes_b)))
    np.add.at(table, (a_idx, b_idx), 1)
    comb = lambda x: x * (x - 1) / 2.0
    sum_table = comb(table).sum()
    sum_a = comb(table.sum(axis=1)).sum()
    sum_b = comb(table.sum(axis=0)).sum()
    return sum_table, sum_a, sum_b


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two labelings (1 = identical)."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise MiningError("label arrays must align")
    n = len(a)
    sum_table, sum_a, sum_b = _pair_counts(a, b)
    total_pairs = n * (n - 1) / 2.0
    expected = sum_a * sum_b / total_pairs if total_pairs else 0.0
    maximum = (sum_a + sum_b) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_table - expected) / (maximum - expected))


def normalized_mutual_information(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalisation."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise MiningError("label arrays must align")
    n = len(a)
    classes_a, a_idx = np.unique(a, return_inverse=True)
    classes_b, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((len(classes_a), len(classes_b)))
    np.add.at(table, (a_idx, b_idx), 1)
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nz = joint > 0
    mutual = float(
        (joint[nz] * np.log(joint[nz] / np.outer(pa, pb)[nz])).sum()
    )
    entropy = lambda p: -float((p[p > 0] * np.log(p[p > 0])).sum())
    ha, hb = entropy(pa), entropy(pb)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    denominator = (ha + hb) / 2.0
    return 0.0 if denominator == 0.0 else mutual / denominator


# ----------------------------------------------------------------------
# Classification quality
# ----------------------------------------------------------------------
def confusion_matrix(
    y_true, y_pred, classes: Optional[Sequence] = None
) -> Tuple[np.ndarray, List]:
    """Return ``(matrix, classes)``; rows = true class, cols = predicted."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise MiningError("y_true and y_pred must align")
    if classes is None:
        classes = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, list(classes)


def accuracy(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise MiningError("y_true and y_pred must align")
    if len(y_true) == 0:
        raise MiningError("empty label arrays")
    return float((y_true == y_pred).mean())


def precision_recall_f1(
    y_true, y_pred, average: str = "macro"
) -> Tuple[float, float, float]:
    """Precision, recall and F1 with the requested averaging.

    ``average`` is ``"macro"`` (unweighted class mean — the paper's
    "average precision/recall"), ``"micro"`` (global counts) or
    ``"weighted"`` (class mean weighted by support). Classes with zero
    predicted (resp. actual) instances contribute precision (resp.
    recall) of 0, mirroring common practice.
    """
    matrix, classes = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)

    if average == "micro":
        total = matrix.sum()
        value = float(tp.sum() / total) if total else 0.0
        return value, value, value

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )
    if average == "macro":
        return (
            _unit(precision.mean()),
            _unit(recall.mean()),
            _unit(f1.mean()),
        )
    if average == "weighted":
        # The weights sum to 1 only up to float error, so the dot
        # product of all-1.0 scores can overshoot 1 by ~1e-16; clamp.
        weights = actual / actual.sum()
        return (
            _unit(precision @ weights),
            _unit(recall @ weights),
            _unit(f1 @ weights),
        )
    raise MiningError(f"unknown average: {average!r}")


def _unit(value) -> float:
    """Clamp an averaged score into the closed unit interval."""
    return min(1.0, max(0.0, float(value)))


def classification_report(y_true, y_pred) -> Dict[str, Dict[str, float]]:
    """Per-class precision/recall/F1/support plus macro averages."""
    matrix, classes = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    report: Dict[str, Dict[str, float]] = {}
    for i, cls in enumerate(classes):
        precision = tp[i] / predicted[i] if predicted[i] else 0.0
        recall = tp[i] / actual[i] if actual[i] else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        report[str(cls)] = {
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
            "support": float(actual[i]),
        }
    macro_p, macro_r, macro_f = precision_recall_f1(y_true, y_pred, "macro")
    report["macro avg"] = {
        "precision": macro_p,
        "recall": macro_r,
        "f1": macro_f,
        "support": float(actual.sum()),
    }
    report["accuracy"] = {
        "precision": accuracy(y_true, y_pred),
        "recall": accuracy(y_true, y_pred),
        "f1": accuracy(y_true, y_pred),
        "support": float(actual.sum()),
    }
    return report
