"""k-nearest-neighbour classifier.

The third pluggable robustness classifier for the optimiser. Uses the
kd-tree for narrow data and blocked brute force for wide VSMs (the same
dimensionality cutoff logic as DBSCAN).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, squared_euclidean
from repro.mining.kdtree import KDTree


class KNeighborsClassifier:
    """Majority vote among the ``k`` nearest training points.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted.
    weights:
        ``"uniform"`` (plain majority) or ``"distance"`` (votes weighted
        by inverse distance; an exact match wins outright).
    brute_force_dims:
        Use blocked brute force above this dimensionality.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        brute_force_dims: int = 25,
    ) -> None:
        if n_neighbors < 1:
            raise MiningError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise MiningError(f"unknown weights: {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.brute_force_dims = brute_force_dims
        self._data: Optional[np.ndarray] = None
        self._encoded: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None
        self._tree: Optional[KDTree] = None

    def fit(self, data, labels) -> "KNeighborsClassifier":
        data = as_matrix(data)
        labels = np.asarray(labels)
        if labels.shape[0] != data.shape[0]:
            raise MiningError("labels must align with data")
        if data.shape[0] < self.n_neighbors:
            raise MiningError(
                f"need at least n_neighbors={self.n_neighbors} samples"
            )
        self.classes_, self._encoded = np.unique(
            labels, return_inverse=True
        )
        self._data = data
        if data.shape[1] < self.brute_force_dims:
            self._tree = KDTree(data)
        else:
            self._tree = None
        return self

    def predict(self, data) -> np.ndarray:
        """Predicted class labels."""
        if self._data is None:
            raise NotFittedError("KNeighborsClassifier is not fitted")
        data = as_matrix(data)
        if data.shape[1] != self._data.shape[1]:
            raise MiningError("feature count mismatch")
        k = self.n_neighbors
        n_classes = len(self.classes_)  # type: ignore[arg-type]
        votes = np.zeros((data.shape[0], n_classes))
        if self._tree is not None:
            for i, row in enumerate(data):
                distances, indexes = self._tree.query(row, k=k)
                votes[i] = self._vote(distances, indexes, n_classes)
        else:
            block = max(1, 4_000_000 // max(self._data.shape[0], 1))
            for start in range(0, data.shape[0], block):
                chunk = data[start : start + block]
                dist2 = squared_euclidean(chunk, self._data)
                nearest = np.argpartition(dist2, k - 1, axis=1)[:, :k]
                for offset, (row_indexes, row_dist2) in enumerate(
                    zip(nearest, dist2)
                ):
                    votes[start + offset] = self._vote(
                        np.sqrt(row_dist2[row_indexes]),
                        row_indexes,
                        n_classes,
                    )
        picks = np.argmax(votes, axis=1)
        return self.classes_[picks]  # type: ignore[index]

    def _vote(
        self, distances: np.ndarray, indexes: np.ndarray, n_classes: int
    ) -> np.ndarray:
        if self._encoded is None:
            raise NotFittedError("KNeighborsClassifier is not fitted")
        votes = np.zeros(n_classes)
        neighbour_classes = self._encoded[indexes]
        if self.weights == "uniform":
            np.add.at(votes, neighbour_classes, 1.0)
        else:
            exact = distances <= 1e-12
            if exact.any():
                np.add.at(votes, neighbour_classes[exact], 1.0)
            else:
                np.add.at(votes, neighbour_classes, 1.0 / distances)
        return votes

    def score(self, data, labels) -> float:
        """Mean accuracy."""
        labels = np.asarray(labels)
        return float((self.predict(data) == labels).mean())
