"""K-medoids clustering (PAM with the Voronoi-iteration update).

A fourth clustering engine for the end-goal pipelines. Unlike K-means
it (i) supports any of the library's distance metrics — in particular
*cosine distance*, the natural geometry of the VSM patient vectors —
and (ii) places centres on actual patients, so every cluster comes with
a real *exemplar* record the domain expert can read ("this group looks
like patient 4711"), which is valuable for knowledge presentation.

The implementation precomputes the pairwise distance matrix (O(n^2)
memory — appropriate for post-partial-mining cohort sizes), seeds with
a k-means++-style D^2 sampling over the metric, and alternates
assignment with exact per-cluster medoid updates until cost converges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MiningError, NotFittedError
from repro.mining.distance import as_matrix, pairwise_distances


class KMedoids:
    """Partitioning around medoids.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    metric:
        Any metric accepted by
        :func:`repro.mining.distance.pairwise_distances`
        (``euclidean``, ``sqeuclidean``, ``manhattan``, ``cosine``).
    max_iter:
        Cap on Voronoi iterations.
    n_init:
        Restarts; the lowest total cost wins.
    seed:
        Seed for the D^2 seeding.

    Attributes (after ``fit``)
    --------------------------
    medoid_indices_ : row indexes of the chosen exemplars.
    labels_ : per-point cluster index.
    inertia_ : total distance of points to their medoid.
    """

    def __init__(
        self,
        n_clusters: int,
        metric: str = "euclidean",
        max_iter: int = 100,
        n_init: int = 3,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise MiningError("n_clusters must be >= 1")
        if max_iter < 1 or n_init < 1:
            raise MiningError("max_iter and n_init must be >= 1")
        self.n_clusters = n_clusters
        self.metric = metric
        self.max_iter = max_iter
        self.n_init = n_init
        self.seed = seed
        self.medoid_indices_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self._data: Optional[np.ndarray] = None

    def fit(self, data) -> "KMedoids":
        """Cluster ``data``; returns ``self``."""
        data = as_matrix(data)
        n = data.shape[0]
        if n < self.n_clusters:
            raise MiningError(
                f"need at least {self.n_clusters} points, got {n}"
            )
        distances = pairwise_distances(data, metric=self.metric)
        rng = np.random.default_rng(self.seed)

        best: Optional[Tuple[float, np.ndarray, np.ndarray]] = None
        for __ in range(self.n_init):
            medoids = self._seed(distances, rng)
            medoids, labels, cost = self._iterate(distances, medoids)
            if best is None or cost < best[0]:
                best = (cost, medoids, labels)
        if best is None:
            raise RuntimeError("no k-medoids initialisation succeeded")
        self.inertia_, self.medoid_indices_, self.labels_ = best
        self._data = data
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(data).labels_  # type: ignore[return-value]

    def predict(self, data) -> np.ndarray:
        """Assign new points to the nearest fitted medoid."""
        if self._data is None or self.medoid_indices_ is None:
            raise NotFittedError("KMedoids.predict called before fit")
        data = as_matrix(data)
        exemplars = self._data[self.medoid_indices_]
        distances = pairwise_distances(data, exemplars, metric=self.metric)
        return np.argmin(distances, axis=1)

    def medoids(self) -> np.ndarray:
        """The exemplar rows themselves."""
        if self._data is None or self.medoid_indices_ is None:
            raise NotFittedError("KMedoids is not fitted")
        return self._data[self.medoid_indices_]

    # ------------------------------------------------------------------
    def _seed(
        self, distances: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """D^2 sampling over the precomputed metric."""
        n = distances.shape[0]
        chosen = [int(rng.integers(n))]
        closest = distances[chosen[0]].copy()
        while len(chosen) < self.n_clusters:
            weights = closest**2
            weights[chosen] = 0.0
            total = weights.sum()
            if total <= 0:
                # Duplicate points: take any unused index.
                remaining = [i for i in range(n) if i not in set(chosen)]
                pick = int(rng.choice(remaining))
            else:
                pick = int(rng.choice(n, p=weights / total))
            chosen.append(pick)
            np.minimum(closest, distances[pick], out=closest)
        return np.array(chosen)

    def _iterate(
        self, distances: np.ndarray, medoids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        medoids = medoids.copy()
        previous_cost = np.inf
        for __ in range(self.max_iter):
            labels = np.argmin(distances[:, medoids], axis=1)
            cost = float(
                distances[np.arange(len(labels)), medoids[labels]].sum()
            )
            # Exact medoid update per cluster.
            changed = False
            for j in range(len(medoids)):
                members = np.nonzero(labels == j)[0]
                if members.size == 0:
                    continue
                within = distances[np.ix_(members, members)]
                best_member = members[int(within.sum(axis=1).argmin())]
                if best_member != medoids[j]:
                    medoids[j] = best_member
                    changed = True
            if not changed or cost >= previous_cost - 1e-12:
                previous_cost = min(cost, previous_cost)
                break
            previous_cost = cost
        labels = np.argmin(distances[:, medoids], axis=1)
        cost = float(
            distances[np.arange(len(labels)), medoids[labels]].sum()
        )
        return medoids, labels, cost
