"""Determinism rules: seeded randomness (ADA001), no wall-clock (ADA002).

The analysis cache keys runs by content fingerprint + parameters, and
sweep results must be identical across executor backends. Both break
the moment a mining or core code path draws entropy from an unseeded
generator or from the wall clock.
"""

from __future__ import annotations

import ast

from repro.lint.base import Rule, dotted_name, register

#: Legacy ``np.random.*`` module-level functions (process-global RNG).
_LEGACY_NP_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "bytes",
        "normal", "uniform", "standard_normal", "beta", "binomial",
        "poisson", "exponential", "gamma", "laplace", "lognormal",
        "multinomial", "multivariate_normal", "RandomState",
    }
)

#: Engine-scoped paths: the deterministic compute core.
_DETERMINISTIC_PATHS = ("src/repro/mining", "src/repro/core")


@register
class NoUnseededRandomness(Rule):
    """ADA001: mining/core randomness must come from a seeded
    ``np.random.default_rng``.

    Flags ``default_rng()`` with no (or a ``None``) seed, every legacy
    ``np.random.*`` module-level draw (they share mutable global
    state), and any import of the stdlib :mod:`random` module.
    """

    rule_id = "ADA001"
    name = "no-unseeded-randomness"
    description = (
        "mining/core code must draw randomness only from"
        " np.random.default_rng(seed)"
    )
    default_paths = _DETERMINISTIC_PATHS

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        tail = chain.rsplit(".", maxsplit=1)[-1]
        if tail == "default_rng" and not _is_seeded(node):
            self.report(
                node,
                "unseeded default_rng() — pass an explicit seed so"
                " runs are reproducible and cache keys stay stable",
            )
        elif _is_np_random(chain) and tail in _LEGACY_NP_RANDOM:
            self.report(
                node,
                f"legacy np.random.{tail}() uses the process-global"
                " RNG; use a seeded np.random.default_rng(seed)"
                " generator instead",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "random":
                self.report(
                    node,
                    "stdlib random has process-global state; use"
                    " np.random.default_rng(seed)",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "random":
            self.report(
                node,
                "stdlib random has process-global state; use"
                " np.random.default_rng(seed)",
            )


def _is_np_random(chain: str) -> bool:
    return chain.startswith(("np.random.", "numpy.random."))


def _is_seeded(call: ast.Call) -> bool:
    """Does a ``default_rng`` call receive a non-None seed?"""
    candidates = list(call.args) + [
        keyword.value for keyword in call.keywords if keyword.arg == "seed"
    ]
    if not candidates:
        return False
    first = candidates[0]
    return not (isinstance(first, ast.Constant) and first.value is None)


@register
class NoWallClock(Rule):
    """ADA002: no wall-clock reads in deterministic code paths.

    ``time.time``/``datetime.now`` in miner or cache-key code makes
    output depend on *when* the analysis ran; telemetry lives in
    ``repro/obs`` and the executors, which are outside this rule's
    scope (monotonic ``time.perf_counter`` is always fine).
    """

    rule_id = "ADA002"
    name = "no-wall-clock"
    description = (
        "no time.time()/datetime.now() in mining or cache-key paths"
        " (telemetry belongs in repro/obs)"
    )
    default_paths = _DETERMINISTIC_PATHS

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        parts = chain.split(".")
        tail = parts[-1]
        wall_clock = (
            (tail in ("time", "time_ns") and "time" in parts[:-1])
            or (
                tail in ("now", "utcnow")
                and "datetime" in parts[:-1]
            )
            or (
                tail == "today"
                and any(p in ("date", "datetime") for p in parts[:-1])
            )
        )
        if wall_clock:
            self.report(
                node,
                f"wall-clock read {chain}() in a deterministic code"
                " path; results must not depend on when they ran",
            )
        self.generic_visit(node)
