"""Engine contracts the schema rules cross-check against, derived
statically.

ADA007 needs the operator set :mod:`repro.kdb.documentstore` actually
implements; ADA008 needs the field sets of the current
``ada-health/run-manifest`` schema from :mod:`repro.obs.manifest`.
Rather than freezing copies that drift, both are extracted from the
real modules' *source* (located via :func:`importlib.util.find_spec`,
parsed with :mod:`ast` — nothing is executed). Baked-in fallbacks keep
the linter usable if the modules cannot be located.
"""

from __future__ import annotations

import ast
import importlib.util
import os
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import FrozenSet, Optional

_OPERATOR = re.compile(r"\$\w+\Z")

#: Modules whose source defines the store's operator surface: the
#: document store itself plus the query planner (which routes — and
#: therefore names — the indexable operators).
_DOCSTORE_MODULES = (
    "repro.kdb.documentstore",
    "repro.kdb.planner",
)

#: Operator set shipped with documentstore v1, used only as a fallback.
_DOCSTORE_FALLBACK = frozenset(
    {
        "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin",
        "$and", "$or", "$nor", "$not", "$exists", "$regex", "$size",
        "$all", "$elemMatch", "$set", "$unset", "$inc", "$push",
        "$pull", "$addToSet", "$match", "$group", "$sort", "$limit",
        "$skip", "$project", "$sum", "$avg", "$min", "$max", "$count",
    }
)


def _module_tree(module: str) -> Optional[ast.AST]:
    """Parse a module's source without importing it (None if missing)."""
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return None
    if spec is None or not spec.origin or not os.path.isfile(spec.origin):
        return None
    try:
        with open(spec.origin, encoding="utf-8") as handle:
            return ast.parse(handle.read())
    except (OSError, SyntaxError):
        return None


@lru_cache(maxsize=1)
def docstore_operators() -> FrozenSet[str]:
    """Every ``$operator`` the document store implements.

    Extraction rule: any string constant in the store's implementing
    modules (:data:`_DOCSTORE_MODULES` — ``documentstore`` and the
    query ``planner``) that is exactly a ``$word`` token. Comparison
    tables (``_COMPARISONS``), structural-operator branches, update
    operators, aggregation stages and the planner's routing tables all
    surface their operators as such constants, so the set tracks the
    implementation for free.
    """
    found = set()
    for module in _DOCSTORE_MODULES:
        tree = _module_tree(module)
        if tree is None:
            continue
        found.update(
            node.value
            for node in ast.walk(tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _OPERATOR.match(node.value)
        )
    return frozenset(found) if found else _DOCSTORE_FALLBACK


@dataclass(frozen=True)
class ManifestSchema:
    """Field sets of the ``ada-health/run-manifest`` schema."""

    schema_tag: str = "ada-health/run-manifest/v2"
    top_fields: FrozenSet[str] = field(default_factory=frozenset)
    goal_fields: FrozenSet[str] = field(default_factory=frozenset)
    assessed_fields: FrozenSet[str] = field(default_factory=frozenset)
    dataset_fields: FrozenSet[str] = field(default_factory=frozenset)
    cache_fields: FrozenSet[str] = field(default_factory=frozenset)
    executor_fields: FrozenSet[str] = field(default_factory=frozenset)
    resilience_fields: FrozenSet[str] = field(default_factory=frozenset)

    def fields_for_attr(self, attr: str) -> Optional[FrozenSet[str]]:
        """Known sub-document field set for a builder attribute."""
        return {
            "dataset": self.dataset_fields,
            "cache": self.cache_fields,
            "executor": self.executor_fields,
            "resilience": self.resilience_fields,
        }.get(attr)


_MANIFEST_FALLBACK = ManifestSchema(
    top_fields=frozenset(
        {
            "schema", "status", "dataset", "user", "seed", "started_at",
            "finished_at", "wall_s", "goals_assessed", "goals", "cache",
            "executor", "metrics", "n_items", "resilience", "error",
        }
    ),
    goal_fields=frozenset(
        {
            "name", "status", "wall_s", "n_items", "cached",
            "algorithms", "params", "error",
        }
    ),
    assessed_fields=frozenset({"name", "viable", "reason"}),
    dataset_fields=frozenset({"id", "name", "fingerprint"}),
    cache_fields=frozenset({"enabled", "hits", "misses", "stores"}),
    executor_fields=frozenset({"backend", "workers", "task_failures"}),
    resilience_fields=frozenset(
        {
            "retries", "timeouts", "worker_crashes", "fallbacks",
            "faults_injected", "breaker", "degraded_goals",
        }
    ),
)


def _dict_keys(node: ast.AST) -> FrozenSet[str]:
    """String keys of every dict literal under ``node``."""
    keys = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            for key in sub.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
    return frozenset(keys)


@lru_cache(maxsize=1)
def manifest_schema() -> ManifestSchema:
    """The run-manifest schema, read out of ``repro/obs/manifest.py``.

    ``MANIFEST_FIELDS`` and ``MANIFEST_SCHEMA`` give the top level;
    the builder methods' dict literals give each record type:
    ``add_goal`` the goal records, ``assess_goal`` the assessments,
    ``record_cache``/``record_executor`` and the ``__init__`` defaults
    the sub-documents, ``_document`` any extra top-level keys (the
    ``error`` slot lives only there).
    """
    tree = _module_tree("repro.obs.manifest")
    if tree is None:
        return _MANIFEST_FALLBACK

    schema_tag = _MANIFEST_FALLBACK.schema_tag
    top, goal, assessed = set(), set(), set()
    subs = {
        "dataset": set(),
        "cache": set(),
        "executor": set(),
        "resilience": set(),
    }
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "MANIFEST_FIELDS" and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    top.update(
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
                elif target.id == "MANIFEST_SCHEMA" and isinstance(
                    node.value, ast.Constant
                ):
                    schema_tag = str(node.value.value)
        elif (
            isinstance(node, ast.ClassDef)
            and node.name == "RunManifestBuilder"
        ):
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                keys = _dict_keys(item)
                if item.name == "add_goal":
                    goal.update(keys)
                elif item.name == "assess_goal":
                    assessed.update(keys)
                elif item.name == "record_cache":
                    subs["cache"].update(keys)
                elif item.name == "record_executor":
                    subs["executor"].update(keys)
                elif item.name == "record_resilience":
                    subs["resilience"].update(keys)
                elif item.name == "_document":
                    top.update(keys)
                elif item.name == "__init__":
                    for statement in item.body:
                        if not isinstance(statement, ast.Assign):
                            continue
                        for target in statement.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and target.attr in subs
                            ):
                                subs[target.attr].update(
                                    _dict_keys(statement.value)
                                )
    if not top:
        return _MANIFEST_FALLBACK
    top.add("error")  # fail() stores the error string at top level
    return ManifestSchema(
        schema_tag=schema_tag,
        top_fields=frozenset(top),
        goal_fields=goal and frozenset(goal)
        or _MANIFEST_FALLBACK.goal_fields,
        assessed_fields=assessed and frozenset(assessed)
        or _MANIFEST_FALLBACK.assessed_fields,
        dataset_fields=subs["dataset"]
        and frozenset(subs["dataset"])
        or _MANIFEST_FALLBACK.dataset_fields,
        cache_fields=subs["cache"]
        and frozenset(subs["cache"])
        or _MANIFEST_FALLBACK.cache_fields,
        executor_fields=subs["executor"]
        and frozenset(subs["executor"])
        or _MANIFEST_FALLBACK.executor_fields,
        resilience_fields=subs["resilience"]
        and frozenset(subs["resilience"])
        or _MANIFEST_FALLBACK.resilience_fields,
    )


#: Constructors whose result carries a release obligation, mapped to
#: the method set that discharges it. ADA017 matches the constructor by
#: dotted-chain *tail* (``shared_memory.SharedMemory`` and
#: ``SharedMemory`` both hit the ``SharedMemory`` entry; classmethod
#: factories are listed as ``Class.method``). The set means "calling
#: any one of these releases the resource": a ``SharedMemory`` mapping
#: is only released by ``close()`` — ``unlink()`` destroys the segment
#: but leaks the caller's own mapping, which is exactly the bug class
#: the rule exists for.
_RESOURCE_FALLBACK = {
    "SharedMemory": frozenset({"close"}),
    "SharedMatrix.create": frozenset({"close", "unlink"}),
    "SharedMatrix.attach": frozenset({"close"}),
    "ThreadPoolExecutor": frozenset({"shutdown"}),
    "ProcessPoolExecutor": frozenset({"shutdown"}),
    "ShardedDocumentStore": frozenset({"close"}),
    "TemporaryDirectory": frozenset({"cleanup"}),
}


@lru_cache(maxsize=1)
def resource_protocols() -> "dict[str, FrozenSet[str]]":
    """Release protocols for ADA017, keyed by constructor tail.

    The baked table is the contract; the source scan only *extends* it:
    any class in :mod:`repro.data.blocks` or :mod:`repro.cloud.executor`
    defining both ``__enter__`` and a ``close``/``shutdown`` method is
    added with that method as its protocol, so new pooled/mapped
    resources are covered without editing the linter.
    """
    protocols = dict(_RESOURCE_FALLBACK)
    for module in ("repro.data.blocks", "repro.cloud.executor"):
        tree = _module_tree(module)
        if tree is None:
            continue
        for node in getattr(tree, "body", []):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            if "__enter__" not in methods:
                continue
            release = methods & {"close", "shutdown", "cleanup"}
            if release and node.name not in protocols:
                protocols[node.name] = frozenset(release)
    return protocols


# ----------------------------------------------------------------------
# The versioned-schema contract registry (ADA021)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemaContract:
    """One producer/consumer pair of a versioned JSON record.

    The *producer* is the function (or method) whose dict literals
    build the record; the *consumer* is the tuple constant naming the
    fields the reading side understands (a ``validate_*`` companion or
    replay loop enforces it at runtime). ADA021 extracts both sides
    from source and reports producer keys the consumer does not
    declare — the "added a field without bumping the schema" drift
    ADA007/ADA008 only caught for two hand-picked schemas.
    """

    name: str  #: short label, e.g. ``"analysis-cache-entry"``
    schema_tag: str  #: ``"schema"`` stamp value; "" for untagged records
    producer_module: str
    producer_scope: str  #: ``fn`` or ``Class.method`` in that module
    consumer_module: str
    consumer_constant: str  #: ``*_FIELDS`` tuple naming the contract
    fields: FrozenSet[str]  #: resolved consumer field set
    #: Keys the producer may emit beyond the per-record contract —
    #: sub-document keys of nested literals inside the same scope.
    nested: FrozenSet[str] = frozenset()


def _tuple_constant(module: str, name: str) -> FrozenSet[str]:
    """String elements of ``NAME = (...)`` in a module (may be empty)."""
    tree = _module_tree(module)
    if tree is None:
        return frozenset()
    for node in getattr(tree, "body", []):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == name
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                return frozenset(
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
    return frozenset()


def _fields_or(module: str, name: str, fallback) -> FrozenSet[str]:
    extracted = _tuple_constant(module, name)
    return extracted if extracted else frozenset(fallback)


#: SARIF 2.1.0 vocabulary the fixed mapping in ``sarif_document`` may
#: emit (top level plus the nested objects it builds). SARIF is an
#: external standard, so the consumer side is this pin, not a
#: ``validate_*`` in the tree.
_SARIF_FIELDS = frozenset(
    {
        "$schema", "version", "runs", "tool", "driver", "results",
        "name", "rules", "id", "shortDescription", "text",
        "defaultConfiguration", "level", "ruleId", "message",
        "locations", "physicalLocation", "artifactLocation", "uri",
        "region", "startLine", "startColumn", "partialFingerprints",
    }
)


@lru_cache(maxsize=1)
def schema_contracts() -> "tuple[SchemaContract, ...]":
    """Every versioned JSON producer/consumer pair in the tree.

    Consumer field sets are extracted from the named ``*_FIELDS``
    constants in the consumer modules (baked fallbacks keep the rule
    usable outside a checkout); producer key sets are read from the
    producing scope's dict literals at lint time, so the check always
    judges the source being linted.
    """
    findings_fields = _fields_or(
        "repro.lint.findings",
        "FINDINGS_FIELDS",
        {"schema", "files_checked", "counts", "findings",
         "rule_stats"},
    )
    cert_fields = _fields_or(
        "repro.core.contracts",
        "CERTIFICATE_FIELDS",
        {"schema", "ruleset", "functions", "phases", "artifact_hash"},
    )
    cert_fn_fields = _fields_or(
        "repro.core.contracts",
        "FUNCTION_CERT_FIELDS",
        {"code_hash", "complete", "determinism", "effect_free",
         "effects", "exceptions", "holes", "line", "picklable"},
    )
    cache_fields = _fields_or(
        "repro.core.cache",
        "CACHE_ENTRY_FIELDS",
        {"key", "dataset", "algorithm", "params", "payload", "crc",
         "cert"},
    )
    log_fields = _fields_or(
        "repro.kdb.shards",
        "LOG_RECORD_FIELDS",
        {"op", "doc", "id"},
    )
    manifest = manifest_schema()
    return (
        SchemaContract(
            name="lint-findings",
            schema_tag="adalint/findings/v1",
            producer_module="repro.lint.findings",
            producer_scope="report_document",
            consumer_module="repro.lint.findings",
            consumer_constant="FINDINGS_FIELDS",
            fields=findings_fields,
        ),
        SchemaContract(
            name="lint-sarif",
            schema_tag="",  # stamps "$schema", not "schema"
            producer_module="repro.lint.findings",
            producer_scope="sarif_document",
            consumer_module="repro.lint.contracts",
            consumer_constant="_SARIF_FIELDS",
            fields=_SARIF_FIELDS,
        ),
        SchemaContract(
            name="purity-certificates",
            schema_tag="adalint/certificates/v1",
            producer_module="repro.lint.certs",
            producer_scope="build_certificates",
            consumer_module="repro.core.contracts",
            consumer_constant="CERTIFICATE_FIELDS",
            fields=cert_fields,
            # per-phase records built inside the same scope
            nested=frozenset(
                {"entry", "exists", "fingerprint", "members"}
            ),
        ),
        SchemaContract(
            name="function-certificate",
            schema_tag="",
            producer_module="repro.lint.certs",
            producer_scope="function_certificate",
            consumer_module="repro.core.contracts",
            consumer_constant="FUNCTION_CERT_FIELDS",
            fields=cert_fn_fields,
        ),
        SchemaContract(
            name="analysis-cache-entry",
            schema_tag="",
            producer_module="repro.core.cache",
            producer_scope="AnalysisCache.put",
            consumer_module="repro.core.cache",
            consumer_constant="CACHE_ENTRY_FIELDS",
            fields=cache_fields,
        ),
        SchemaContract(
            name="shard-log-record",
            schema_tag="",
            producer_module="repro.kdb.shards",
            producer_scope="ShardedDocumentStore._on_mutation",
            consumer_module="repro.kdb.shards",
            consumer_constant="LOG_RECORD_FIELDS",
            fields=log_fields,
        ),
        SchemaContract(
            name="run-manifest",
            schema_tag=manifest.schema_tag,
            producer_module="repro.obs.manifest",
            producer_scope="RunManifestBuilder._document",
            consumer_module="repro.obs.manifest",
            consumer_constant="MANIFEST_FIELDS",
            fields=manifest.top_fields,
            # resilience["degraded_goals"] is a sub-document write
            nested=frozenset({"degraded_goals"}),
        ),
    )


def contract_for_tag(tag: str) -> Optional[SchemaContract]:
    """The registered contract stamping ``tag``, if any."""
    for contract in schema_contracts():
        if contract.schema_tag and contract.schema_tag == tag:
            return contract
    return None
