"""The lint driver: file discovery, suppression pragmas, rule dispatch.

Suppression syntax
------------------
``# adalint: disable=ADA001,ADA005`` on a code line suppresses those
rules for findings reported *on that line*;
``# adalint: disable-file=ADA007`` anywhere in a file suppresses the
rule for the whole file. ``all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Rule, RuleContext, all_rules
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding, report_document

_PRAGMA = re.compile(
    r"#\s*adalint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: Rule id reported for files that fail to parse.
PARSE_ERROR_ID = "ADA000"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def format_human(self) -> str:
        lines = [
            finding.format()
            for finding in sorted(self.findings, key=Finding.sort_key)
        ]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{self.files_checked} files checked,"
            f" {len(self.findings)} {noun}"
        )
        return "\n".join(lines)

    def to_document(self) -> Dict:
        return report_document(self.findings, self.files_checked)


@dataclass
class _Suppressions:
    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, finding: Finding) -> bool:
        for scope in (
            self.file_level,
            self.by_line.get(finding.line, ()),
        ):
            if "all" in scope or finding.rule_id in scope:
                return True
        return False


def scan_comments(source: str) -> Dict[int, str]:
    """``lineno -> comment text`` for every comment token."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # adalint findings will come from ast.parse instead
    return comments


def parse_suppressions(comments: Dict[int, str]) -> _Suppressions:
    suppressions = _Suppressions()
    for lineno, comment in comments.items():
        for match in _PRAGMA.finditer(comment):
            ids = {
                rule_id.strip()
                for rule_id in match.group(2).split(",")
                if rule_id.strip()
            }
            if match.group(1) == "disable-file":
                suppressions.file_level |= ids
            else:
                suppressions.by_line.setdefault(lineno, set()).update(
                    ids
                )
    return suppressions


# ----------------------------------------------------------------------
# Project layout
# ----------------------------------------------------------------------
def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding a pyproject.toml (else ``start``)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


# ----------------------------------------------------------------------
# Lint entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<snippet>",
    relpath: Optional[str] = None,
    rules: Optional[Sequence[type]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one source string (the unit-test surface).

    With explicit ``rules``, exactly those run (path scoping is
    bypassed — the snippet is judged as if in scope). Otherwise every
    registered rule runs, scoped by ``config`` against ``relpath``.
    """
    config = config or LintConfig()
    relpath = relpath if relpath is not None else path
    if rules is None:
        rule_classes = [
            rule_class
            for rule_class in all_rules()
            if config.rule_applies(rule_class, relpath)
        ]
    else:
        rule_classes = [
            rule_class
            for rule_class in rules
            if config.rule_enabled(rule_class.rule_id)
        ]
    return _lint_parsed(source, path, relpath, rule_classes)


def _lint_parsed(
    source: str,
    path: str,
    relpath: str,
    rule_classes: Sequence[type],
) -> List[Finding]:
    comments = scan_comments(source)
    suppressions = parse_suppressions(comments)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                rule_id=PARSE_ERROR_ID,
                message=f"syntax error: {error.msg}",
            )
        ]
    context = RuleContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        comments=comments,
    )
    findings: List[Finding] = []
    for rule_class in rule_classes:
        rule: Rule = rule_class()
        findings.extend(rule.run(context))
    return [
        finding
        for finding in findings
        if not suppressions.suppressed(finding)
    ]


def lint_paths(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories; the CLI and tier-1 gate call this.

    ``config`` defaults to the ``[tool.adalint]`` table of the nearest
    pyproject.toml above the first path. ``select``/``ignore`` narrow
    the rule set on top of the config.
    """
    path_objects = [Path(p) for p in paths]
    if root is None:
        root = find_project_root(
            path_objects[0] if path_objects else Path.cwd()
        )
    if config is None:
        config = load_config(Path(root) / "pyproject.toml")
    if select:
        config.select = list(select)
    if ignore:
        config.ignore = list(config.ignore) + list(ignore)

    report = LintReport()
    rule_classes = all_rules()
    for file_path in iter_python_files(path_objects):
        relpath = relative_posix(file_path, Path(root))
        if config.file_excluded(relpath):
            continue
        applicable: List[type] = [
            rule_class
            for rule_class in rule_classes
            if config.rule_applies(rule_class, relpath)
        ]
        report.files_checked += 1
        if not applicable:
            continue
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            report.findings.append(
                Finding(
                    path=str(file_path),
                    line=1,
                    col=1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"unreadable file: {error}",
                )
            )
            continue
        report.findings.extend(
            _lint_parsed(source, str(file_path), relpath, applicable)
        )
    report.findings.sort(key=Finding.sort_key)
    return report


def default_src_paths(root: Optional[Path] = None) -> Tuple[Path, ...]:
    """The conventional lint target: the project's ``src`` tree."""
    root = root or find_project_root(Path.cwd())
    src = Path(root) / "src"
    return (src,) if src.is_dir() else (Path(root),)
