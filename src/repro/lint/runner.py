"""The lint driver: discovery, project graph, caching, rule dispatch.

Suppression syntax
------------------
``# adalint: disable=ADA001,ADA005`` on a code line suppresses those
rules for findings reported *on that line*;
``# adalint: disable-file=ADA007`` anywhere in a file suppresses the
rule for the whole file. ``all`` suppresses every rule.

Pragmas are accounted for: one that names an unknown rule id, or that
suppressed no finding in the run (for a rule that actually ran on the
file), is itself reported as an ADA012 warning. Accounting is
single-pass — a pragma counts as used only against findings from the
same run.

Incremental runs
----------------
:func:`lint_paths` can reuse a :class:`~repro.lint.cache.LintCache`:
module summaries are keyed on content hashes, per-file findings on
content hash + ruleset version + the file's import-closure fingerprint
+ the project-wide concurrency fingerprint (the lock model the
ADA015–ADA018 rules consume is global, not closure-local) + config
fingerprint. An unchanged tree re-lints with zero parses;
editing one file re-lints it and its import-graph dependents; bumping
:data:`RULESET_VERSION` or editing ``[tool.adalint]`` invalidates
everything. With ``jobs > 1`` files are linted in parallel through the
``repro.cloud`` executor backends; findings are sorted at the end, so
serial/parallel and cold/warm runs report identically.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.base import Rule, RuleContext, all_rules, get_rule
from repro.lint.certs import CERTS_RELPATH, load_artifact
from repro.lint.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    content_hash,
    key_of,
)
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding, report_document
from repro.lint.graph import (
    GRAPH_VERSION,
    ModuleSummary,
    ProjectGraph,
    extract_summary,
    module_name_for,
)

_PRAGMA = re.compile(
    r"#\s*adalint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: Rule id reported for files that fail to parse.
PARSE_ERROR_ID = "ADA000"

#: Version of the rule set; part of every findings-cache key, so a
#: rule change (signalled by bumping this) invalidates cached results.
#: adalint/6 adds the storage-funnel rule ADA023.
RULESET_VERSION = "adalint/6"

#: Id under which pragma/config hygiene findings are reported.
_SUPPRESSION_RULE_ID = "ADA012"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files whose source was parsed during this run (summary
    #: extraction or linting). Zero on a warm incremental run.
    files_parsed: int = 0
    #: Per-file finding lists served from the incremental cache.
    cache_hits: int = 0
    #: Per-rule profiling over the files actually linted this run
    #: (cache-served files cost no rule time and are not attributed):
    #: ``rule id -> {"wall_s": float, "findings": int}``.
    rule_stats: Dict[str, Dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format_human(self) -> str:
        lines = [
            finding.format()
            for finding in sorted(self.findings, key=Finding.sort_key)
        ]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{self.files_checked} files checked,"
            f" {len(self.findings)} {noun}"
        )
        return "\n".join(lines)

    def format_stats(self) -> str:
        lines = [
            f"{self.files_checked} files checked,"
            f" {self.files_parsed} parsed,"
            f" {self.cache_hits} served from cache"
        ]
        by_cost = sorted(
            self.rule_stats.items(),
            key=lambda item: (-item[1]["wall_s"], item[0]),
        )
        for rule_id, stats in by_cost:
            noun = (
                "finding" if stats["findings"] == 1 else "findings"
            )
            lines.append(
                f"  {rule_id}: {stats['wall_s'] * 1000:.1f} ms,"
                f" {stats['findings']} {noun}"
            )
        return "\n".join(lines)

    def to_document(self) -> Dict:
        return report_document(
            self.findings, self.files_checked, self.rule_stats
        )


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
@dataclass
class _PragmaEntry:
    """One rule id named by one pragma occurrence."""

    pragma_line: int  #: line the pragma comment sits on
    scope_line: Optional[int]  #: line it guards; None = whole file
    rule_id: str
    used: bool = False


@dataclass
class _Suppressions:
    entries: List[_PragmaEntry] = field(default_factory=list)

    def match(self, finding: Finding) -> bool:
        """True if any pragma suppresses ``finding`` (marks it used)."""
        hit = False
        for entry in self.entries:
            if entry.rule_id not in ("all", finding.rule_id):
                continue
            if entry.scope_line is None or (
                entry.scope_line == finding.line
            ):
                entry.used = True
                hit = True
        return hit


def scan_comments(source: str) -> Dict[int, str]:
    """``lineno -> comment text`` for every comment token."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # adalint findings will come from ast.parse instead
    return comments


def parse_suppressions(comments: Dict[int, str]) -> _Suppressions:
    suppressions = _Suppressions()
    for lineno in sorted(comments):
        for match in _PRAGMA.finditer(comments[lineno]):
            scope = (
                None if match.group(1) == "disable-file" else lineno
            )
            for rule_id in match.group(2).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    suppressions.entries.append(
                        _PragmaEntry(
                            pragma_line=lineno,
                            scope_line=scope,
                            rule_id=rule_id,
                        )
                    )
    return suppressions


def _known_rule_ids() -> Set[str]:
    return {rule_class.rule_id for rule_class in all_rules()} | {
        PARSE_ERROR_ID
    }


def _pragma_findings(
    suppressions: _Suppressions,
    ran_ids: Set[str],
    path: str,
) -> List[Finding]:
    """ADA012 warnings for unknown / unused pragma ids.

    Unused is only decided for rules that actually ran on the file
    (plus ``all`` and the parse sentinel): a pragma for a rule the
    config scopes elsewhere is dormant, not dead.
    """
    known = _known_rule_ids()
    findings: List[Finding] = []
    for entry in suppressions.entries:
        if entry.rule_id != "all" and entry.rule_id not in known:
            findings.append(
                Finding(
                    path=path,
                    line=entry.pragma_line,
                    col=1,
                    rule_id=_SUPPRESSION_RULE_ID,
                    message=(
                        f"unknown rule id {entry.rule_id!r} in"
                        " suppression pragma (known ids:"
                        " ADA001..ADA023, ADA000, all)"
                    ),
                    severity="warning",
                )
            )
            continue
        if entry.used:
            continue
        if entry.rule_id != "all" and entry.rule_id not in ran_ids:
            continue  # dormant, not unused: the rule never ran here
        scope = (
            "this file"
            if entry.scope_line is None
            else "this line"
        )
        findings.append(
            Finding(
                path=path,
                line=entry.pragma_line,
                col=1,
                rule_id=_SUPPRESSION_RULE_ID,
                message=(
                    f"unused suppression: {entry.rule_id} matched no"
                    f" finding on {scope}; remove the pragma"
                ),
                severity="warning",
            )
        )
    return findings


def _config_id_findings(
    config: LintConfig, config_path: str
) -> List[Finding]:
    """ADA012 warnings for unknown rule ids in ``[tool.adalint]``."""
    known = _known_rule_ids()
    findings: List[Finding] = []
    slots = [
        ("select", config.select),
        ("ignore", config.ignore),
        ("paths", sorted(config.paths)),
    ]
    for slot, ids in slots:
        for rule_id in ids:
            if rule_id in known:
                continue
            findings.append(
                Finding(
                    path=config_path,
                    line=1,
                    col=1,
                    rule_id=_SUPPRESSION_RULE_ID,
                    message=(
                        f"unknown rule id {rule_id!r} in"
                        f" [tool.adalint] {slot}; it selects nothing"
                    ),
                    severity="warning",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Project layout
# ----------------------------------------------------------------------
def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding a pyproject.toml (else ``start``)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def default_src_paths(root: Optional[Path] = None) -> Tuple[Path, ...]:
    """The conventional lint targets: src, benchmarks and examples."""
    root = root or find_project_root(Path.cwd())
    targets = tuple(
        Path(root) / name
        for name in ("src", "benchmarks", "examples")
        if (Path(root) / name).is_dir()
    )
    return targets if targets else (Path(root),)


# ----------------------------------------------------------------------
# Single-file linting
# ----------------------------------------------------------------------
def _merge_rule_stats(
    into: Dict[str, Dict], stats: Dict[str, Dict]
) -> None:
    """Accumulate per-rule wall time and finding counts."""
    for rule_id, stat in stats.items():
        slot = into.setdefault(
            rule_id, {"wall_s": 0.0, "findings": 0}
        )
        slot["wall_s"] += stat["wall_s"]
        slot["findings"] += stat["findings"]


def _lint_file(
    source: str,
    path: str,
    relpath: str,
    rule_classes: Sequence[type],
    project: Optional[ProjectGraph] = None,
    module: str = "",
    emit_unused: bool = False,
    tree: Optional[ast.AST] = None,
    stats: Optional[Dict[str, Dict]] = None,
) -> List[Finding]:
    """Lint one parsed (or parseable) file; returns kept findings.

    With ``stats``, each rule's wall time and raw finding count are
    accumulated into it (profiling; monotonic clock, never persisted
    into artifacts).
    """
    comments = scan_comments(source)
    suppressions = parse_suppressions(comments)
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    rule_id=PARSE_ERROR_ID,
                    message=f"syntax error: {error.msg}",
                )
            ]
    context = RuleContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        comments=comments,
        project=project,
        module=module or module_name_for(relpath),
    )
    raw: List[Finding] = []
    for rule_class in rule_classes:
        rule: Rule = rule_class()
        started = time.perf_counter()
        found = rule.run(context)
        if stats is not None:
            _merge_rule_stats(
                stats,
                {
                    rule_class.rule_id: {
                        "wall_s": time.perf_counter() - started,
                        "findings": len(found),
                    }
                },
            )
        raw.extend(found)
    kept = [
        finding for finding in raw if not suppressions.match(finding)
    ]
    if emit_unused:
        ran_ids = {
            rule_class.rule_id for rule_class in rule_classes
        } | {PARSE_ERROR_ID}
        hygiene = _pragma_findings(suppressions, ran_ids, path)
        kept.extend(
            finding
            for finding in hygiene
            if not suppressions.match(finding)
        )
    return kept


def lint_source(
    source: str,
    path: str = "<snippet>",
    relpath: Optional[str] = None,
    rules: Optional[Sequence[type]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one source string (the unit-test surface).

    With explicit ``rules``, exactly those run (path scoping is
    bypassed — the snippet is judged as if in scope). Otherwise every
    registered rule runs, scoped by ``config`` against ``relpath``.
    Inter-procedural rules see a single-file project graph.
    """
    config = config or LintConfig()
    relpath = relpath if relpath is not None else path
    if rules is None:
        rule_classes = [
            rule_class
            for rule_class in all_rules()
            if config.rule_applies(rule_class, relpath)
        ]
    else:
        rule_classes = [
            rule_class
            for rule_class in rules
            if config.rule_enabled(rule_class.rule_id)
        ]
    emit_unused = any(
        rule_class.rule_id == _SUPPRESSION_RULE_ID
        for rule_class in rule_classes
    )
    return _lint_file(
        source,
        path,
        relpath,
        rule_classes,
        emit_unused=emit_unused,
    )


def _lint_batch_task(
    batch: Sequence[Tuple[str, str, str, Tuple[str, ...], bool]],
    summary_docs: Sequence[Dict],
) -> Tuple[List[Tuple[str, List[Finding]]], Dict[str, Dict]]:
    """Worker task: lint a batch of files against a shared graph.

    Module-level and fed plain data (sources, rule ids, summary
    documents) so it pickles cleanly onto any executor backend —
    including process pools under spawn. Returns the per-file finding
    lists plus this batch's per-rule profiling stats.
    """
    graph = ProjectGraph(
        ModuleSummary.from_dict(doc) for doc in summary_docs
    )
    results: List[Tuple[str, List[Finding]]] = []
    stats: Dict[str, Dict] = {}
    for source, path, relpath, rule_ids, emit_unused in batch:
        rule_classes = [get_rule(rule_id) for rule_id in rule_ids]
        results.append(
            (
                relpath,
                _lint_file(
                    source,
                    path,
                    relpath,
                    rule_classes,
                    project=graph,
                    module=module_name_for(relpath),
                    emit_unused=emit_unused,
                    stats=stats,
                ),
            )
        )
    return results, stats


# ----------------------------------------------------------------------
# Project linting
# ----------------------------------------------------------------------
def _resolve_cache(
    cache: Union[None, bool, str, Path, LintCache], root: Path
) -> Optional[LintCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return LintCache(Path(root) / DEFAULT_CACHE_DIR)
    if isinstance(cache, LintCache):
        return cache
    return LintCache(Path(cache))


def _concurrency_fingerprint(
    summaries: Sequence[ModuleSummary],
) -> str:
    """Fingerprint of the project's lock model.

    The concurrency rules are *global*: a lock-order cycle can be
    reported in a module that never imports its counterpart, so the
    import-closure fingerprint that serves the dataflow rules is not
    enough to invalidate their cached findings. This key digests every
    module's lock-relevant structure — acquisition refs and nesting,
    call refs with held locks, blocking ops, attribute writes, class
    lock traits — *excluding line numbers*, so edits that merely shift
    lines elsewhere keep the cache warm (the evidence lines a stale
    finding cites may then lag by a line until the citing file itself
    changes; the finding's own location cannot, since the reporting
    file's content hash is part of the key).
    """
    parts: List[str] = []
    for summary in sorted(summaries, key=lambda s: s.module):
        for qualname in sorted(summary.functions):
            info = summary.functions[qualname]
            shape = (
                summary.module,
                qualname,
                info.class_name or "",
                info.returns,
                sorted(
                    f"{a.ref}<{','.join(a.under)}"
                    for a in info.acquires
                ),
                sorted(
                    f"{site.ref!r}^{','.join(site.held_locks)}"
                    for site in info.calls
                ),
                sorted(
                    f"{op.op}^{','.join(op.held)}"
                    for op in info.blocking
                ),
                sorted(
                    f"{w.attr}^{','.join(w.held)}"
                    for w in info.attr_writes
                ),
            )
            parts.append(repr(shape))
        for class_name in sorted(summary.classes):
            class_info = summary.classes[class_name]
            parts.append(
                repr(
                    (
                        summary.module,
                        class_name,
                        sorted(class_info.lock_attrs),
                        class_info.spawns_threads,
                        list(class_info.bases),
                    )
                )
            )
    return key_of(*parts)


def _config_fingerprint(config: LintConfig) -> str:
    return key_of(
        repr(sorted(config.select)),
        repr(sorted(config.ignore)),
        repr(sorted(config.exclude)),
        repr(
            sorted(
                (rule_id, tuple(patterns))
                for rule_id, patterns in config.paths.items()
            )
        ),
    )


def _partition_round_robin(items: List, n: int) -> List[List]:
    buckets: List[List] = [[] for _ in range(max(1, n))]
    for index, item in enumerate(items):
        buckets[index % len(buckets)].append(item)
    return [bucket for bucket in buckets if bucket]


def _make_lint_executor(backend: str, jobs: int):
    from repro.cloud.executor import make_executor

    if backend == "threads":
        return make_executor("threads", max_workers=jobs)
    if backend == "process":
        return make_executor("process", workers=jobs)
    return make_executor(backend)


def lint_paths(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    jobs: int = 1,
    backend: str = "threads",
    cache: Union[None, bool, str, Path, LintCache] = None,
) -> LintReport:
    """Lint files/directories; the CLI and tier-1 gate call this.

    ``config`` defaults to the ``[tool.adalint]`` table of the nearest
    pyproject.toml above the first path. ``select``/``ignore`` narrow
    the rule set on top of the config. ``jobs > 1`` fans per-file
    linting out over a ``repro.cloud`` executor backend; ``cache``
    (True, a path, or a :class:`LintCache`) enables incremental reuse.
    Findings are sorted, so every mode reports identically.
    """
    path_objects = [Path(p) for p in paths]
    if root is None:
        root = find_project_root(
            path_objects[0] if path_objects else Path.cwd()
        )
    root = Path(root)
    pyproject = root / "pyproject.toml"
    if config is None:
        config = load_config(pyproject)
    if select:
        config.select = list(select)
    if ignore:
        config.ignore = list(config.ignore) + list(ignore)

    report = LintReport()
    config_path = (
        str(pyproject) if pyproject.is_file() else "<config>"
    )
    report.findings.extend(_config_id_findings(config, config_path))

    store = _resolve_cache(cache, root)
    rule_classes = all_rules()
    ada012 = get_rule(_SUPPRESSION_RULE_ID)

    # -- discovery -----------------------------------------------------
    lint_files: List[Tuple[Path, str]] = []  # (path, relpath)
    seen: Set[str] = set()
    for file_path in iter_python_files(path_objects):
        relpath = relative_posix(file_path, root)
        if relpath in seen:
            continue
        seen.add(relpath)
        if config.file_excluded(relpath):
            continue
        lint_files.append((file_path, relpath))

    # The graph covers the linted files plus the project's src tree,
    # so cross-module rules resolve engine internals even when only a
    # subset (one file, benchmarks/) is being linted.
    graph_files: Dict[str, Path] = {
        relpath: file_path for file_path, relpath in lint_files
    }
    src_tree = root / "src"
    if src_tree.is_dir():
        for file_path in iter_python_files([src_tree]):
            relpath = relative_posix(file_path, root)
            graph_files.setdefault(relpath, file_path)

    # -- sources + hashes ----------------------------------------------
    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    unreadable: Set[str] = set()
    for relpath, file_path in graph_files.items():
        try:
            sources[relpath] = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            unreadable.add(relpath)
            if any(rel == relpath for _, rel in lint_files):
                report.findings.append(
                    Finding(
                        path=str(file_path),
                        line=1,
                        col=1,
                        rule_id=PARSE_ERROR_ID,
                        message=f"unreadable file: {error}",
                    )
                )
            continue
        hashes[relpath] = content_hash(sources[relpath])

    # -- module summaries (cached) -------------------------------------
    parsed: Set[str] = set()
    trees: Dict[str, ast.AST] = {}
    summaries: List[ModuleSummary] = []
    for relpath in sorted(sources):
        summary_key = key_of(
            GRAPH_VERSION, relpath, hashes[relpath]
        )
        document = (
            store.get_summary(summary_key) if store else None
        )
        if document is not None:
            summaries.append(ModuleSummary.from_dict(document))
            continue
        parsed.add(relpath)
        try:
            tree = ast.parse(sources[relpath])
        except SyntaxError:
            summary = ModuleSummary(
                module=module_name_for(relpath),
                relpath=relpath,
                parse_failed=True,
            )
        else:
            trees[relpath] = tree
            summary = extract_summary(
                tree, relpath, module_name_for(relpath)
            )
        summaries.append(summary)
        if store:
            store.put_summary(summary_key, summary.to_dict())
    graph = ProjectGraph(summaries)
    module_hashes = {
        summary.module: hashes.get(summary.relpath, "")
        for summary in summaries
    }

    def closure_fingerprint(module: str) -> str:
        closure = sorted(graph.import_closure(module))
        return key_of(
            *(
                f"{name}={module_hashes.get(name, '')}"
                for name in closure
            )
        )

    # -- per-file findings (cached) ------------------------------------
    config_fp = _config_fingerprint(config)
    concurrency_fp = _concurrency_fingerprint(summaries)
    # ADA022 judges files against the committed certificate artifact,
    # so its content is part of every finding key: re-emitting certs
    # invalidates cached findings exactly like a code edit would.
    certs_artifact = load_artifact(root / CERTS_RELPATH)
    certs_fp = (
        certs_artifact.get("artifact_hash", "")
        if certs_artifact
        else ""
    )
    results: Dict[str, List[Finding]] = {}
    pending: List[Tuple[str, str, str, Tuple[str, ...], bool]] = []
    finding_keys: Dict[str, str] = {}
    for file_path, relpath in lint_files:
        if relpath in unreadable:
            continue
        report.files_checked += 1
        applicable = tuple(
            rule_class.rule_id
            for rule_class in rule_classes
            if config.rule_applies(rule_class, relpath)
        )
        emit_unused = config.rule_applies(ada012, relpath)
        if not applicable and not emit_unused:
            continue
        module = module_name_for(relpath)
        finding_key = key_of(
            RULESET_VERSION,
            relpath,
            str(file_path),
            hashes[relpath],
            closure_fingerprint(module),
            concurrency_fp,
            config_fp,
            certs_fp,
            ",".join(applicable),
            "unused" if emit_unused else "",
        )
        finding_keys[relpath] = finding_key
        cached = store.get_findings(finding_key) if store else None
        if cached is not None:
            report.cache_hits += 1
            results[relpath] = cached
            continue
        pending.append(
            (
                sources[relpath],
                str(file_path),
                relpath,
                applicable,
                emit_unused,
            )
        )

    # -- lint what the cache could not serve ---------------------------
    if pending:
        parsed.update(entry[2] for entry in pending)
        if jobs > 1 and len(pending) > 1:
            summary_docs = [
                summary.to_dict() for summary in summaries
            ]
            batches = _partition_round_robin(
                pending, min(jobs, len(pending))
            )
            executor = _make_lint_executor(backend, jobs)
            outcome = executor.run(
                [
                    _batch_spec(batch, summary_docs)
                    for batch in batches
                ]
            )
            for value in outcome.results:
                if not isinstance(value, tuple):  # TaskFailure
                    raise value.error
                batch_results, batch_stats = value
                for relpath, findings in batch_results:
                    results[relpath] = findings
                _merge_rule_stats(report.rule_stats, batch_stats)
        else:
            for source, path, relpath, rule_ids, emit_unused in (
                pending
            ):
                results[relpath] = _lint_file(
                    source,
                    path,
                    relpath,
                    [get_rule(rule_id) for rule_id in rule_ids],
                    project=graph,
                    module=module_name_for(relpath),
                    emit_unused=emit_unused,
                    tree=trees.get(relpath),
                    stats=report.rule_stats,
                )
        if store:
            fresh = {entry[2] for entry in pending}
            for relpath in fresh:
                store.put_findings(
                    finding_keys[relpath], results.get(relpath, [])
                )

    for relpath in sorted(results):
        report.findings.extend(results[relpath])
    report.files_parsed = len(parsed)
    report.findings.sort(key=Finding.sort_key)
    return report


def _batch_spec(batch, summary_docs):
    """A picklable :class:`TaskSpec` for one lint batch."""
    from repro.cloud.executor import TaskSpec

    return TaskSpec(_lint_batch_task, (batch, summary_docs))
