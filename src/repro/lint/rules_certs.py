"""Certificate and contract rules: ADA019–ADA022.

The certificate layer (:mod:`repro.lint.certs`) makes adalint's
inferred invariants consumable at runtime; these rules keep that
bridge sound. ADA019 demands *complete* certificates (no
higher-order holes) for the code the engine schedules — phase entry
points and anything submitted to an executor. ADA020 is an
inter-procedural determinism-taint check: wall-clock, unseeded-RNG
and environment reads must not flow into persisted artifacts (K-DB
documents, manifests, cache entries) — the manifest's ``started_at``
path is the one sanctioned sink. ADA021 generalises ADA007/ADA008
into a registry of *every* versioned JSON producer/consumer pair
(:func:`repro.lint.contracts.schema_contracts`). ADA022 reports code
whose normalised content hash drifted from the committed certificate
artifact, so ``contracts/certificates.json`` can never silently lag
the source it certifies.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.lint import certs
from repro.lint.base import Rule, RuleContext, dotted_name, register
from repro.lint.contracts import contract_for_tag, schema_contracts
from repro.lint.graph import extract_summary
from repro.lint.rules_dataflow import _graph_and_module, _Line
from repro.lint.rules_parallelism import (
    _is_process_pool_call,
    _task_argument,
)

#: Effect kinds ADA020 treats as determinism taints.
_TAINT_KINDS = frozenset(certs.DETERMINISM_TAINTS)

#: Modules whose taints are sanctioned: the run manifest's
#: ``started_at``/``finished_at``/``wall_s`` fields are *supposed* to
#: record wall time — that path is the one blessed clock-to-artifact
#: flow.
_SANCTIONED_TAINT_MODULES = frozenset({"repro.obs.manifest"})

#: Resolved callees that persist artifacts (K-DB documents, run
#: manifests, analysis-cache entries).
_SINK_QUALIDS = frozenset(
    {
        "repro.kdb.documentstore:Collection.insert_one",
        "repro.kdb.documentstore:Collection.insert_many",
        "repro.kdb.kdb:KnowledgeBase.record_run",
        "repro.kdb.kdb:KnowledgeBase.store_items",
        "repro.core.cache:AnalysisCache.put",
        "repro.core.cache:AnalysisCache.memoize",
    }
)

#: Method tails that mark a persistence sink even when the receiver
#: cannot be resolved (duck-typed stores, fixtures).
_SINK_TAILS = frozenset(
    {"insert_one", "insert_many", "record_run", "store_items"}
)


# ----------------------------------------------------------------------
# ADA019 — scheduled code must carry a complete certificate
# ----------------------------------------------------------------------
@register
class OperatorContract(Rule):
    """ADA019: phase entry points and executor-submitted callables
    must be fully certifiable.

    A certificate is *complete* when the transitive call closure has
    no holes — call sites that invoke a bare parameter, the one shape
    whose callee (and therefore effects, determinism and exceptions)
    static analysis cannot see. The engine's scheduler trusts
    certificates to decide caching and fan-out; code it schedules
    must either be hole-free or carry a justified suppression pragma
    explaining why the dynamic callee is safe.
    """

    rule_id = "ADA019"
    name = "operator-contract"
    severity = "error"
    description = (
        "engine phase entry points and executor-submitted callables"
        " must have a complete (hole-free) purity certificate or a"
        " justified pragma"
    )

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        self.graph, self.module = _graph_and_module(context)
        self._pools: Set[str] = set()
        self._check_phase_entries()
        self.visit(context.tree)
        return self.findings

    def _check_phase_entries(self) -> None:
        for phase, entry in certs.PHASE_ENTRY_POINTS.items():
            module, _, qualname = entry.partition(":")
            if module != self.module:
                continue
            info = self.graph.function(entry)
            if info is None:
                self.report(
                    _Line(1),
                    f"phase entry point {entry!r} ({phase}) not"
                    " found in this module; update"
                    " repro.lint.certs.PHASE_ENTRY_POINTS",
                )
                continue
            holes = certs.closure_holes(self.graph, entry)
            if holes:
                self.report(
                    _Line(info.line),
                    f"phase entry point {qualname!r} ({phase}) has an"
                    " incomplete certificate:"
                    f" {'; '.join(holes[:3])}"
                    + ("; ..." if len(holes) > 3 else ""),
                )

    # -- process-pool bindings (mirrors ADA009) ------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_process_pool_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._pools.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if _is_process_pool_call(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self._pools.add(item.optional_vars.id)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        tail = dotted_name(callee).rsplit(".", 1)[-1]
        target = None
        via = None
        if tail == "TaskSpec":
            target = _task_argument(node)
            via = "TaskSpec"
        elif tail == "run_chunked":
            target = node.args[1] if len(node.args) > 1 else None
            if target is None:
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        target = keyword.value
            via = "run_chunked"
        elif (
            isinstance(callee, ast.Attribute)
            and callee.attr == "submit"
            and isinstance(callee.value, ast.Name)
            and callee.value.id in self._pools
        ):
            target = node.args[0] if node.args else None
            via = f"{callee.value.id}.submit"
        if target is not None and via is not None:
            self._check_submission(node, target, via)
        self.generic_visit(node)

    def _check_submission(
        self, node: ast.Call, target: ast.AST, via: str
    ) -> None:
        chain = dotted_name(target)
        if not chain:
            return  # lambdas/odd expressions are ADA003's problem
        qualid = self.graph.resolve_symbol(self.module, chain)
        if qualid is None:
            self.report(
                node,
                f"callable {chain!r} handed to {via} cannot be"
                " certified: it does not resolve in the project"
                " graph, so no purity certificate covers it",
            )
            return
        holes = certs.closure_holes(self.graph, qualid)
        if holes:
            self.report(
                node,
                f"callable {chain!r} handed to {via} has an"
                " incomplete certificate:"
                f" {'; '.join(holes[:3])}"
                + ("; ..." if len(holes) > 3 else ""),
            )


# ----------------------------------------------------------------------
# ADA020 — determinism taint must not reach persisted artifacts
# ----------------------------------------------------------------------
@register
class DeterminismTaint(Rule):
    """ADA020: no clock/RNG/environment taint into persisted state.

    A function that persists an artifact (inserts K-DB documents,
    records a run manifest, stores a cache entry) while its transitive
    call closure reads the wall clock, draws unseeded randomness or
    reads the process environment produces artifacts that differ
    between identical runs — exactly the provenance the K-DB exists
    to make reproducible. The one sanctioned flow is the manifest
    builder's own timing fields (``started_at`` et al.), which are
    wall-time *by contract*.
    """

    rule_id = "ADA020"
    name = "determinism-taint"
    severity = "error"
    description = (
        "wall-clock / unseeded-RNG / environment reads must not flow"
        " into persisted artifacts (K-DB documents, manifests, cache"
        " entries); the manifest timing fields are the one sanctioned"
        " sink"
    )

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        graph, module = _graph_and_module(context)
        summary = graph.modules.get(module)
        if summary is None:
            return self.findings
        for qualname in sorted(summary.functions):
            info = summary.functions[qualname]
            qualid = f"{module}:{qualname}"
            taints = [
                effect
                for effect in graph.effects(qualid)
                if effect.kind in _TAINT_KINDS
                and effect.module not in _SANCTIONED_TAINT_MODULES
            ]
            if not taints:
                continue
            for site in info.calls:
                sink = self._sink_name(graph, module, qualname, site)
                if sink is None:
                    continue
                effect = min(taints, key=lambda e: e.sort_key())
                origin = (
                    f"{effect.module}:{effect.qualname}:{effect.line}"
                )
                evidence = f"{effect.description} (at {origin}"
                path = graph.call_path(
                    qualid,
                    lambda q: q
                    == f"{effect.module}:{effect.qualname}",
                )
                if path and len(path) > 1:
                    steps = " -> ".join(
                        q.partition(":")[2] for q in path
                    )
                    evidence += f", via {steps}"
                evidence += ")"
                self.report(
                    _Line(site.line),
                    f"{qualname!r} persists an artifact via {sink}"
                    " while its call closure is determinism-tainted:"
                    f" {evidence}",
                )
        return self.findings

    @staticmethod
    def _sink_name(graph, module, qualname, site) -> Optional[str]:
        """The persistence sink a call site hits, or None."""
        resolved = graph.resolve_call(module, qualname, site)
        if resolved in _SINK_QUALIDS:
            return resolved.partition(":")[2]
        if resolved is None and site.ref and len(site.ref) > 1:
            tail = str(site.ref[-1]).rsplit(".", 1)[-1]
            if tail in _SINK_TAILS:
                return tail
        return None


# ----------------------------------------------------------------------
# ADA021 — versioned JSON schemas must not drift from their contracts
# ----------------------------------------------------------------------
@register
class SchemaDrift(Rule):
    """ADA021: every versioned JSON producer must match its consumer.

    The contract registry
    (:func:`repro.lint.contracts.schema_contracts`) pairs each
    versioned record — findings documents, SARIF logs, purity
    certificates, analysis-cache entries, shard log records, run
    manifests — with the ``*_FIELDS`` constant its consumer
    validates against. Producing a key the consumer does not declare
    is drift: bump the schema tag or update the consumer contract
    (and its ``validate_*``) in the same change. Literals elsewhere
    that stamp a registered schema tag are checked against the same
    field set (the generalisation of ADA008's manifest check).
    """

    rule_id = "ADA021"
    name = "schema-drift"
    severity = "error"
    description = (
        "versioned JSON producers must only emit fields their"
        " registered consumer contract declares (registry:"
        " repro.lint.contracts.schema_contracts)"
    )

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        self._producer_modules = {
            contract.producer_module for contract in schema_contracts()
        }
        for contract in schema_contracts():
            if contract.producer_module == context.module:
                self._check_producer(context, contract)
        self.visit(context.tree)
        return self.findings

    def _check_producer(self, context, contract) -> None:
        scope = self._scope_node(context.tree, contract.producer_scope)
        if scope is None:
            return
        allowed = contract.fields | contract.nested
        for key, node in self._produced_keys(scope):
            if key not in allowed:
                self.report(
                    node,
                    f"field {key!r} produced for"
                    f" {contract.name} is not declared by"
                    f" {contract.consumer_module}."
                    f"{contract.consumer_constant}; bump the schema"
                    " tag or update the consumer contract",
                )

    @staticmethod
    def _scope_node(tree: ast.AST, scope: str) -> Optional[ast.AST]:
        """Find ``fn`` or ``Class.method`` in a module tree."""
        parts = scope.split(".")
        body = getattr(tree, "body", [])
        for part in parts:
            found = None
            for node in body:
                if (
                    isinstance(
                        node,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                        ),
                    )
                    and node.name == part
                ):
                    found = node
                    break
            if found is None:
                return None
            body = found.body
        return found

    @staticmethod
    def _produced_keys(scope: ast.AST):
        """(key, node) for every produced string key in a scope:
        dict-literal keys plus subscript-assignment targets."""
        for node in ast.walk(scope):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        yield key.value, key
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        yield target.slice.value, target

    # -- tag-stamped literals anywhere ---------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        tag = None
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "schema"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                tag = value.value
        contract = contract_for_tag(tag) if tag else None
        if (
            contract is not None
            # ADA008 owns the manifest literal check; the producer
            # modules are already covered by the registry pass above.
            and contract.name != "run-manifest"
            and self.context is not None
            and self.context.module != contract.producer_module
        ):
            allowed = (
                contract.fields | contract.nested | {"schema"}
            )
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value not in allowed
                ):
                    self.report(
                        key,
                        f"unknown field {key.value!r} in a literal"
                        f" stamped {contract.schema_tag!r}; the"
                        f" {contract.name} contract declares"
                        f" {contract.consumer_module}."
                        f"{contract.consumer_constant}",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# ADA022 — source must match the committed certificate artifact
# ----------------------------------------------------------------------
@register
class StaleCertificate(Rule):
    """ADA022: committed certificates must match the source they cover.

    Compares every function's normalised content hash against the
    committed ``contracts/certificates.json``. A mismatch means the
    code changed semantically after the artifact was emitted — the
    runtime would be consuming stale contracts. Whitespace-only edits
    hash identically and never trip this rule. Fix by re-running
    ``repro lint --emit-certs``. Absent artifacts disable the rule
    (degradation, not failure).
    """

    rule_id = "ADA022"
    name = "stale-certificate"
    severity = "error"
    default_paths = ("src",)
    description = (
        "function content hashes must match the committed certificate"
        " artifact (contracts/certificates.json); re-emit with"
        " repro lint --emit-certs after semantic edits"
    )

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        artifact = self._artifact(context)
        if artifact is None:
            return self.findings
        module = context.module
        certified: Dict[str, Dict] = {
            qualid.partition(":")[2]: cert
            for qualid, cert in artifact["functions"].items()
            if qualid.partition(":")[0] == module
        }
        summary = extract_summary(
            context.tree, context.relpath, module
        )
        spans = certs.function_spans(context.source)
        hashes = certs.function_hashes(context.source)
        for qualname in sorted(summary.functions):
            current = hashes.get(qualname, "")
            line = spans.get(
                qualname, (summary.functions[qualname].line, 0)
            )[0]
            cert = certified.pop(qualname, None)
            if cert is None:
                self.report(
                    _Line(line),
                    f"{qualname!r} has no certificate in"
                    f" {certs.CERTS_RELPATH}; re-run"
                    " repro lint --emit-certs",
                )
            elif cert.get("code_hash", "") != current:
                self.report(
                    _Line(line),
                    f"{qualname!r} changed since its certificate was"
                    f" emitted (stale {certs.CERTS_RELPATH}); re-run"
                    " repro lint --emit-certs",
                )
        for qualname in sorted(certified):
            self.report(
                _Line(1),
                f"certificate for {qualname!r} covers a function"
                " that no longer exists; re-run"
                " repro lint --emit-certs",
            )
        return self.findings

    @staticmethod
    def _artifact(context: RuleContext) -> Optional[Dict]:
        """The committed artifact for this file's project, if any.

        In-memory snippets (``lint_source``) have no file behind
        ``context.path`` and are never judged against a checkout's
        artifact — only files that exist on disk belong to a project.
        """
        from repro.lint.runner import find_project_root

        if not Path(context.path).is_file():
            return None
        root = find_project_root(Path(context.path))
        return _cached_artifact(root / certs.CERTS_RELPATH)


_ARTIFACT_CACHE: Dict[Tuple[str, int, int], Optional[Dict]] = {}


def _cached_artifact(path: Path) -> Optional[Dict]:
    """Load (and memoise) one artifact, keyed on path + mtime + size."""
    try:
        stat = path.stat()
    except OSError:
        return None
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    if key not in _ARTIFACT_CACHE:
        _ARTIFACT_CACHE.clear()  # one artifact per run is plenty
        _ARTIFACT_CACHE[key] = certs.load_artifact(path)
    return _ARTIFACT_CACHE[key]


#: Names re-exported for fixtures/tests.
__all__ = [
    "OperatorContract",
    "DeterminismTaint",
    "SchemaDrift",
    "StaleCertificate",
]
