"""Content-addressed cache for incremental linting.

Two stores under one directory (default ``.adalint-cache/`` at the
project root, git-ignored):

``summaries/``
    Per-module :class:`~repro.lint.graph.ModuleSummary` documents,
    keyed on graph-format version + path + file content hash. A warm
    run rebuilds the whole project graph without parsing a single
    file.
``findings/``
    Per-file finding lists, keyed on ruleset version + file hash +
    the file's import-closure fingerprint + config fingerprint + the
    applicable rule ids. The closure fingerprint folds in the content
    hash of every transitively imported module, so editing
    ``core/cache.py`` re-lints ``core/engine.py`` even though the
    engine file itself is unchanged.

Entries are JSON, one file per key; corrupt or unreadable entries are
treated as misses (the cache is an accelerator, never a source of
truth).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lint.findings import Finding

#: Directory name used when the caller does not pick one.
DEFAULT_CACHE_DIR = ".adalint-cache"


def content_hash(source: str) -> str:
    """Stable hash of one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def key_of(*parts: str) -> str:
    """One cache key from ordered string components."""
    joined = "\x1f".join(parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


class LintCache:
    """Filesystem-backed store for summaries and findings."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.summary_hits = 0
        self.finding_hits = 0

    # -- internals ------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.directory / kind / f"{key}.json"

    def _read(self, kind: str, key: str) -> Optional[Any]:
        path = self._path(kind, key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _write(self, kind: str, key: str, document: Any) -> None:
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(document, handle)
            tmp.replace(path)
        except OSError:
            pass  # cache writes are best-effort

    # -- summaries ------------------------------------------------------
    def get_summary(self, key: str) -> Optional[Dict[str, Any]]:
        document = self._read("summaries", key)
        if isinstance(document, dict):
            self.summary_hits += 1
            return document
        return None

    def put_summary(self, key: str, document: Dict[str, Any]) -> None:
        self._write("summaries", key, document)

    # -- findings -------------------------------------------------------
    def get_findings(self, key: str) -> Optional[List[Finding]]:
        document = self._read("findings", key)
        if not isinstance(document, list):
            return None
        try:
            findings = [Finding(**entry) for entry in document]
        except TypeError:
            return None
        self.finding_hits += 1
        return findings

    def put_findings(self, key: str, findings: List[Finding]) -> None:
        self._write(
            "findings",
            key,
            [finding.__dict__ for finding in findings],
        )
