"""Parallelism-safety rules: picklable tasks (ADA003), no mutable
defaults (ADA004).

``ProcessPoolExecutorBackend`` ships tasks to workers by pickling;
a lambda or closure handed to :class:`TaskSpec` (or submitted straight
onto a process pool) dies with ``PicklingError`` only at runtime, under
spawn, on the unlucky backend. ADA003 moves that failure to lint time.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.base import Rule, dotted_name, register


class _FunctionScope:
    """Names that would not survive pickling if shipped to a worker."""

    def __init__(self, node: ast.AST, is_function: bool) -> None:
        self.is_function = is_function
        self.nested_defs: Set[str] = set()
        self.lambda_names: Set[str] = set()
        self.process_pools: Set[str] = set()
        if is_function:
            self._scan(node)

    def _scan(self, function: ast.AST) -> None:
        """Collect this function's own nested defs and lambda binds."""
        for statement in ast.walk(function):
            if statement is function:
                continue
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.nested_defs.add(statement.name)
            elif isinstance(statement, ast.Assign) and isinstance(
                statement.value, ast.Lambda
            ):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        self.lambda_names.add(target.id)


@register
class NoUnpicklableTask(Rule):
    """ADA003: no lambdas/closures/local functions handed to
    ``TaskSpec`` or submitted onto a process pool.

    Only module-level callables are importable in a spawned worker;
    anything defined inside a function (or anonymously) fails to
    pickle. Thread-pool ``submit`` is exempt — threads share the
    interpreter and never pickle.
    """

    rule_id = "ADA003"
    name = "no-unpicklable-tasks"
    description = (
        "TaskSpec / process-pool submit need module-level callables"
        " (closures cannot cross a spawn boundary)"
    )

    def run(self, context):
        self._scopes: List[_FunctionScope] = [
            _FunctionScope(context.tree, is_function=False)
        ]
        return super().run(context)

    # -- scope tracking --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(_FunctionScope(node, is_function=True))
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_process_pool_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].process_pools.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if _is_process_pool_call(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self._scopes[-1].process_pools.add(item.optional_vars.id)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    # -- the check -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        tail = dotted_name(callee).rsplit(".", maxsplit=1)[-1]
        target = None
        via = None
        if tail == "TaskSpec":
            target = _task_argument(node)
            via = "TaskSpec"
        elif (
            isinstance(callee, ast.Attribute)
            and callee.attr == "submit"
            and isinstance(callee.value, ast.Name)
            and self._is_process_pool(callee.value.id)
        ):
            target = node.args[0] if node.args else None
            via = f"{callee.value.id}.submit"
        if target is not None and via is not None:
            self._check_task(node, target, via)
        self.generic_visit(node)

    def _is_process_pool(self, name: str) -> bool:
        return any(name in scope.process_pools for scope in self._scopes)

    def _check_task(
        self, node: ast.Call, target: ast.AST, via: str
    ) -> None:
        if isinstance(target, ast.Lambda):
            self.report(
                target,
                f"lambda handed to {via} cannot be pickled for a"
                " spawned worker; use a module-level function",
            )
            return
        if not isinstance(target, ast.Name):
            return
        for scope in self._scopes:
            if not scope.is_function:
                continue
            if target.id in scope.nested_defs:
                self.report(
                    node,
                    f"nested function {target.id!r} handed to {via}"
                    " cannot be pickled for a spawned worker; move it"
                    " to module level",
                )
                return
            if target.id in scope.lambda_names:
                self.report(
                    node,
                    f"{target.id!r} is bound to a lambda; {via} needs"
                    " a module-level function to survive pickling",
                )
                return


def _task_argument(call: ast.Call):
    """The callable slot of a ``TaskSpec(fn, args...)`` construction."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


def _is_process_pool_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    tail = dotted_name(node.func).rsplit(".", maxsplit=1)[-1]
    return tail == "ProcessPoolExecutor"


@register
class NoMutableDefault(Rule):
    """ADA004: no mutable default arguments.

    A ``def f(x, acc=[])`` default is created once and shared across
    calls — and across *processes* it silently diverges, so cached and
    fanned-out runs stop agreeing with serial ones.
    """

    rule_id = "ADA004"
    name = "no-mutable-defaults"
    description = "default argument values must be immutable"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_arguments(node.args)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_arguments(node.args)
        self.generic_visit(node)

    def _check_arguments(self, arguments: ast.arguments) -> None:
        defaults = list(arguments.defaults) + [
            default
            for default in arguments.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ):
                self.report(
                    default,
                    "mutable default argument is shared across calls;"
                    " default to None and build inside the function",
                )
            elif (
                isinstance(default, ast.Call)
                and dotted_name(default.func).rsplit(".", 1)[-1]
                in self._MUTABLE_CALLS
            ):
                self.report(
                    default,
                    "call in default argument runs once at def time"
                    " and the result is shared; default to None",
                )
