"""Whole-program analysis layer for adalint.

``summary`` extracts serialisable per-module facts from ``ast`` (the
target modules are never imported); ``project`` links them into a
:class:`ProjectGraph` with cross-module call resolution, an import
graph and a transitive effect fixed point. The dataflow rules
(ADA009–ADA012) and the incremental runner cache are built on top.
"""

from repro.lint.graph.project import ProjectGraph
from repro.lint.graph.summary import (
    GRAPH_VERSION,
    CallSite,
    ClassInfo,
    Effect,
    FunctionInfo,
    ModuleSummary,
    extract_summary,
    module_name_for,
)

__all__ = [
    "GRAPH_VERSION",
    "CallSite",
    "ClassInfo",
    "Effect",
    "FunctionInfo",
    "ModuleSummary",
    "ProjectGraph",
    "extract_summary",
    "module_name_for",
]
