"""Per-module summaries: the parse-time half of the project graph.

One :class:`ModuleSummary` is extracted per file with :mod:`ast` — the
target module is **never imported**. A summary records everything the
whole-program layer needs to link modules together without re-reading
source: the symbol table (functions, classes, imports, module-level
names), and per function its parameters, call sites (with enough
structure to resolve callees and map arguments), *direct* side effects,
``raise`` statements and ``EngineConfig`` attribute reads.

Summaries are plain-data and JSON-serialisable, so the incremental lint
cache can persist them keyed on the file's content hash: a warm run
rebuilds the project graph without parsing a single file.

Direct-effect inference recognises six kinds (the transitive closure
is computed by :class:`repro.lint.graph.project.ProjectGraph`):

``wall-clock``
    ``time.time``/``time_ns``, ``datetime.now``/``utcnow``, ``today``
    (monotonic ``perf_counter`` is always fine).
``unseeded-rng``
    unseeded/None-seeded ``default_rng``, legacy ``np.random.*`` draws,
    stdlib ``random`` calls.
``env-read``
    ``os.getenv(...)``, ``os.environ.get(...)`` and ``os.environ[...]``
    reads — a determinism taint for ADA020 (the environment varies
    between hosts/runs) without being an ``io`` effect.
``io``
    ``open``/``print``/``input``, ``shutil.*``/``subprocess.*``,
    mutating ``os.*`` calls, ``write_text``/``write_bytes``.
``global-write``
    assignment/mutation of module-level state (including via a
    ``global`` declaration or a mutating method call).
``mutates-param``
    assignment/mutation through a parameter (``p.x = v``,
    ``p.items.append(...)``); at call boundaries the project graph
    re-maps these onto the *caller's* arguments.

Since ``adalint-graph/2`` a summary also carries the concurrency
surface the ADA015–ADA018 rules consume:

* lock **acquisitions** (``with self._lock:`` / ``lock.acquire()``)
  with the locks already held at that point — the raw material of the
  project-wide lock-order graph;
* the **held-lock set** at every call site, self-attribute write and
  blocking operation (``time.sleep``, ``os.fsync``, executor
  ``submit``/``result``, ``wait``/``join``/``shutdown``);
* per class, which attributes are **lock factories**
  (``self._lock = threading.RLock()``) and whether any method spawns a
  ``threading.Thread``.

Lock references are compact strings resolved to canonical project-wide
tokens by :class:`~repro.lint.graph.project.ProjectGraph`:
``"self:_lock"``, ``"typed:<Class chain>:<attr>"``,
``"self-method:<method>:<attr>"`` (receiver returned by an annotated
``self`` method) and ``"global:<NAME>"``.

Known approximations (documented in ``docs/API.md``): effects behind
unresolvable dynamic dispatch are invisible (the pass under-reports
rather than guessing), conditional effects count unconditionally, and
``Optional[...]``-subscripted annotations are not used for receiver
typing. On the concurrency side: a bare ``.acquire()`` is treated as
held for the remainder of the function (``release()`` is not tracked),
only attributes whose name contains ``lock`` are considered lock
candidates, and conditional blocking calls count unconditionally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.base import dotted_name

#: Bump when the summary format or extraction logic changes; part of
#: every summary-cache key, so stale summaries are never reused.
GRAPH_VERSION = "adalint-graph/3"

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "add",
        "discard", "update", "setdefault", "popitem", "write",
        "writelines", "appendleft", "sort", "reverse",
    }
)

#: Legacy ``np.random`` module-level draws (shared global RNG).
_LEGACY_NP_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "bytes",
        "normal", "uniform", "standard_normal", "beta", "binomial",
        "poisson", "exponential", "gamma", "laplace", "lognormal",
        "multinomial", "multivariate_normal", "RandomState",
    }
)

_IO_NAMES = frozenset({"open", "print", "input"})
_IO_PREFIXES = ("shutil.", "subprocess.")
_IO_OS_TAILS = frozenset(
    {
        "remove", "unlink", "rename", "replace", "makedirs", "mkdir",
        "rmdir", "removedirs", "symlink", "chmod", "truncate",
    }
)
_IO_TAILS = frozenset({"write_text", "write_bytes"})


@dataclass(frozen=True)
class Effect:
    """One direct (or re-mapped) side effect with its origin site."""

    kind: str  #: wall-clock | unseeded-rng | io | global-write | mutates-param
    detail: str  #: offending chain, global name or parameter name
    module: str  #: module holding the *direct* effect
    qualname: str  #: function holding the direct effect
    line: int
    description: str

    def sort_key(self) -> Tuple:
        return (self.kind, self.detail, self.module, self.qualname,
                self.line)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.line,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Effect":
        return cls(**doc)


@dataclass(frozen=True)
class CallSite:
    """One call with a resolvable callee reference and argument roots.

    ``ref`` is a tuple describing how to find the callee:

    * ``("name", n)`` — plain name (local function, class, or import);
    * ``("dotted", "a.b.c")`` — attribute chain rooted in a name;
    * ``("self", m)`` — ``self.m(...)`` inside a class body;
    * ``("typed", chain, m)`` — method on a receiver whose class is
      known from a local construction or a parameter annotation;
    * ``("ctor-method", chain, m)`` — ``Cls(...).m(...)``.

    ``arg_roots``/``kwarg_roots`` classify each argument as
    ``"param:<name>"``, ``"global:<name>"`` or ``"other"``;
    ``receiver_root`` does the same for a method receiver (``"fresh"``
    for just-constructed objects), which is how parameter-mutation
    effects are re-mapped across call boundaries.
    """

    line: int
    ref: Tuple[str, ...]
    arg_roots: Tuple[str, ...] = ()
    kwarg_roots: Tuple[Tuple[str, str], ...] = ()
    receiver_root: str = "none"
    #: Lock references held when the call executes (lexically).
    held_locks: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "ref": list(self.ref),
            "arg_roots": list(self.arg_roots),
            "kwarg_roots": [list(pair) for pair in self.kwarg_roots],
            "receiver_root": self.receiver_root,
            "held_locks": list(self.held_locks),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CallSite":
        return cls(
            line=doc["line"],
            ref=tuple(doc["ref"]),
            arg_roots=tuple(doc["arg_roots"]),
            kwarg_roots=tuple(
                (name, root) for name, root in doc["kwarg_roots"]
            ),
            receiver_root=doc["receiver_root"],
            held_locks=tuple(doc.get("held_locks", ())),
        )


@dataclass(frozen=True)
class LockAcquire:
    """One lock acquisition: a ``with <lock>:`` item or ``.acquire()``.

    ``ref`` is the compact lock reference (see module docstring);
    ``under`` lists the references already held at the acquisition —
    each ``under -> ref`` pair is a direct lock-order edge.
    """

    line: int
    ref: str
    under: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "ref": self.ref,
            "under": list(self.under),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LockAcquire":
        return cls(
            line=doc["line"],
            ref=doc["ref"],
            under=tuple(doc["under"]),
        )


@dataclass(frozen=True)
class AttrWrite:
    """One write/mutation of a ``self`` attribute, with held locks."""

    attr: str
    line: int
    held: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attr": self.attr,
            "line": self.line,
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AttrWrite":
        return cls(
            attr=doc["attr"],
            line=doc["line"],
            held=tuple(doc["held"]),
        )


@dataclass(frozen=True)
class BlockingOp:
    """One potentially blocking call (sleep/fsync/submit/result/...)."""

    op: str  #: the offending chain, e.g. ``time.sleep`` or ``.join``
    line: int
    held: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "line": self.line,
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BlockingOp":
        return cls(
            op=doc["op"],
            line=doc["line"],
            held=tuple(doc["held"]),
        )


@dataclass
class FunctionInfo:
    """Summary of one function or method."""

    qualname: str  #: ``fn`` or ``Class.method`` (module-relative)
    line: int
    params: List[str] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)
    class_name: Optional[str] = None
    direct_effects: List[Effect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: ``(exception chain, line)``; the chain is '' for bare ``raise``
    #: and for non-name expressions (both are skipped by ADA011).
    raises: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(field, line)`` for reads of ``self.config.<field>`` (or a
    #: local alias of ``self.config``) — the ADA010 surface.
    config_reads: List[Tuple[str, int]] = field(default_factory=list)
    #: Return-annotation chain ('' when absent) — lets the linker type
    #: receivers assigned from ``self.method(...)`` calls.
    returns: str = ""
    #: Lock acquisitions, in source order.
    acquires: List[LockAcquire] = field(default_factory=list)
    #: Writes/mutations of ``self`` attributes, with held locks.
    attr_writes: List[AttrWrite] = field(default_factory=list)
    #: Potentially blocking calls, with held locks.
    blocking: List[BlockingOp] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        parts = self.qualname.split(".")
        name = parts[-1]
        if name.startswith("_") and not (
            name.startswith("__") and name.endswith("__")
        ):
            return False
        return all(not part.startswith("_") for part in parts[:-1])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "annotations": dict(self.annotations),
            "class_name": self.class_name,
            "direct_effects": [e.to_dict() for e in self.direct_effects],
            "calls": [c.to_dict() for c in self.calls],
            "raises": [list(pair) for pair in self.raises],
            "config_reads": [list(pair) for pair in self.config_reads],
            "returns": self.returns,
            "acquires": [a.to_dict() for a in self.acquires],
            "attr_writes": [w.to_dict() for w in self.attr_writes],
            "blocking": [b.to_dict() for b in self.blocking],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=doc["qualname"],
            line=doc["line"],
            params=list(doc["params"]),
            annotations=dict(doc["annotations"]),
            class_name=doc["class_name"],
            direct_effects=[
                Effect.from_dict(e) for e in doc["direct_effects"]
            ],
            calls=[CallSite.from_dict(c) for c in doc["calls"]],
            raises=[(chain, line) for chain, line in doc["raises"]],
            config_reads=[
                (name, line) for name, line in doc["config_reads"]
            ],
            returns=doc.get("returns", ""),
            acquires=[
                LockAcquire.from_dict(a) for a in doc.get("acquires", [])
            ],
            attr_writes=[
                AttrWrite.from_dict(w)
                for w in doc.get("attr_writes", [])
            ],
            blocking=[
                BlockingOp.from_dict(b) for b in doc.get("blocking", [])
            ],
        )


@dataclass
class ClassInfo:
    """Summary of one class: bases, methods and concurrency traits."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)  #: dotted chains
    methods: List[str] = field(default_factory=list)
    #: Attributes assigned a lock factory (``threading.Lock()`` /
    #: ``RLock()`` / anything ``*Lock(...)``) on ``self``.
    lock_attrs: List[str] = field(default_factory=list)
    #: True when any method constructs a ``threading.Thread`` — such a
    #: class is treated as multi-threaded by ADA016.
    spawns_threads: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "lock_attrs": list(self.lock_attrs),
            "spawns_threads": self.spawns_threads,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassInfo":
        return cls(
            name=doc["name"],
            line=doc["line"],
            bases=list(doc["bases"]),
            methods=list(doc["methods"]),
            lock_attrs=list(doc.get("lock_attrs", [])),
            spawns_threads=doc.get("spawns_threads", False),
        )


@dataclass
class ModuleSummary:
    """Everything the project graph keeps about one module."""

    module: str
    relpath: str
    #: local name -> (target module, symbol or None for plain imports)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(
        default_factory=dict
    )
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_names: List[str] = field(default_factory=list)
    parse_failed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph_version": GRAPH_VERSION,
            "module": self.module,
            "relpath": self.relpath,
            "imports": {
                name: list(target) for name, target in self.imports.items()
            },
            "functions": {
                name: info.to_dict()
                for name, info in self.functions.items()
            },
            "classes": {
                name: info.to_dict() for name, info in self.classes.items()
            },
            "module_names": list(self.module_names),
            "parse_failed": self.parse_failed,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=doc["module"],
            relpath=doc["relpath"],
            imports={
                name: (target[0], target[1])
                for name, target in doc["imports"].items()
            },
            functions={
                name: FunctionInfo.from_dict(info)
                for name, info in doc["functions"].items()
            },
            classes={
                name: ClassInfo.from_dict(info)
                for name, info in doc["classes"].items()
            },
            module_names=list(doc["module_names"]),
            parse_failed=doc.get("parse_failed", False),
        )


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative POSIX path.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``;
    ``benchmarks/test_x.py`` -> ``benchmarks.test_x``; a package's
    ``__init__.py`` maps to the package itself.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__main__"


def _package_of(module: str, relpath: str) -> str:
    """The package a module's relative imports resolve against."""
    if relpath.endswith("/__init__.py"):
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def extract_summary(
    source_or_tree, relpath: str, module: Optional[str] = None
) -> ModuleSummary:
    """Build a :class:`ModuleSummary` from source text or a parsed tree."""
    module = module or module_name_for(relpath)
    summary = ModuleSummary(module=module, relpath=relpath)
    if isinstance(source_or_tree, ast.AST):
        tree = source_or_tree
    else:
        try:
            tree = ast.parse(source_or_tree)
        except SyntaxError:
            summary.parse_failed = True
            return summary
    package = _package_of(module, relpath)
    _collect_imports(tree, package, summary)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_function(node, None, summary)
        elif isinstance(node, ast.ClassDef):
            _extract_class(node, summary)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    summary.module_names.append(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            summary.module_names.append(element.id)
    summary.module_names = sorted(set(summary.module_names))
    return summary


def _collect_imports(
    tree: ast.AST, package: str, summary: ModuleSummary
) -> None:
    """Record every import binding, including function-level ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name
                summary.imports[local] = (target, None)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                anchor = anchor[: len(anchor) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = (base, alias.name)


def _extract_class(node: ast.ClassDef, summary: ModuleSummary) -> None:
    info = ClassInfo(
        name=node.name,
        line=node.lineno,
        bases=[dotted_name(base) for base in node.bases],
    )
    summary.classes[node.name] = info
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(item.name)
            _extract_function(item, node.name, summary)


def _annotation_chain(annotation) -> str:
    """Dotted chain for a Name / Attribute / string annotation."""
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return ""
    return dotted_name(annotation)


def _extract_function(
    node, class_name: Optional[str], summary: ModuleSummary
) -> None:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    args = node.args
    ordered = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    params = [arg.arg for arg in ordered]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    annotations = {
        arg.arg: chain
        for arg in ordered
        if (chain := _annotation_chain(arg.annotation))
    }
    info = FunctionInfo(
        qualname=qualname,
        line=node.lineno,
        params=params,
        annotations=annotations,
        class_name=class_name,
        returns=_annotation_chain(node.returns),
    )
    summary.functions[qualname] = info
    extractor = _FunctionExtractor(node, info, summary)
    extractor.run()
    # Nested defs become their own (unlinkable) entries so a parent's
    # call to a local helper can still resolve within the module.
    for nested, nested_class in extractor.nested:
        _extract_function(nested, None, summary)
        nested_info = summary.functions.pop(nested.name, None)
        if nested_info is not None:
            nested_info.qualname = f"{qualname}.<locals>.{nested.name}"
            summary.functions[nested_info.qualname] = nested_info
        del nested_class  # nested classes keep no special handling


class _FunctionExtractor(ast.NodeVisitor):
    """Single-function pass: effects, call sites, raises, config reads."""

    def __init__(
        self, node, info: FunctionInfo, summary: ModuleSummary
    ) -> None:
        self.node = node
        self.info = info
        self.summary = summary
        self.params = set(info.params)
        self.self_name = info.params[0] if (
            info.class_name and info.params
        ) else None
        self.globals_declared: set = set()
        self.local_types: Dict[str, str] = {}
        self.config_aliases: set = set()
        self.nested: List[Tuple[ast.AST, Optional[str]]] = []
        #: Locals assigned from ``self.method(...)`` -> method name
        #: (typed later through the method's return annotation).
        self.self_call_types: Dict[str, str] = {}
        #: Locals aliasing a lock (``guard = self._lock``) -> lock ref.
        self.lock_aliases: Dict[str, str] = {}
        #: Lock references currently held (``with`` stack; bare
        #: ``.acquire()`` entries are sticky for the rest of the pass).
        self._held: List[str] = []

    def run(self) -> None:
        self._prescan()
        for statement in self.node.body:
            self.visit(statement)

    # -- pre-pass: local constructed types, config aliases, globals ----
    def _prescan(self) -> None:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = sub.value
                if isinstance(value, ast.Call):
                    chain = dotted_name(value.func)
                    if chain and self._looks_like_class(chain):
                        self.local_types[target.id] = chain
                    elif (
                        self.self_name is not None
                        and isinstance(value.func, ast.Attribute)
                        and isinstance(value.func.value, ast.Name)
                        and value.func.value.id == self.self_name
                    ):
                        self.self_call_types[target.id] = (
                            value.func.attr
                        )
                elif self._is_self_config(value):
                    self.config_aliases.add(target.id)
                elif isinstance(value, ast.Attribute):
                    ref = self._lock_ref(value)
                    if ref is not None:
                        self.lock_aliases[target.id] = ref

    def _looks_like_class(self, chain: str) -> bool:
        tail = chain.rsplit(".", 1)[-1]
        return bool(tail[:1].isupper())

    def _is_self_config(self, node) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "config"
            and isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
        )

    # -- nested definitions: summarised separately, not descended ------
    def visit_FunctionDef(self, node) -> None:
        self.nested.append((node, None))

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:  # bodies stay opaque
        pass

    # -- lock acquisitions ---------------------------------------------
    def _lock_ref(self, expr) -> Optional[str]:
        """Compact reference for a lock-looking expression, else None.

        Candidates are attributes/names whose final component contains
        ``lock`` (case-insensitive) — the project's naming convention;
        anything else is invisible to the concurrency rules.
        """
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if "lock" not in attr.lower():
                return None
            base = expr.value
            if isinstance(base, ast.Name):
                if self.self_name is not None and (
                    base.id == self.self_name
                ):
                    return f"self:{attr}"
                if base.id in self.local_types:
                    return (
                        f"typed:{self.local_types[base.id]}:{attr}"
                    )
                if base.id in self.self_call_types:
                    return (
                        "self-method:"
                        f"{self.self_call_types[base.id]}:{attr}"
                    )
                chain = self.info.annotations.get(base.id, "")
                if base.id in self.params and chain:
                    return f"typed:{chain}:{attr}"
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.lock_aliases:
                return self.lock_aliases[name]
            if "lock" not in name.lower():
                return None
            if name in self.summary.module_names or name in (
                self.globals_declared
            ):
                return f"global:{name}"
        return None

    def _record_acquire(self, line: int, ref: str) -> None:
        self.info.acquires.append(
            LockAcquire(line=line, ref=ref, under=tuple(self._held))
        )

    def visit_With(self, node) -> None:
        pushed = 0
        for item in node.items:
            self.visit(item.context_expr)
            ref = self._lock_ref(item.context_expr)
            if ref is not None:
                self._record_acquire(
                    getattr(item.context_expr, "lineno", node.lineno),
                    ref,
                )
                self._held.append(ref)
                pushed += 1
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for statement in node.body:
            self.visit(statement)
        if pushed:
            del self._held[-pushed:]

    visit_AsyncWith = visit_With

    # -- argument/target root classification ---------------------------
    def _root_of(self, node) -> str:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id in self.params:
                return f"param:{node.id}"
            if node.id in self.local_types or node.id in (
                self.config_aliases
            ):
                return "other"
            if node.id in self.summary.imports or node.id in (
                self.summary.module_names
            ):
                return f"global:{node.id}"
            if node.id in self.globals_declared:
                return f"global:{node.id}"
            return "other"
        if isinstance(node, ast.Call):
            return "fresh"
        return "other"

    def _effect(self, kind: str, detail: str, line: int, text: str):
        self.info.direct_effects.append(
            Effect(
                kind=kind,
                detail=detail,
                module=self.summary.module,
                qualname=self.info.qualname,
                line=line,
                description=text,
            )
        )

    # -- mutation targets ----------------------------------------------
    def _inner_attr(self, node) -> str:
        """Attribute name closest to the chain's base (``''`` if none)."""
        inner = ""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                inner = node.attr
            node = node.value
        return inner

    def _is_self_private(self, root: str, inner_attr: str) -> bool:
        """``self._x``-style access: treated as internal memoisation.

        Writes to underscore-private attributes of ``self`` are a
        deliberate blind spot (lazy caches like ``self._patient_ids``
        would otherwise poison every effect closure); documented as a
        known approximation.
        """
        return (
            self.self_name is not None
            and root == f"param:{self.self_name}"
            and inner_attr.startswith("_")
        )

    def _check_store_target(self, target, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, line)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._effect(
                    "global-write",
                    target.id,
                    line,
                    f"writes module global {target.id!r}",
                )
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = self._root_of(target)
        inner_attr = self._inner_attr(target)
        self._record_attr_write(root, inner_attr, line)
        if self._is_self_private(root, inner_attr):
            return
        if root.startswith("param:"):
            name = root.split(":", 1)[1]
            self._effect(
                "mutates-param",
                name,
                line,
                f"mutates state reachable from parameter {name!r}",
            )
        elif root.startswith("global:"):
            name = root.split(":", 1)[1]
            self._effect(
                "global-write",
                name,
                line,
                f"mutates module-level state {name!r}",
            )

    def _record_attr_write(
        self, root: str, inner_attr: str, line: int
    ) -> None:
        """Log a ``self.<attr>`` write (ADA016's raw material)."""
        if (
            self.info.class_name is None
            or self.self_name is None
            or root != f"param:{self.self_name}"
            or not inner_attr
        ):
            return
        self.info.attr_writes.append(
            AttrWrite(
                attr=inner_attr, line=line, held=tuple(self._held)
            )
        )

    def _check_lock_attr_definition(self, node: ast.Assign) -> None:
        """``self.X = threading.Lock()``-style definitions."""
        if self.info.class_name is None or self.self_name is None:
            return
        if not isinstance(node.value, ast.Call):
            return
        chain = dotted_name(node.value.func)
        if not chain or not chain.rsplit(".", 1)[-1].endswith("Lock"):
            return
        class_info = self.summary.classes.get(self.info.class_name)
        if class_info is None:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self.self_name
                and target.attr not in class_info.lock_attrs
            ):
                class_info.lock_attrs.append(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_lock_attr_definition(node)
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    # -- raises ---------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        chain = ""
        exc = node.exc
        if isinstance(exc, ast.Call):
            chain = dotted_name(exc.func)
        elif exc is not None:
            chain = dotted_name(exc)
            # ``raise exc`` re-raising a caught variable is not a type
            # reference; only Name/Attribute chains that look like
            # classes are recorded.
            if chain and not chain.rsplit(".", 1)[-1][:1].isupper():
                chain = ""
        self.info.raises.append((chain, node.lineno))
        self.generic_visit(node)

    # -- environment reads ----------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load) and dotted_name(
            node.value
        ) in ("os.environ", "environ"):
            self._effect(
                "env-read", "os.environ", node.lineno,
                "reads the process environment via os.environ[...]",
            )
        self.generic_visit(node)

    # -- config reads ----------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            base = node.value
            if self._is_self_config(base) or (
                isinstance(base, ast.Name)
                and base.id in self.config_aliases
            ):
                self.info.config_reads.append((node.attr, node.lineno))
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._detect_call_effects(node)
        self._detect_concurrency(node)
        ref, receiver_root = self._callee_ref(node.func)
        if ref is not None:
            self.info.calls.append(
                CallSite(
                    line=node.lineno,
                    ref=ref,
                    arg_roots=tuple(
                        self._root_of(arg)
                        for arg in node.args
                        if not isinstance(arg, ast.Starred)
                    ),
                    kwarg_roots=tuple(
                        (keyword.arg, self._root_of(keyword.value))
                        for keyword in node.keywords
                        if keyword.arg is not None
                    ),
                    receiver_root=receiver_root,
                    held_locks=tuple(self._held),
                )
            )
        # A bare ``lock.acquire()`` is treated as held for the rest of
        # the function (release() is not tracked — approximation).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            acquired = self._lock_ref(node.func.value)
            if acquired is not None:
                self._record_acquire(node.lineno, acquired)
                self._held.append(acquired)
        self.generic_visit(node)

    def _detect_concurrency(self, node: ast.Call) -> None:
        """Thread spawns, mutator writes and blocking operations."""
        chain = dotted_name(node.func)
        tail = chain.rsplit(".", 1)[-1] if chain else ""
        if tail == "Thread" and self.info.class_name is not None:
            class_info = self.summary.classes.get(self.info.class_name)
            if class_info is not None:
                class_info.spawns_threads = True
        # Mutating method calls on self attributes are writes too.
        if tail in _MUTATORS and isinstance(node.func, ast.Attribute):
            root = self._root_of(node.func.value)
            self._record_attr_write(
                root, self._inner_attr(node.func), node.lineno
            )
        blocking = self._blocking_op(node, chain, tail)
        if blocking is not None:
            self.info.blocking.append(
                BlockingOp(
                    op=blocking,
                    line=node.lineno,
                    held=tuple(self._held),
                )
            )

    def _blocking_op(
        self, node: ast.Call, chain: str, tail: str
    ) -> Optional[str]:
        """The blocking-call label for ``node``, or None.

        Recognised: ``time.sleep``, ``os.fsync``, executor
        ``.submit()``/``.result()``/``.shutdown()``, ``.wait()`` and
        thread ``.join()``. ``str.join``/``os.path.join`` are excluded
        by shape: a thread join takes no argument or a single numeric /
        ``timeout=`` argument.
        """
        if not chain:
            return None
        parts = chain.split(".")
        if parts[0] == "time" and tail == "sleep":
            return chain
        if parts[0] == "os" and tail == "fsync":
            return chain
        if not isinstance(node.func, ast.Attribute):
            return None
        if tail in ("submit", "result", "shutdown", "wait"):
            return f".{tail}"
        if tail == "join":
            if isinstance(node.func.value, ast.Constant):
                return None  # "sep".join(...)
            if any(
                part in ("os", "path", "posixpath", "ntpath")
                for part in parts[:-1]
            ):
                return None  # os.path.join and friends
            timeout_kw = any(
                keyword.arg == "timeout" for keyword in node.keywords
            )
            if node.args and not timeout_kw:
                only_numeric = len(node.args) == 1 and (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(
                        node.args[0].value, (int, float)
                    )
                )
                if not only_numeric:
                    return None  # iterable argument: a str.join
            return ".join"
        return None

    def _callee_ref(self, func):
        if isinstance(func, ast.Name):
            return ("name", func.id), "none"
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if self.self_name is not None and base.id == (
                    self.self_name
                ):
                    return ("self", method), f"param:{base.id}"
                if base.id in self.local_types:
                    return (
                        ("typed", self.local_types[base.id], method),
                        "other",
                    )
                if base.id in self.params:
                    chain = self.info.annotations.get(base.id, "")
                    if chain:
                        return (
                            ("typed", chain, method),
                            f"param:{base.id}",
                        )
                chain = dotted_name(func)
                if chain:
                    return ("dotted", chain), self._root_of(base)
            elif isinstance(base, ast.Call):
                ctor = dotted_name(base.func)
                if ctor and self._looks_like_class(ctor):
                    return ("ctor-method", ctor, method), "fresh"
            else:
                chain = dotted_name(func)
                if chain:
                    return ("dotted", chain), self._root_of(base)
        return None, "none"

    def _detect_call_effects(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        parts = chain.split(".")
        tail = parts[-1]
        line = node.lineno
        # wall clock (mirrors ADA002)
        if (
            (tail in ("time", "time_ns") and "time" in parts[:-1])
            or (tail in ("now", "utcnow") and "datetime" in parts[:-1])
            or (
                tail == "today"
                and any(p in ("date", "datetime") for p in parts[:-1])
            )
        ):
            self._effect(
                "wall-clock", chain, line, f"reads the wall clock"
                f" via {chain}()"
            )
        # unseeded randomness (mirrors ADA001)
        if tail == "default_rng" and not _rng_seeded(node):
            self._effect(
                "unseeded-rng", chain, line,
                "draws from an unseeded default_rng()",
            )
        elif chain.startswith(("np.random.", "numpy.random.")) and (
            tail in _LEGACY_NP_RANDOM
        ):
            self._effect(
                "unseeded-rng", chain, line,
                f"uses the process-global RNG via {chain}()",
            )
        elif parts[0] == "random" and len(parts) > 1 and (
            self.summary.imports.get("random", ("", None))[0] == "random"
        ):
            # random.Random(seed) is an explicitly seeded instance,
            # not the module-global RNG.
            if not (tail == "Random" and _rng_seeded(node)):
                self._effect(
                    "unseeded-rng", chain, line,
                    f"uses stdlib random global state via {chain}()",
                )
        # environment reads (determinism taint, not I/O)
        if (parts[0] == "os" and tail == "getenv") or chain in (
            "os.environ.get",
            "environ.get",
        ):
            self._effect(
                "env-read", chain, line,
                f"reads the process environment via {chain}()",
            )
        # I/O
        if (
            (len(parts) == 1 and tail in _IO_NAMES)
            or chain.startswith(_IO_PREFIXES)
            or (parts[0] == "os" and tail in _IO_OS_TAILS)
            or tail in _IO_TAILS
            or chain in ("sys.stdout.write", "sys.stderr.write")
        ):
            self._effect("io", chain, line, f"performs I/O via {chain}()")
        # mutating method calls on parameters / module state
        if tail in _MUTATORS and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            root = self._root_of(receiver)
            if self._is_self_private(root, self._inner_attr(node.func)):
                return
            if root.startswith("param:"):
                name = root.split(":", 1)[1]
                self._effect(
                    "mutates-param", name, line,
                    f"calls mutating {tail}() on parameter {name!r}",
                )
            elif root.startswith("global:"):
                name = root.split(":", 1)[1]
                # ``np.sort(x)`` is a pure module function, not a
                # mutation of ``np``: only names *assigned* at module
                # level (or declared ``global``) count as mutable
                # module state here.
                if name not in self.summary.imports:
                    self._effect(
                        "global-write", name, line,
                        f"calls mutating {tail}() on module-level"
                        f" {name!r}",
                    )


def _rng_seeded(call: ast.Call) -> bool:
    candidates = list(call.args) + [
        keyword.value
        for keyword in call.keywords
        if keyword.arg == "seed"
    ]
    if not candidates:
        return False
    first = candidates[0]
    return not (isinstance(first, ast.Constant) and first.value is None)
