"""Per-module summaries: the parse-time half of the project graph.

One :class:`ModuleSummary` is extracted per file with :mod:`ast` — the
target module is **never imported**. A summary records everything the
whole-program layer needs to link modules together without re-reading
source: the symbol table (functions, classes, imports, module-level
names), and per function its parameters, call sites (with enough
structure to resolve callees and map arguments), *direct* side effects,
``raise`` statements and ``EngineConfig`` attribute reads.

Summaries are plain-data and JSON-serialisable, so the incremental lint
cache can persist them keyed on the file's content hash: a warm run
rebuilds the project graph without parsing a single file.

Direct-effect inference recognises five kinds (the transitive closure
is computed by :class:`repro.lint.graph.project.ProjectGraph`):

``wall-clock``
    ``time.time``/``time_ns``, ``datetime.now``/``utcnow``, ``today``
    (monotonic ``perf_counter`` is always fine).
``unseeded-rng``
    unseeded/None-seeded ``default_rng``, legacy ``np.random.*`` draws,
    stdlib ``random`` calls.
``io``
    ``open``/``print``/``input``, ``shutil.*``/``subprocess.*``,
    mutating ``os.*`` calls, ``write_text``/``write_bytes``.
``global-write``
    assignment/mutation of module-level state (including via a
    ``global`` declaration or a mutating method call).
``mutates-param``
    assignment/mutation through a parameter (``p.x = v``,
    ``p.items.append(...)``); at call boundaries the project graph
    re-maps these onto the *caller's* arguments.

Known approximations (documented in ``docs/API.md``): effects behind
unresolvable dynamic dispatch are invisible (the pass under-reports
rather than guessing), conditional effects count unconditionally, and
``Optional[...]``-subscripted annotations are not used for receiver
typing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.base import dotted_name

#: Bump when the summary format or extraction logic changes; part of
#: every summary-cache key, so stale summaries are never reused.
GRAPH_VERSION = "adalint-graph/1"

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "add",
        "discard", "update", "setdefault", "popitem", "write",
        "writelines", "appendleft", "sort", "reverse",
    }
)

#: Legacy ``np.random`` module-level draws (shared global RNG).
_LEGACY_NP_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "bytes",
        "normal", "uniform", "standard_normal", "beta", "binomial",
        "poisson", "exponential", "gamma", "laplace", "lognormal",
        "multinomial", "multivariate_normal", "RandomState",
    }
)

_IO_NAMES = frozenset({"open", "print", "input"})
_IO_PREFIXES = ("shutil.", "subprocess.")
_IO_OS_TAILS = frozenset(
    {
        "remove", "unlink", "rename", "replace", "makedirs", "mkdir",
        "rmdir", "removedirs", "symlink", "chmod", "truncate",
    }
)
_IO_TAILS = frozenset({"write_text", "write_bytes"})


@dataclass(frozen=True)
class Effect:
    """One direct (or re-mapped) side effect with its origin site."""

    kind: str  #: wall-clock | unseeded-rng | io | global-write | mutates-param
    detail: str  #: offending chain, global name or parameter name
    module: str  #: module holding the *direct* effect
    qualname: str  #: function holding the direct effect
    line: int
    description: str

    def sort_key(self) -> Tuple:
        return (self.kind, self.detail, self.module, self.qualname,
                self.line)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "module": self.module,
            "qualname": self.qualname,
            "line": self.line,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Effect":
        return cls(**doc)


@dataclass(frozen=True)
class CallSite:
    """One call with a resolvable callee reference and argument roots.

    ``ref`` is a tuple describing how to find the callee:

    * ``("name", n)`` — plain name (local function, class, or import);
    * ``("dotted", "a.b.c")`` — attribute chain rooted in a name;
    * ``("self", m)`` — ``self.m(...)`` inside a class body;
    * ``("typed", chain, m)`` — method on a receiver whose class is
      known from a local construction or a parameter annotation;
    * ``("ctor-method", chain, m)`` — ``Cls(...).m(...)``.

    ``arg_roots``/``kwarg_roots`` classify each argument as
    ``"param:<name>"``, ``"global:<name>"`` or ``"other"``;
    ``receiver_root`` does the same for a method receiver (``"fresh"``
    for just-constructed objects), which is how parameter-mutation
    effects are re-mapped across call boundaries.
    """

    line: int
    ref: Tuple[str, ...]
    arg_roots: Tuple[str, ...] = ()
    kwarg_roots: Tuple[Tuple[str, str], ...] = ()
    receiver_root: str = "none"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "ref": list(self.ref),
            "arg_roots": list(self.arg_roots),
            "kwarg_roots": [list(pair) for pair in self.kwarg_roots],
            "receiver_root": self.receiver_root,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CallSite":
        return cls(
            line=doc["line"],
            ref=tuple(doc["ref"]),
            arg_roots=tuple(doc["arg_roots"]),
            kwarg_roots=tuple(
                (name, root) for name, root in doc["kwarg_roots"]
            ),
            receiver_root=doc["receiver_root"],
        )


@dataclass
class FunctionInfo:
    """Summary of one function or method."""

    qualname: str  #: ``fn`` or ``Class.method`` (module-relative)
    line: int
    params: List[str] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)
    class_name: Optional[str] = None
    direct_effects: List[Effect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: ``(exception chain, line)``; the chain is '' for bare ``raise``
    #: and for non-name expressions (both are skipped by ADA011).
    raises: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(field, line)`` for reads of ``self.config.<field>`` (or a
    #: local alias of ``self.config``) — the ADA010 surface.
    config_reads: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        parts = self.qualname.split(".")
        name = parts[-1]
        if name.startswith("_") and not (
            name.startswith("__") and name.endswith("__")
        ):
            return False
        return all(not part.startswith("_") for part in parts[:-1])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "annotations": dict(self.annotations),
            "class_name": self.class_name,
            "direct_effects": [e.to_dict() for e in self.direct_effects],
            "calls": [c.to_dict() for c in self.calls],
            "raises": [list(pair) for pair in self.raises],
            "config_reads": [list(pair) for pair in self.config_reads],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=doc["qualname"],
            line=doc["line"],
            params=list(doc["params"]),
            annotations=dict(doc["annotations"]),
            class_name=doc["class_name"],
            direct_effects=[
                Effect.from_dict(e) for e in doc["direct_effects"]
            ],
            calls=[CallSite.from_dict(c) for c in doc["calls"]],
            raises=[(chain, line) for chain, line in doc["raises"]],
            config_reads=[
                (name, line) for name, line in doc["config_reads"]
            ],
        )


@dataclass
class ClassInfo:
    """Summary of one class: its bases and method names."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)  #: dotted chains
    methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassInfo":
        return cls(**doc)


@dataclass
class ModuleSummary:
    """Everything the project graph keeps about one module."""

    module: str
    relpath: str
    #: local name -> (target module, symbol or None for plain imports)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(
        default_factory=dict
    )
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_names: List[str] = field(default_factory=list)
    parse_failed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph_version": GRAPH_VERSION,
            "module": self.module,
            "relpath": self.relpath,
            "imports": {
                name: list(target) for name, target in self.imports.items()
            },
            "functions": {
                name: info.to_dict()
                for name, info in self.functions.items()
            },
            "classes": {
                name: info.to_dict() for name, info in self.classes.items()
            },
            "module_names": list(self.module_names),
            "parse_failed": self.parse_failed,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=doc["module"],
            relpath=doc["relpath"],
            imports={
                name: (target[0], target[1])
                for name, target in doc["imports"].items()
            },
            functions={
                name: FunctionInfo.from_dict(info)
                for name, info in doc["functions"].items()
            },
            classes={
                name: ClassInfo.from_dict(info)
                for name, info in doc["classes"].items()
            },
            module_names=list(doc["module_names"]),
            parse_failed=doc.get("parse_failed", False),
        )


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative POSIX path.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``;
    ``benchmarks/test_x.py`` -> ``benchmarks.test_x``; a package's
    ``__init__.py`` maps to the package itself.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__main__"


def _package_of(module: str, relpath: str) -> str:
    """The package a module's relative imports resolve against."""
    if relpath.endswith("/__init__.py"):
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def extract_summary(
    source_or_tree, relpath: str, module: Optional[str] = None
) -> ModuleSummary:
    """Build a :class:`ModuleSummary` from source text or a parsed tree."""
    module = module or module_name_for(relpath)
    summary = ModuleSummary(module=module, relpath=relpath)
    if isinstance(source_or_tree, ast.AST):
        tree = source_or_tree
    else:
        try:
            tree = ast.parse(source_or_tree)
        except SyntaxError:
            summary.parse_failed = True
            return summary
    package = _package_of(module, relpath)
    _collect_imports(tree, package, summary)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_function(node, None, summary)
        elif isinstance(node, ast.ClassDef):
            _extract_class(node, summary)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    summary.module_names.append(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            summary.module_names.append(element.id)
    summary.module_names = sorted(set(summary.module_names))
    return summary


def _collect_imports(
    tree: ast.AST, package: str, summary: ModuleSummary
) -> None:
    """Record every import binding, including function-level ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name
                summary.imports[local] = (target, None)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                anchor = anchor[: len(anchor) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = (base, alias.name)


def _extract_class(node: ast.ClassDef, summary: ModuleSummary) -> None:
    info = ClassInfo(
        name=node.name,
        line=node.lineno,
        bases=[dotted_name(base) for base in node.bases],
    )
    summary.classes[node.name] = info
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(item.name)
            _extract_function(item, node.name, summary)


def _annotation_chain(annotation) -> str:
    """Dotted chain for a Name / Attribute / string annotation."""
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return ""
    return dotted_name(annotation)


def _extract_function(
    node, class_name: Optional[str], summary: ModuleSummary
) -> None:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    args = node.args
    ordered = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    params = [arg.arg for arg in ordered]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    annotations = {
        arg.arg: chain
        for arg in ordered
        if (chain := _annotation_chain(arg.annotation))
    }
    info = FunctionInfo(
        qualname=qualname,
        line=node.lineno,
        params=params,
        annotations=annotations,
        class_name=class_name,
    )
    summary.functions[qualname] = info
    extractor = _FunctionExtractor(node, info, summary)
    extractor.run()
    # Nested defs become their own (unlinkable) entries so a parent's
    # call to a local helper can still resolve within the module.
    for nested, nested_class in extractor.nested:
        _extract_function(nested, None, summary)
        nested_info = summary.functions.pop(nested.name, None)
        if nested_info is not None:
            nested_info.qualname = f"{qualname}.<locals>.{nested.name}"
            summary.functions[nested_info.qualname] = nested_info
        del nested_class  # nested classes keep no special handling


class _FunctionExtractor(ast.NodeVisitor):
    """Single-function pass: effects, call sites, raises, config reads."""

    def __init__(
        self, node, info: FunctionInfo, summary: ModuleSummary
    ) -> None:
        self.node = node
        self.info = info
        self.summary = summary
        self.params = set(info.params)
        self.self_name = info.params[0] if (
            info.class_name and info.params
        ) else None
        self.globals_declared: set = set()
        self.local_types: Dict[str, str] = {}
        self.config_aliases: set = set()
        self.nested: List[Tuple[ast.AST, Optional[str]]] = []

    def run(self) -> None:
        self._prescan()
        for statement in self.node.body:
            self.visit(statement)

    # -- pre-pass: local constructed types, config aliases, globals ----
    def _prescan(self) -> None:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = sub.value
                if isinstance(value, ast.Call):
                    chain = dotted_name(value.func)
                    if chain and self._looks_like_class(chain):
                        self.local_types[target.id] = chain
                elif self._is_self_config(value):
                    self.config_aliases.add(target.id)

    def _looks_like_class(self, chain: str) -> bool:
        tail = chain.rsplit(".", 1)[-1]
        return bool(tail[:1].isupper())

    def _is_self_config(self, node) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "config"
            and isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
        )

    # -- nested definitions: summarised separately, not descended ------
    def visit_FunctionDef(self, node) -> None:
        self.nested.append((node, None))

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:  # bodies stay opaque
        pass

    # -- argument/target root classification ---------------------------
    def _root_of(self, node) -> str:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id in self.params:
                return f"param:{node.id}"
            if node.id in self.local_types or node.id in (
                self.config_aliases
            ):
                return "other"
            if node.id in self.summary.imports or node.id in (
                self.summary.module_names
            ):
                return f"global:{node.id}"
            if node.id in self.globals_declared:
                return f"global:{node.id}"
            return "other"
        if isinstance(node, ast.Call):
            return "fresh"
        return "other"

    def _effect(self, kind: str, detail: str, line: int, text: str):
        self.info.direct_effects.append(
            Effect(
                kind=kind,
                detail=detail,
                module=self.summary.module,
                qualname=self.info.qualname,
                line=line,
                description=text,
            )
        )

    # -- mutation targets ----------------------------------------------
    def _inner_attr(self, node) -> str:
        """Attribute name closest to the chain's base (``''`` if none)."""
        inner = ""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                inner = node.attr
            node = node.value
        return inner

    def _is_self_private(self, root: str, inner_attr: str) -> bool:
        """``self._x``-style access: treated as internal memoisation.

        Writes to underscore-private attributes of ``self`` are a
        deliberate blind spot (lazy caches like ``self._patient_ids``
        would otherwise poison every effect closure); documented as a
        known approximation.
        """
        return (
            self.self_name is not None
            and root == f"param:{self.self_name}"
            and inner_attr.startswith("_")
        )

    def _check_store_target(self, target, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element, line)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._effect(
                    "global-write",
                    target.id,
                    line,
                    f"writes module global {target.id!r}",
                )
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = self._root_of(target)
        if self._is_self_private(root, self._inner_attr(target)):
            return
        if root.startswith("param:"):
            name = root.split(":", 1)[1]
            self._effect(
                "mutates-param",
                name,
                line,
                f"mutates state reachable from parameter {name!r}",
            )
        elif root.startswith("global:"):
            name = root.split(":", 1)[1]
            self._effect(
                "global-write",
                name,
                line,
                f"mutates module-level state {name!r}",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno)
        self.generic_visit(node)

    # -- raises ---------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        chain = ""
        exc = node.exc
        if isinstance(exc, ast.Call):
            chain = dotted_name(exc.func)
        elif exc is not None:
            chain = dotted_name(exc)
            # ``raise exc`` re-raising a caught variable is not a type
            # reference; only Name/Attribute chains that look like
            # classes are recorded.
            if chain and not chain.rsplit(".", 1)[-1][:1].isupper():
                chain = ""
        self.info.raises.append((chain, node.lineno))
        self.generic_visit(node)

    # -- config reads ----------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            base = node.value
            if self._is_self_config(base) or (
                isinstance(base, ast.Name)
                and base.id in self.config_aliases
            ):
                self.info.config_reads.append((node.attr, node.lineno))
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._detect_call_effects(node)
        ref, receiver_root = self._callee_ref(node.func)
        if ref is not None:
            self.info.calls.append(
                CallSite(
                    line=node.lineno,
                    ref=ref,
                    arg_roots=tuple(
                        self._root_of(arg)
                        for arg in node.args
                        if not isinstance(arg, ast.Starred)
                    ),
                    kwarg_roots=tuple(
                        (keyword.arg, self._root_of(keyword.value))
                        for keyword in node.keywords
                        if keyword.arg is not None
                    ),
                    receiver_root=receiver_root,
                )
            )
        self.generic_visit(node)

    def _callee_ref(self, func):
        if isinstance(func, ast.Name):
            return ("name", func.id), "none"
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if self.self_name is not None and base.id == (
                    self.self_name
                ):
                    return ("self", method), f"param:{base.id}"
                if base.id in self.local_types:
                    return (
                        ("typed", self.local_types[base.id], method),
                        "other",
                    )
                if base.id in self.params:
                    chain = self.info.annotations.get(base.id, "")
                    if chain:
                        return (
                            ("typed", chain, method),
                            f"param:{base.id}",
                        )
                chain = dotted_name(func)
                if chain:
                    return ("dotted", chain), self._root_of(base)
            elif isinstance(base, ast.Call):
                ctor = dotted_name(base.func)
                if ctor and self._looks_like_class(ctor):
                    return ("ctor-method", ctor, method), "fresh"
            else:
                chain = dotted_name(func)
                if chain:
                    return ("dotted", chain), self._root_of(base)
        return None, "none"

    def _detect_call_effects(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if not chain:
            return
        parts = chain.split(".")
        tail = parts[-1]
        line = node.lineno
        # wall clock (mirrors ADA002)
        if (
            (tail in ("time", "time_ns") and "time" in parts[:-1])
            or (tail in ("now", "utcnow") and "datetime" in parts[:-1])
            or (
                tail == "today"
                and any(p in ("date", "datetime") for p in parts[:-1])
            )
        ):
            self._effect(
                "wall-clock", chain, line, f"reads the wall clock"
                f" via {chain}()"
            )
        # unseeded randomness (mirrors ADA001)
        if tail == "default_rng" and not _rng_seeded(node):
            self._effect(
                "unseeded-rng", chain, line,
                "draws from an unseeded default_rng()",
            )
        elif chain.startswith(("np.random.", "numpy.random.")) and (
            tail in _LEGACY_NP_RANDOM
        ):
            self._effect(
                "unseeded-rng", chain, line,
                f"uses the process-global RNG via {chain}()",
            )
        elif parts[0] == "random" and len(parts) > 1 and (
            self.summary.imports.get("random", ("", None))[0] == "random"
        ):
            self._effect(
                "unseeded-rng", chain, line,
                f"uses stdlib random global state via {chain}()",
            )
        # I/O
        if (
            (len(parts) == 1 and tail in _IO_NAMES)
            or chain.startswith(_IO_PREFIXES)
            or (parts[0] == "os" and tail in _IO_OS_TAILS)
            or tail in _IO_TAILS
            or chain in ("sys.stdout.write", "sys.stderr.write")
        ):
            self._effect("io", chain, line, f"performs I/O via {chain}()")
        # mutating method calls on parameters / module state
        if tail in _MUTATORS and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            root = self._root_of(receiver)
            if self._is_self_private(root, self._inner_attr(node.func)):
                return
            if root.startswith("param:"):
                name = root.split(":", 1)[1]
                self._effect(
                    "mutates-param", name, line,
                    f"calls mutating {tail}() on parameter {name!r}",
                )
            elif root.startswith("global:"):
                name = root.split(":", 1)[1]
                # ``np.sort(x)`` is a pure module function, not a
                # mutation of ``np``: only names *assigned* at module
                # level (or declared ``global``) count as mutable
                # module state here.
                if name not in self.summary.imports:
                    self._effect(
                        "global-write", name, line,
                        f"calls mutating {tail}() on module-level"
                        f" {name!r}",
                    )


def _rng_seeded(call: ast.Call) -> bool:
    candidates = list(call.args) + [
        keyword.value
        for keyword in call.keywords
        if keyword.arg == "seed"
    ]
    if not candidates:
        return False
    first = candidates[0]
    return not (isinstance(first, ast.Constant) and first.value is None)
