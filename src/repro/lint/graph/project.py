"""Whole-program linking: symbol table, call graph, effect closure.

:class:`ProjectGraph` joins per-module :class:`ModuleSummary` objects
into one project-wide view. It resolves call sites across module
boundaries (through imports, ``self``, annotated parameters and locally
constructed receivers) and runs a fixed-point pass that propagates side
effects up the call graph, so a rule can ask "is this function
*transitively* effect-free?" and receive the originating effect sites
as evidence.

Resolution is deliberately an **under-approximation**: a call the
linker cannot bind (dynamic dispatch, untyped attribute access,
higher-order values) contributes nothing, which keeps inter-procedural
rules free of false positives at the cost of missing effects hidden
behind such calls. The approximations are documented in
``docs/API.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.graph.summary import (
    CallSite,
    Effect,
    FunctionInfo,
    ModuleSummary,
)


@dataclass(frozen=True)
class LockEdge:
    """One lock-order edge: ``source`` held while ``target`` acquired.

    ``via`` is empty for a lexically nested acquisition and the callee
    qualid when the target lock is taken somewhere below a call made
    with ``source`` held.
    """

    source: str  #: canonical token, e.g. ``repro.kdb.shards:ShardedDocumentStore._slock``
    target: str
    module: str  #: module holding the evidence site
    qualname: str  #: function holding the evidence site
    line: int
    via: str = ""

    def describe(self) -> str:
        src = self.source.rpartition(":")[2]
        dst = self.target.rpartition(":")[2]
        where = f"{self.qualname}:{self.line}"
        if self.via:
            callee = self.via.rpartition(":")[2]
            return (
                f"{where} holds {src} and calls {callee},"
                f" which acquires {dst}"
            )
        return f"{where} acquires {dst} while holding {src}"


@dataclass(frozen=True)
class BlockingEvidence:
    """Origin site of one (possibly transitive) blocking operation."""

    op: str
    module: str
    qualname: str
    line: int

    def sort_key(self) -> Tuple:
        return (self.module, self.qualname, self.line, self.op)

#: Builtins that are classes the resolver should not chase.
_BUILTIN_NAMES = frozenset(
    {
        "print", "open", "input", "len", "range", "enumerate", "zip",
        "map", "filter", "sorted", "reversed", "list", "dict", "set",
        "tuple", "frozenset", "str", "int", "float", "bool", "bytes",
        "type", "isinstance", "issubclass", "getattr", "setattr",
        "hasattr", "delattr", "repr", "hash", "id", "iter", "next",
        "min", "max", "sum", "abs", "round", "divmod", "pow", "any",
        "all", "vars", "dir", "callable", "super", "format", "ord",
        "chr", "slice", "object", "property", "staticmethod",
        "classmethod", "Exception", "ValueError", "TypeError",
        "KeyError", "IndexError", "RuntimeError", "AttributeError",
        "NotImplementedError", "StopIteration", "OSError",
    }
)


class ProjectGraph:
    """Linked view over a set of module summaries.

    Functions are addressed by *qualified id* strings
    ``"<module>:<qualname>"``, e.g.
    ``"repro.core.engine:ADAHealth._run_goal"``.
    """

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        #: class name -> [(module, ClassInfo)] for typed-receiver lookup.
        self._classes_by_name: Dict[str, List[Tuple[str, str]]] = {}
        for module, summary in self.modules.items():
            for class_name in summary.classes:
                self._classes_by_name.setdefault(class_name, []).append(
                    (module, class_name)
                )
        self._effects: Dict[str, Tuple[Effect, ...]] = {}
        self._callees: Dict[str, List[Tuple[str, CallSite]]] = {}
        self._resolved = False
        self._acquired: Dict[str, FrozenSet[str]] = {}
        self._blocking: Dict[str, Tuple[BlockingEvidence, ...]] = {}
        self._lock_edges: Optional[Tuple[LockEdge, ...]] = None
        self._entry_held: Optional[Dict[str, FrozenSet[str]]] = None

    # ------------------------------------------------------------------
    # Lookup primitives
    # ------------------------------------------------------------------
    def function(self, qualid: str) -> Optional[FunctionInfo]:
        module, _, qualname = qualid.partition(":")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.functions.get(qualname)

    def all_functions(self) -> Iterable[Tuple[str, FunctionInfo]]:
        for module, summary in self.modules.items():
            for qualname, info in summary.functions.items():
                yield f"{module}:{qualname}", info

    def _follow_import(
        self, module: str, name: str
    ) -> Optional[Tuple[str, Optional[str]]]:
        """Resolve a local name through the module's import table.

        Returns ``(target_module, symbol)``: symbol is ``None`` when the
        name binds a whole module (``import x`` / ``from p import mod``).
        """
        summary = self.modules.get(module)
        if summary is None:
            return None
        target = summary.imports.get(name)
        if target is None:
            return None
        target_module, symbol = target
        if symbol is None:
            return (target_module, None)
        # ``from pkg import thing``: thing may itself be a module.
        candidate = (
            f"{target_module}.{symbol}" if target_module else symbol
        )
        if candidate in self.modules:
            return (candidate, None)
        return (target_module, symbol)

    def resolve_symbol(
        self, module: str, chain: str, _seen: Optional[Set] = None
    ) -> Optional[str]:
        """Resolve a dotted chain in ``module`` to a function qualid.

        Handles plain local functions, imported functions, module-dotted
        chains (``mod.fn`` / ``pkg.mod.Class.method``) and re-exports,
        following at most a short alias chain.
        """
        _seen = _seen or set()
        key = (module, chain)
        if key in _seen or len(_seen) > 16:
            return None
        _seen.add(key)
        summary = self.modules.get(module)
        if summary is None:
            return None
        head, _, rest = chain.partition(".")
        # Local function (or Class.method written out locally).
        if chain in summary.functions:
            return f"{module}:{chain}"
        if not rest:
            if head in summary.classes:
                return None  # bare class reference, not a function
            followed = self._follow_import(module, head)
            if followed is None:
                return None
            target_module, symbol = followed
            if symbol is None:
                return None  # a module object, not callable
            return self.resolve_symbol(
                target_module, symbol, _seen
            ) or self._class_init(target_module, symbol)
        # Dotted: ``head`` is a local class, an imported symbol, or a
        # (possibly aliased) module.
        if head in summary.classes:
            return self._resolve_method(module, head, rest)
        followed = self._follow_import(module, head)
        if followed is not None:
            target_module, symbol = followed
            if symbol is None:
                return self.resolve_symbol(target_module, rest, _seen)
            # ``from m import Cls`` then ``Cls.method(...)``
            resolved_class = self._resolve_class(target_module, symbol)
            if resolved_class is not None:
                class_module, class_name = resolved_class
                return self._resolve_method(
                    class_module, class_name, rest
                )
            return None
        # Fully qualified chain that happens to match a known module:
        # peel dots from the right until the prefix names a module.
        split = chain.rfind(".")
        while split > 0:
            prefix, tail = chain[:split], chain[split + 1:]
            if prefix in self.modules and tail:
                return self.resolve_symbol(prefix, tail, _seen)
            split = chain.rfind(".", 0, split)
        return None

    def _class_init(
        self, module: str, symbol: str
    ) -> Optional[str]:
        """``Cls`` used as a callable resolves to ``Cls.__init__``."""
        resolved = self._resolve_class(module, symbol)
        if resolved is None:
            return None
        class_module, class_name = resolved
        return self._resolve_method(class_module, class_name, "__init__")

    def _resolve_class(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """Find the module actually defining class ``name``."""
        if _depth > 8:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary.classes:
            return (module, name)
        followed = self._follow_import(module, name)
        if followed is not None:
            target_module, symbol = followed
            if symbol is not None:
                return self._resolve_class(
                    target_module, symbol, _depth + 1
                )
        return None

    def _resolve_method(
        self, module: str, class_name: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve ``Class.method`` walking base classes when needed."""
        if _depth > 8:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        class_info = summary.classes.get(class_name)
        if class_info is None:
            return None
        qualname = f"{class_name}.{method}"
        if qualname in summary.functions:
            return f"{module}:{qualname}"
        for base_chain in class_info.bases:
            base_head = base_chain.split(".")[0]
            if base_chain in summary.classes:
                resolved = self._resolve_method(
                    module, base_chain, method, _depth + 1
                )
            elif base_head in summary.classes:
                resolved = self._resolve_method(
                    module, base_head, method, _depth + 1
                )
            else:
                base_class = self._resolve_class(
                    module, base_chain.rsplit(".", 1)[-1]
                )
                resolved = (
                    self._resolve_method(
                        base_class[0], base_class[1], method, _depth + 1
                    )
                    if base_class is not None
                    else None
                )
            if resolved is not None:
                return resolved
        return None

    def _resolve_typed_method(
        self, module: str, chain: str, method: str
    ) -> Optional[str]:
        """Method on a receiver typed by constructor or annotation."""
        class_name = chain.rsplit(".", 1)[-1]
        resolved_class = self._resolve_class(module, class_name)
        if resolved_class is None:
            # Fall back to a unique global class-name match (covers
            # string annotations like ``engine: "ADAHealth"`` without
            # an import in scope).
            candidates = self._classes_by_name.get(class_name, [])
            if len(candidates) != 1:
                return None
            resolved_class = candidates[0]
        class_module, class_name = resolved_class
        return self._resolve_method(class_module, class_name, method)

    def resolve_call(
        self, module: str, qualname: str, site: CallSite
    ) -> Optional[str]:
        """Resolve one recorded call site to a callee qualid."""
        kind = site.ref[0]
        summary = self.modules.get(module)
        if kind == "name":
            name = site.ref[1]
            if name in _BUILTIN_NAMES:
                return None
            # A sibling nested helper of the same parent function.
            if summary is not None:
                parent = qualname.rsplit(".<locals>.", 1)[0]
                nested = f"{parent}.<locals>.{name}"
                if nested in summary.functions:
                    return f"{module}:{nested}"
            return self.resolve_symbol(module, name)
        if kind == "dotted":
            return self.resolve_symbol(module, site.ref[1])
        if kind == "self":
            info = (
                summary.functions.get(qualname) if summary else None
            )
            if info is None or info.class_name is None:
                return None
            return self._resolve_method(
                module, info.class_name, site.ref[1]
            )
        if kind in ("typed", "ctor-method"):
            return self._resolve_typed_method(
                module, site.ref[1], site.ref[2]
            )
        return None

    # ------------------------------------------------------------------
    # Call graph + effect fixed point
    # ------------------------------------------------------------------
    def _link(self) -> None:
        if self._resolved:
            return
        self._resolved = True
        for qualid, info in self.all_functions():
            module = qualid.partition(":")[0]
            edges: List[Tuple[str, CallSite]] = []
            for site in info.calls:
                callee = self.resolve_call(module, info.qualname, site)
                if callee is not None and callee != qualid:
                    edges.append((callee, site))
            self._callees[qualid] = edges

    def callees(self, qualid: str) -> List[Tuple[str, CallSite]]:
        self._link()
        return self._callees.get(qualid, [])

    def effects(self, qualid: str) -> Tuple[Effect, ...]:
        """Transitive effects of ``qualid`` (direct + via callees).

        Parameter-mutation effects are translated at each call
        boundary: a callee mutating its parameter ``p`` becomes a
        caller effect only when the caller passed one of *its own*
        parameters (-> ``mutates-param``) or module state
        (-> ``global-write``) in that slot; fresh/local receivers
        absorb the mutation.
        """
        self._link()
        cached = self._effects.get(qualid)
        if cached is not None:
            return cached
        in_progress: Set[str] = set()

        def compute(target: str) -> Tuple[Effect, ...]:
            done = self._effects.get(target)
            if done is not None:
                return done
            if target in in_progress:  # recursion: break the cycle
                info = self.function(target)
                return tuple(info.direct_effects) if info else ()
            in_progress.add(target)
            info = self.function(target)
            if info is None:
                in_progress.discard(target)
                return ()
            collected: List[Effect] = list(info.direct_effects)
            for callee, site in self._callees.get(target, []):
                callee_info = self.function(callee)
                for effect in compute(callee):
                    mapped = _map_effect(effect, site, callee_info)
                    if mapped is not None:
                        collected.append(mapped)
            in_progress.discard(target)
            result = tuple(
                sorted(set(collected), key=Effect.sort_key)
            )
            self._effects[target] = result
            return result

        return compute(qualid)

    # ------------------------------------------------------------------
    # Lock model: tokens, order graph, cycles, held-at-entry
    # ------------------------------------------------------------------
    def _find_lock_owner(
        self, module: str, class_name: str, attr: str, _depth: int = 0
    ) -> Optional[str]:
        """Canonical token for lock attribute ``attr`` on a class.

        Walks base classes so an inherited lock canonicalises to its
        *defining* class — ``repro.kdb.shards:ShardedDocumentStore``
        and its subclasses agree on one token per lock.
        """
        if _depth > 8:
            return None
        summary = self.modules.get(module)
        class_info = (
            summary.classes.get(class_name) if summary else None
        )
        if class_info is None:
            return None
        if attr in class_info.lock_attrs:
            return f"{module}:{class_name}.{attr}"
        for base_chain in class_info.bases:
            resolved = self._resolve_class(
                module, base_chain.rsplit(".", 1)[-1]
            )
            if resolved is not None and resolved != (
                module, class_name
            ):
                token = self._find_lock_owner(
                    resolved[0], resolved[1], attr, _depth + 1
                )
                if token is not None:
                    return token
        return None

    def lock_token(
        self, module: str, class_name: Optional[str], ref: str
    ) -> Optional[str]:
        """Resolve a summary lock reference to a canonical token.

        Tokens are ``"<module>:<Class>.<attr>"`` for instance locks
        (validated against the defining class's ``lock_attrs``) and
        ``"<module>:<NAME>"`` for module-level locks. Unresolvable
        references yield ``None`` — the rules under-report rather than
        guess.
        """
        kind, _, rest = ref.partition(":")
        if kind == "self":
            if class_name is None:
                return None
            return self._find_lock_owner(module, class_name, rest)
        if kind == "global":
            return f"{module}:{rest}"
        if kind == "typed":
            chain, _, attr = rest.rpartition(":")
            resolved = self._resolve_class(
                module, chain.rsplit(".", 1)[-1]
            )
            if resolved is None:
                candidates = self._classes_by_name.get(
                    chain.rsplit(".", 1)[-1], []
                )
                if len(candidates) != 1:
                    return None
                resolved = candidates[0]
            return self._find_lock_owner(resolved[0], resolved[1], attr)
        if kind == "self-method":
            method, _, attr = rest.rpartition(":")
            if class_name is None:
                return None
            method_id = self._resolve_method(
                module, class_name, method
            )
            info = self.function(method_id) if method_id else None
            if info is None or not info.returns:
                return None
            returned = f"typed:{info.returns}:{attr}"
            return self.lock_token(
                method_id.partition(":")[0], class_name, returned
            )
        return None

    def held_tokens(
        self,
        module: str,
        class_name: Optional[str],
        refs: Iterable[str],
    ) -> FrozenSet[str]:
        """Resolve a held-reference set, dropping what cannot bind."""
        tokens = {
            self.lock_token(module, class_name, ref) for ref in refs
        }
        tokens.discard(None)
        return frozenset(tokens)

    def acquired_locks(self, qualid: str) -> FrozenSet[str]:
        """Lock tokens ``qualid`` may acquire, transitively."""
        self._link()
        cached = self._acquired.get(qualid)
        if cached is not None:
            return cached
        in_progress: Set[str] = set()

        def compute(target: str) -> FrozenSet[str]:
            done = self._acquired.get(target)
            if done is not None:
                return done
            info = self.function(target)
            if info is None:
                return frozenset()
            module = target.partition(":")[0]
            direct = self.held_tokens(
                module,
                info.class_name,
                (acquire.ref for acquire in info.acquires),
            )
            if target in in_progress:  # recursion: break the cycle
                return direct
            in_progress.add(target)
            collected = set(direct)
            for callee, _ in self._callees.get(target, []):
                collected.update(compute(callee))
            in_progress.discard(target)
            result = frozenset(collected)
            self._acquired[target] = result
            return result

        return compute(qualid)

    def lock_order_edges(self) -> Tuple[LockEdge, ...]:
        """Every lock-order edge in the project, with evidence sites.

        Two sources: a lexically nested acquisition (``with a: with
        b:``) and a call made with locks held into a function whose
        transitive acquisition set is non-empty. Same-token edges are
        skipped — reentrant ``RLock`` nesting carries no order.
        """
        if self._lock_edges is not None:
            return self._lock_edges
        self._link()
        edges: Set[LockEdge] = set()
        for qualid, info in self.all_functions():
            module = qualid.partition(":")[0]
            for acquire in info.acquires:
                target = self.lock_token(
                    module, info.class_name, acquire.ref
                )
                if target is None:
                    continue
                for under_ref in acquire.under:
                    source = self.lock_token(
                        module, info.class_name, under_ref
                    )
                    if source is not None and source != target:
                        edges.add(
                            LockEdge(
                                source=source,
                                target=target,
                                module=module,
                                qualname=info.qualname,
                                line=acquire.line,
                            )
                        )
            for callee, site in self._callees.get(qualid, []):
                if not site.held_locks:
                    continue
                held = self.held_tokens(
                    module, info.class_name, site.held_locks
                )
                if not held:
                    continue
                for target in self.acquired_locks(callee):
                    for source in held:
                        if source != target:
                            edges.add(
                                LockEdge(
                                    source=source,
                                    target=target,
                                    module=module,
                                    qualname=info.qualname,
                                    line=site.line,
                                    via=callee,
                                )
                            )
        self._lock_edges = tuple(
            sorted(
                edges,
                key=lambda e: (
                    e.source, e.target, e.module, e.qualname, e.line
                ),
            )
        )
        return self._lock_edges

    def lock_cycles(self) -> List[List[LockEdge]]:
        """Cycles in the lock-order graph (potential deadlocks).

        Each cycle is returned once — anchored at its lexicographically
        smallest token — as the list of edges along one shortest path,
        each carrying its evidence site.
        """
        adjacency: Dict[str, Dict[str, LockEdge]] = {}
        for edge in self.lock_order_edges():
            adjacency.setdefault(edge.source, {}).setdefault(
                edge.target, edge
            )
        cycles: List[List[LockEdge]] = []
        for start in sorted(adjacency):
            parents: Dict[str, Optional[str]] = {start: None}
            frontier = deque([start])
            path: Optional[List[str]] = None
            while frontier and path is None:
                current = frontier.popleft()
                for nxt in sorted(adjacency.get(current, {})):
                    if nxt == start:
                        chain = [current]
                        walk = parents[current]
                        while walk is not None:
                            chain.append(walk)
                            walk = parents[walk]
                        path = list(reversed(chain))
                        break
                    if nxt not in parents:
                        parents[nxt] = current
                        frontier.append(nxt)
            if path is None or min(path) != start:
                continue
            hops = list(zip(path, path[1:] + [start]))
            cycles.append(
                [adjacency[a][b] for a, b in hops]
            )
        return cycles

    def entry_held(self, qualid: str) -> FrozenSet[str]:
        """Locks provably held whenever ``qualid`` is entered.

        Computed as the intersection, over every resolved call edge
        into the function, of the caller's entry set union the locks
        held at the call site. Public functions get the empty set — an
        out-of-graph caller may always arrive lock-free; the analysis
        only trusts call-context for underscore-private helpers.
        """
        if self._entry_held is None:
            self._entry_held = self._compute_entry_held()
        return self._entry_held.get(qualid, frozenset())

    @staticmethod
    def _context_trusted(info: FunctionInfo) -> bool:
        name = info.qualname.rsplit(".", 1)[-1]
        return name.startswith("_") and not (
            name.startswith("__") and name.endswith("__")
        )

    def _compute_entry_held(self) -> Dict[str, FrozenSet[str]]:
        self._link()
        incoming: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
        for qualid, info in self.all_functions():
            module = qualid.partition(":")[0]
            for callee, site in self._callees.get(qualid, []):
                tokens = self.held_tokens(
                    module, info.class_name, site.held_locks
                )
                incoming.setdefault(callee, []).append(
                    (qualid, tokens)
                )
        top = object()  # not-yet-constrained lattice top
        entry: Dict[str, object] = {}
        for qualid, info in self.all_functions():
            if not self._context_trusted(info) or qualid not in (
                incoming
            ):
                entry[qualid] = frozenset()
            else:
                entry[qualid] = top
        changed = True
        while changed:
            changed = False
            for qualid, edges in incoming.items():
                current = entry.get(qualid, frozenset())
                if current is not top and current == frozenset():
                    continue  # bottom already; cannot shrink further
                contributions = []
                for caller, tokens in edges:
                    caller_entry = entry.get(caller, frozenset())
                    if caller_entry is top:
                        continue  # unconstrained caller: no vote yet
                    contributions.append(caller_entry | tokens)
                if not contributions:
                    continue  # pure top-cycle: stays top for now
                new_value = frozenset.intersection(*contributions)
                if current is top or new_value < current:
                    entry[qualid] = new_value
                    changed = True
        return {
            qualid: (
                frozenset() if value is top else value  # dead cycles
            )
            for qualid, value in entry.items()
        }

    def transitive_blocking(
        self, qualid: str
    ) -> Tuple[BlockingEvidence, ...]:
        """Blocking operations reachable from ``qualid``."""
        self._link()
        cached = self._blocking.get(qualid)
        if cached is not None:
            return cached
        in_progress: Set[str] = set()

        def compute(target: str) -> Tuple[BlockingEvidence, ...]:
            done = self._blocking.get(target)
            if done is not None:
                return done
            info = self.function(target)
            if info is None:
                return ()
            module = target.partition(":")[0]
            direct = tuple(
                BlockingEvidence(
                    op=op.op,
                    module=module,
                    qualname=info.qualname,
                    line=op.line,
                )
                for op in info.blocking
            )
            if target in in_progress:
                return direct
            in_progress.add(target)
            collected = list(direct)
            for callee, _ in self._callees.get(target, []):
                collected.extend(compute(callee))
            in_progress.discard(target)
            result = tuple(
                sorted(set(collected), key=BlockingEvidence.sort_key)
            )
            self._blocking[target] = result
            return result

        return compute(qualid)

    # ------------------------------------------------------------------
    # Reachability / import graph
    # ------------------------------------------------------------------
    def reachable_from(self, qualid: str) -> Set[str]:
        """Every function reachable from ``qualid`` (inclusive)."""
        self._link()
        seen: Set[str] = set()
        frontier = deque([qualid])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            for callee, _ in self._callees.get(current, []):
                if callee not in seen:
                    frontier.append(callee)
        return seen

    def call_path(
        self, start: str, condition
    ) -> Optional[List[str]]:
        """Shortest call chain from ``start`` to a node satisfying
        ``condition`` (a predicate over qualids); ``None`` if none."""
        self._link()
        parents: Dict[str, Optional[str]] = {start: None}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            if condition(current):
                path = []
                walk: Optional[str] = current
                while walk is not None:
                    path.append(walk)
                    walk = parents[walk]
                return list(reversed(path))
            for callee, _ in self._callees.get(current, []):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return None

    def imported_modules(self, module: str) -> Set[str]:
        """Project modules that ``module`` imports (directly)."""
        summary = self.modules.get(module)
        if summary is None:
            return set()
        targets: Set[str] = set()
        for target_module, symbol in summary.imports.values():
            candidates = [target_module]
            if symbol is not None and target_module:
                candidates.append(f"{target_module}.{symbol}")
            elif symbol is not None:
                candidates.append(symbol)
            for candidate in candidates:
                if candidate in self.modules and candidate != module:
                    targets.add(candidate)
                    break
                # ``import repro.core.engine`` binds "repro"; walk up.
                probe = candidate
                while probe and probe not in self.modules:
                    probe = probe.rpartition(".")[0]
                if probe and probe != module:
                    targets.add(probe)
                    break
        return targets

    def import_closure(self, module: str) -> FrozenSet[str]:
        """``module`` plus everything it transitively imports."""
        seen: Set[str] = set()
        frontier = deque([module])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(
                target
                for target in self.imported_modules(current)
                if target not in seen
            )
        return frozenset(seen)

    def dependents(self, module: str) -> Set[str]:
        """Modules whose import closure contains ``module``."""
        return {
            other
            for other in self.modules
            if other != module and module in self.import_closure(other)
        }


def _binding_root(
    site: CallSite, callee: FunctionInfo, target: str
) -> Optional[str]:
    """The caller-side root bound to callee parameter ``target``.

    Mirrors Python's binding: for method-style calls (``self``,
    typed-receiver, ctor-method) the receiver binds ``params[0]`` and
    positional arguments bind the rest; a class used as a callable
    (resolved to ``__init__``) binds ``self`` to the fresh instance.
    Unbindable slots (``*args`` spill, defaults) return ``None`` —
    the mutation is treated as absorbed rather than guessed at.
    """
    params = list(callee.params)
    kind = site.ref[0]
    receiver_binds = kind in ("self", "typed", "ctor-method")
    positional = params
    if receiver_binds and params:
        if params[0] == target:
            return site.receiver_root
        positional = params[1:]
    elif (
        callee.class_name is not None
        and params
        and params[0] in ("self", "cls")
    ):
        # Constructor call (``Cls(...)`` resolved to ``__init__``):
        # the instance slot binds the fresh object, never an argument.
        if params[0] == target:
            return None
        positional = params[1:]
    for name, root in site.kwarg_roots:
        if name == target:
            return root
    for index, root in enumerate(site.arg_roots):
        if index < len(positional) and positional[index] == target:
            return root
    return None


def _map_effect(
    effect: Effect, site: CallSite, callee: Optional[FunctionInfo]
) -> Optional[Effect]:
    """Translate a callee effect into the caller's frame.

    Non-mutation effects (clock, RNG, I/O, global writes) are frame
    independent and propagate as-is, keeping their origin site so the
    report can point at the real source. ``mutates-param`` is re-mapped
    through the argument actually bound at ``site``: a caller parameter
    keeps the effect alive, module state turns it into a global write,
    and fresh/local receivers absorb it.
    """
    if effect.kind != "mutates-param":
        return effect
    if callee is None:
        return None
    root = _binding_root(site, callee, effect.detail)
    if root is None:
        return None
    if root.startswith("param:"):
        return Effect(
            kind="mutates-param",
            detail=root.split(":", 1)[1],
            module=effect.module,
            qualname=effect.qualname,
            line=effect.line,
            description=effect.description,
        )
    if root.startswith("global:"):
        return Effect(
            kind="global-write",
            detail=root.split(":", 1)[1],
            module=effect.module,
            qualname=effect.qualname,
            line=effect.line,
            description=effect.description,
        )
    return None
