"""The :class:`Finding` model and its serialisations.

A finding is one rule violation at one source location. Findings render
in two stable formats: the classic compiler-style human line
(``path:line:col: RULE [severity] message``) and a JSON document
(schema ``adalint/findings/v1``) whose key set is pinned by
``tests/test_lint.py`` so downstream tooling can rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")

#: Schema tag stamped on every JSON report (bump on breaking changes).
FINDINGS_SCHEMA = "adalint/findings/v1"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one ``file:line:col`` location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The human one-liner (compiler style, clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.col}:"
            f" {self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable record (stable key set)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


def report_document(
    findings: List[Finding], files_checked: int
) -> Dict[str, Any]:
    """The full JSON report for one lint run."""
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return {
        "schema": FINDINGS_SCHEMA,
        "files_checked": files_checked,
        "counts": counts,
        "findings": [
            finding.to_dict()
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }
