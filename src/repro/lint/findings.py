"""The :class:`Finding` model and its serialisations.

A finding is one rule violation at one source location. Findings render
in three stable formats: the classic compiler-style human line
(``path:line:col: RULE [severity] message``), a JSON document
(schema ``adalint/findings/v1``) whose key set is pinned by
``tests/test_lint.py`` so downstream tooling can rely on it, and a
SARIF 2.1.0 log (:func:`sarif_document`) for code-scanning UIs — a
fixed mapping from the v1 fields, so the v1 document stays the source
of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")

#: Schema tag stamped on every JSON report (bump on breaking changes).
FINDINGS_SCHEMA = "adalint/findings/v1"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one ``file:line:col`` location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The human one-liner (compiler style, clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.col}:"
            f" {self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable record (stable key set)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


def report_document(
    findings: List[Finding], files_checked: int
) -> Dict[str, Any]:
    """The full JSON report for one lint run."""
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return {
        "schema": FINDINGS_SCHEMA,
        "files_checked": files_checked,
        "counts": counts,
        "findings": [
            finding.to_dict()
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }


#: SARIF spec pin; ``version`` and ``$schema`` in every emitted log.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/"
    "schemas/sarif-schema-2.1.0.json"
)


def sarif_document(
    findings: List[Finding],
    rules: Optional[Sequence[Any]] = None,
    tool_version: str = "",
) -> Dict[str, Any]:
    """The SARIF 2.1.0 log for one lint run.

    Mapping from ``adalint/findings/v1``: one run, one ``result`` per
    finding (``rule`` → ``ruleId``, ``severity`` → ``level``,
    ``path``/``line``/``col`` → a single physical location). ``rules``
    takes the registered rule classes so the driver carries the full
    catalogue (id, name, description, default level) — viewers use it
    to title and group results.
    """
    driver: Dict[str, Any] = {
        "name": "adalint",
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": rule.severity},
            }
            for rule in (rules or [])
        ],
    }
    if tool_version:
        driver["version"] = tool_version
    results = [
        {
            "ruleId": finding.rule_id,
            "level": (
                finding.severity
                if finding.severity in SEVERITIES
                else "warning"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col),
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    return {
        # SARIF spells its schema pointer "$schema"; it is not a
        # docstore query operator.
        "$schema": _SARIF_SCHEMA_URI,  # adalint: disable=ADA007
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
