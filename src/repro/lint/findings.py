"""The :class:`Finding` model and its serialisations.

A finding is one rule violation at one source location. Findings render
in three stable formats: the classic compiler-style human line
(``path:line:col: RULE [severity] message``), a JSON document
(schema ``adalint/findings/v1``) whose key set is pinned by
``tests/test_lint.py`` so downstream tooling can rely on it, and a
SARIF 2.1.0 log (:func:`sarif_document`) for code-scanning UIs — a
fixed mapping from the v1 fields, so the v1 document stays the source
of truth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")

#: Schema tag stamped on every JSON report (bump on breaking changes).
FINDINGS_SCHEMA = "adalint/findings/v1"

#: Top-level fields of the JSON report (the ADA021 consumer contract;
#: ``rule_stats`` is present only when profiling ran).
FINDINGS_FIELDS = (
    "schema",
    "files_checked",
    "counts",
    "findings",
    "rule_stats",
)


def validate_report(document: Dict[str, Any]) -> Dict[str, Any]:
    """Check a findings report is well-formed; returns it (or raises)."""
    if document.get("schema") != FINDINGS_SCHEMA:
        raise ValueError(
            f"unknown findings schema {document.get('schema')!r}"
        )
    unknown = sorted(set(document) - set(FINDINGS_FIELDS))
    if unknown:
        raise ValueError(f"unknown report fields: {unknown}")
    required = [
        name
        for name in FINDINGS_FIELDS
        if name != "rule_stats" and name not in document
    ]
    if required:
        raise ValueError(f"report missing fields: {required}")
    if not isinstance(document["findings"], list):
        raise ValueError("report findings must be a list")
    return document


@dataclass(frozen=True)
class Finding:
    """One rule violation at one ``file:line:col`` location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The human one-liner (compiler style, clickable in editors)."""
        return (
            f"{self.path}:{self.line}:{self.col}:"
            f" {self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable record (stable key set)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


def report_document(
    findings: List[Finding],
    files_checked: int,
    rule_stats: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """The full JSON report for one lint run.

    ``rule_stats`` (per-rule profiling: ``{"wall_s", "findings"}``
    keyed by rule id) is included only when the runner collected it,
    so reports stay byte-compatible for consumers that predate it.
    """
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    document = {
        "schema": FINDINGS_SCHEMA,
        "files_checked": files_checked,
        "counts": counts,
        "findings": [
            finding.to_dict()
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }
    if rule_stats is not None:
        document["rule_stats"] = {
            rule_id: dict(stats)
            for rule_id, stats in sorted(rule_stats.items())
        }
    return validate_report(document)


#: Key under ``partialFingerprints`` carrying adalint's stable
#: finding identity (bump if the fingerprint recipe changes).
FINGERPRINT_KEY = "adalint/v1"


def finding_fingerprint(finding: Finding, line_text: str = "") -> str:
    """Content-relative identity of one finding for baseline diffs.

    Hashes the rule id, the (slash-normalised) path and the stripped
    source line text — deliberately *not* the line number or message,
    so a finding that merely moved (code inserted above it) or whose
    message embeds positions still matches its baseline entry.
    """
    digest = hashlib.sha256()
    for part in (
        finding.rule_id,
        finding.path.replace("\\", "/"),
        line_text.strip(),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


#: SARIF spec pin; ``version`` and ``$schema`` in every emitted log.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/"
    "schemas/sarif-schema-2.1.0.json"
)


def sarif_document(
    findings: List[Finding],
    rules: Optional[Sequence[Any]] = None,
    tool_version: str = "",
    sources: Optional[Dict[str, Sequence[str]]] = None,
) -> Dict[str, Any]:
    """The SARIF 2.1.0 log for one lint run.

    Mapping from ``adalint/findings/v1``: one run, one ``result`` per
    finding (``rule`` → ``ruleId``, ``severity`` → ``level``,
    ``path``/``line``/``col`` → a single physical location). ``rules``
    takes the registered rule classes so the driver carries the full
    catalogue (id, name, description, default level) — viewers use it
    to title and group results. ``sources`` maps a finding's path to
    its source lines; when given, each result carries a
    ``partialFingerprints`` entry (:func:`finding_fingerprint`) that
    baseline diffs match on.
    """
    driver: Dict[str, Any] = {
        "name": "adalint",
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": rule.severity},
            }
            for rule in (rules or [])
        ],
    }
    if tool_version:
        driver["version"] = tool_version
    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": (
                finding.severity
                if finding.severity in SEVERITIES
                else "warning"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col),
                        },
                    }
                }
            ],
        }
        if sources is not None:
            lines = sources.get(finding.path, ())
            text = (
                lines[finding.line - 1]
                if 0 < finding.line <= len(lines)
                else ""
            )
            result["partialFingerprints"] = {
                FINGERPRINT_KEY: finding_fingerprint(finding, text)
            }
        results.append(result)
    return {
        # SARIF spells its schema pointer "$schema"; it is not a
        # docstore query operator.
        "$schema": _SARIF_SCHEMA_URI,  # adalint: disable=ADA007
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
