"""Concurrency & resource-lifecycle rules: ADA015–ADA018.

These rules consume the lock model added to the whole-program graph in
``adalint-graph/2``: per-function lock acquisition sets, held-lock
annotations on call sites / attribute writes / blocking operations, and
the project-wide lock-order graph derived from them
(:meth:`~repro.lint.graph.ProjectGraph.lock_order_edges`).

The analysis is an under-approximation throughout, in the same spirit
as the dataflow rules: a lock reference or call the linker cannot bind
contributes nothing, so every finding is backed by a concrete resolved
evidence chain. The flip side — mutations behind dynamic dispatch or
untracked aliases are invisible — is documented in ``docs/API.md``
under "Concurrency discipline".
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.base import Rule, RuleContext, dotted_name, register
from repro.lint.contracts import resource_protocols
from repro.lint.graph import ProjectGraph
from repro.lint.graph.summary import FunctionInfo
from repro.lint.rules_dataflow import _graph_and_module, _Line

#: Methods that run before (or after) the object is shared between
#: threads, where unguarded writes are the normal construction idiom.
_EXEMPT_METHODS = frozenset(
    {
        "__init__", "__new__", "__post_init__", "__del__",
        "__getstate__", "__setstate__", "__reduce__", "__copy__",
        "__deepcopy__",
    }
)


class _ConcurrencyRule(Rule):
    """Shared setup: bind the graph, then analyse summaries directly.

    Unlike AST rules these do not visit the tree — everything they need
    (acquisitions, writes, blocking ops, call sites) is already in the
    module summary, which keeps them cheap and cache-friendly.
    """

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        self.graph, self.module = _graph_and_module(context)
        summary = self.graph.modules.get(self.module)
        if summary is not None:
            self.check_module(summary)
        return self.findings

    def check_module(self, summary) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- helpers shared by the summary-driven rules --------------------
    def _functions(self, summary):
        for qualname, info in summary.functions.items():
            yield f"{summary.module}:{qualname}", info

    def _tokens(
        self, info: FunctionInfo, refs
    ) -> FrozenSet[str]:
        return self.graph.held_tokens(
            self.module, info.class_name, refs
        )

    def _held_at(
        self, qualid: str, info: FunctionInfo, refs
    ) -> FrozenSet[str]:
        """Locks held at a site: lexical holds plus entry context."""
        return self._tokens(info, refs) | self.graph.entry_held(qualid)

    @staticmethod
    def _short(token: str) -> str:
        return token.rpartition(":")[2]


# ----------------------------------------------------------------------
# ADA015 — the project lock-order graph must be acyclic
# ----------------------------------------------------------------------
@register
class LockOrderCycles(_ConcurrencyRule):
    """ADA015: no cycles in the project-wide lock-order graph.

    Every lexically nested acquisition, and every call made with a lock
    held into a function that transitively acquires another lock,
    contributes an order edge. A cycle means two threads can acquire
    the same locks in opposite orders and deadlock. The canonical edge
    this repo pins is ``Collection._lock -> ShardedDocumentStore.
    _slock`` (collection before store, per ``shards.py``); anything
    inducing the reverse edge is a deadlock waiting for load.

    Each cycle is reported once, in the file holding its
    lexicographically first evidence site, with the full call chain.
    """

    rule_id = "ADA015"
    name = "lock-order-cycle"
    severity = "error"
    description = (
        "lock acquisition order must be globally consistent: cycles in"
        " the inferred lock-order graph are potential deadlocks"
    )
    default_paths = ("src",)

    def check_module(self, summary) -> None:
        for cycle in self.graph.lock_cycles():
            anchor = min(
                cycle,
                key=lambda e: (e.module, e.qualname, e.line),
            )
            if anchor.module != self.module:
                continue
            tokens = [edge.source for edge in cycle]
            tokens.append(cycle[0].source)
            chain = " -> ".join(self._short(t) for t in tokens)
            evidence = "; ".join(
                edge.describe() for edge in cycle
            )
            self.report(
                _Line(anchor.line),
                f"lock-order cycle ({chain}): {evidence}"
                " — two threads taking these paths concurrently can"
                " deadlock",
            )


# ----------------------------------------------------------------------
# ADA016 — guarded attributes must be written under their lock
# ----------------------------------------------------------------------
@register
class GuardedStateWrites(_ConcurrencyRule):
    """ADA016: attributes a class guards with its lock must be written
    under that lock on every path.

    Guard inference: an attribute written at least once while holding a
    lock the class owns is *guarded* — every other write needs the same
    lock (lexically, or proven held at entry for private helpers). For
    classes that spawn threads (``threading.Thread`` constructed inside
    a method) the rule is strict: the object is shared by construction,
    so **all** attribute writes outside ``__init__``-like methods need
    an owned lock.
    """

    rule_id = "ADA016"
    name = "guarded-state-write"
    severity = "error"
    description = (
        "attributes guarded by a class-owned lock (or any attribute of"
        " a thread-spawning class) must only be mutated while holding"
        " the lock"
    )
    default_paths = ("src",)

    def check_module(self, summary) -> None:
        for class_name, class_info in summary.classes.items():
            if not class_info.lock_attrs:
                continue
            owned = self.graph.held_tokens(
                self.module,
                class_name,
                (f"self:{attr}" for attr in class_info.lock_attrs),
            )
            if not owned:
                continue
            methods = [
                (qualid, info)
                for qualid, info in self._functions(summary)
                if info.class_name == class_name
            ]
            guarded: Set[str] = set()
            for qualid, info in methods:
                for write in info.attr_writes:
                    if self._tokens(info, write.held) & owned:
                        guarded.add(write.attr)
            strict = class_info.spawns_threads
            lock_names = set(class_info.lock_attrs)
            for qualid, info in methods:
                method = info.qualname.rsplit(".", 1)[-1]
                if method in _EXEMPT_METHODS:
                    continue
                for write in info.attr_writes:
                    if write.attr in lock_names:
                        continue
                    if not strict and write.attr not in guarded:
                        continue
                    held = self._held_at(qualid, info, write.held)
                    if held & owned:
                        continue
                    lock = self._short(sorted(owned)[0])
                    why = (
                        f"guarded attribute (written under {lock}"
                        " elsewhere)"
                        if write.attr in guarded
                        else "attribute of a thread-spawning class"
                    )
                    self.report(
                        _Line(write.line),
                        f"{info.qualname} writes self.{write.attr}"
                        f" without holding {lock} — {why}; wrap the"
                        " write in the lock or justify with a pragma",
                    )


# ----------------------------------------------------------------------
# ADA017 — resources with a release protocol released on all paths
# ----------------------------------------------------------------------
@register
class MustReleaseResources(Rule):
    """ADA017: resources carrying a release obligation must be released
    on all paths.

    The protocol table (:func:`repro.lint.contracts.
    resource_protocols`) maps constructors to the methods that
    discharge the obligation — e.g. a ``shared_memory.SharedMemory``
    mapping is released only by ``close()``; ``unlink()`` destroys the
    segment but leaks the caller's own mapping. Acceptable custody:
    a ``with`` block, a release call in a ``finally`` block, or handing
    the object to a tracked owner (returned/yielded, stored on an
    object, passed to a call, aliased). A release reachable only on the
    happy path is still a leak on the exception path and is flagged.
    """

    rule_id = "ADA017"
    name = "must-release-resource"
    severity = "error"
    description = (
        "objects with a close/shutdown/unlink protocol must be"
        " released on every path (with / try-finally) or handed to a"
        " tracked owner"
    )
    default_paths = ("src",)

    def run(self, context: RuleContext):
        self.protocols = resource_protocols()
        return super().run(context)

    # -- constructor matching ------------------------------------------
    def _protocol_for(self, call: ast.AST) -> Optional[FrozenSet[str]]:
        if not isinstance(call, ast.Call):
            return None
        chain = dotted_name(call.func)
        if not chain:
            return None
        parts = chain.rsplit(".", 2)
        tail = parts[-1]
        pair = ".".join(parts[-2:]) if len(parts) > 1 else tail
        if pair in self.protocols:
            return self.protocols[pair]
        if tail in self.protocols:
            return self.protocols[tail]
        return None

    # -- per-function lexical analysis ---------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_function(self, func: ast.AST) -> None:
        acquisitions: Dict[str, Tuple[ast.AST, FrozenSet[str]]] = {}
        released_finally: Set[str] = set()
        released_happy: Set[str] = set()
        escaped: Set[str] = set()
        with_managed: Set[str] = set()

        def scan(node: ast.AST, in_finally: bool) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return  # nested functions are checked separately
            if isinstance(node, ast.Try):
                for part in node.body + node.orelse:
                    scan(part, in_finally)
                for handler in node.handlers:
                    scan(handler, in_finally)
                for part in node.finalbody:
                    scan(part, True)
                return
            self._classify(
                node,
                in_finally,
                acquisitions,
                released_finally,
                released_happy,
                escaped,
                with_managed,
            )
            for child in ast.iter_child_nodes(node):
                scan(child, in_finally)

        for statement in getattr(func, "body", []):
            scan(statement, False)

        for name, (site, releases) in acquisitions.items():
            if name in escaped or name in with_managed:
                continue
            if name in released_finally:
                continue
            if name in released_happy:
                self.report(
                    site,
                    f"{name} ({'/'.join(sorted(releases))}) is"
                    " released only on the happy path — an exception"
                    " before the release leaks it; use with or"
                    " try/finally",
                )
            else:
                self.report(
                    site,
                    f"{name} is acquired but never released"
                    f" ({'/'.join(sorted(releases))}); use with,"
                    " try/finally, or hand it to a tracked owner",
                )

    def _classify(
        self,
        node: ast.AST,
        in_finally: bool,
        acquisitions,
        released_finally,
        released_happy,
        escaped,
        with_managed,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if self._protocol_for(item.context_expr) is not None:
                    if isinstance(item.optional_vars, ast.Name):
                        with_managed.add(item.optional_vars.id)
                if isinstance(item.context_expr, ast.Name):
                    with_managed.add(item.context_expr.id)
            return
        if isinstance(node, ast.Assign):
            releases = self._protocol_for(node.value)
            if releases is not None and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    acquisitions[target.id] = (node, releases)
                    return
                # Stored straight into an attribute/subscript: the
                # owner tracks it.
                return
            if isinstance(node.value, ast.Name):
                escaped.add(node.value.id)  # alias: custody transferred
            return
        if isinstance(node, ast.Expr):
            value = node.value
            releases = self._protocol_for(value)
            if releases is not None:
                self.report(
                    node,
                    "resource constructed and discarded without a"
                    f" release ({'/'.join(sorted(releases))}); bind it"
                    " or use with",
                )
                return
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
            ):
                receiver = value.func.value
                inner = self._protocol_for(receiver)
                if inner is not None:
                    # Ctor(...).method(...): released only when the
                    # method discharges the protocol.
                    if value.func.attr not in inner:
                        self.report(
                            node,
                            f"temporary resource released via"
                            f" .{value.func.attr}() which does not"
                            " discharge its protocol"
                            f" ({'/'.join(sorted(inner))}); the"
                            " mapping itself leaks — bind it and"
                            " release in finally",
                        )
                    return
        # Release calls and escapes.
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                held = acquisitions.get(name)
                if held is not None and node.func.attr in held[1]:
                    (released_finally if in_finally else (
                        released_happy
                    )).add(name)
                    return
            for argument in list(node.args) + [
                keyword.value for keyword in node.keywords
            ]:
                for sub in ast.walk(argument):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
            return
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)


# ----------------------------------------------------------------------
# ADA018 — no blocking operations while holding a lock
# ----------------------------------------------------------------------
@register
class NoBlockingUnderLock(_ConcurrencyRule):
    """ADA018: no blocking operation while a lock is held.

    Blocking operations — ``time.sleep``, ``os.fsync``, executor
    ``submit``/``result``/``shutdown``, ``.wait()``/``.join()`` —
    executed under a lock stretch the critical section by an unbounded
    amount and invite convoy effects or deadlock (a joined thread may
    need the very lock the joiner holds). The check is transitive:
    calling, with a lock held, a function that blocks somewhere below
    is flagged at the call site with the originating evidence.
    """

    rule_id = "ADA018"
    name = "no-blocking-under-lock"
    severity = "error"
    description = (
        "time.sleep / fsync / executor waits / thread joins must not"
        " run while holding a lock"
    )
    default_paths = ("src",)

    def check_module(self, summary) -> None:
        for qualid, info in self._functions(summary):
            for op in info.blocking:
                held = self._held_at(qualid, info, op.held)
                if not held:
                    continue
                locks = ", ".join(
                    sorted(self._short(t) for t in held)
                )
                self.report(
                    _Line(op.line),
                    f"{info.qualname} calls {op.op} while holding"
                    f" {locks}; move the blocking call outside the"
                    " critical section",
                )
            for callee, site in self.graph.callees(qualid):
                held = self._held_at(qualid, info, site.held_locks)
                if not held:
                    continue
                if held <= self.graph.entry_held(callee):
                    continue  # the callee's own analysis reports it
                evidence = self.graph.transitive_blocking(callee)
                if not evidence:
                    continue
                first = evidence[0]
                locks = ", ".join(
                    sorted(self._short(t) for t in held)
                )
                self.report(
                    _Line(site.line),
                    f"{info.qualname} holds {locks} while calling"
                    f" {callee.rpartition(':')[2]}, which blocks"
                    f" ({first.op} at {first.qualname}:{first.line});"
                    " release the lock first",
                )
