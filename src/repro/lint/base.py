"""The rule plugin API: :class:`Rule`, :class:`RuleContext`, registry.

A rule is an :class:`ast.NodeVisitor` with an ``ADAnnn`` id, a severity
and an optional default path scope. Subclasses implement ordinary
``visit_*`` methods and call :meth:`Rule.report` on violations; the
runner handles file discovery, config scoping and suppression pragmas.

Registering is one decorator::

    @register
    class NoSpooky(Rule):
        rule_id = "ADA099"
        name = "no-spooky-action"
        description = "forbid spooky action at a distance"

        def visit_Call(self, node):
            ...
            self.generic_visit(node)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.lint.findings import SEVERITIES, Finding


@dataclass
class RuleContext:
    """Everything a rule may inspect about the file being linted."""

    path: str  #: path as reported in findings
    relpath: str  #: project-root-relative POSIX path (used for scoping)
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    #: ``lineno -> comment text`` (including the leading ``#``), from
    #: tokenize — so rules can honour justification comments.
    comments: Dict[int, str] = field(default_factory=dict)
    #: Whole-program view (:class:`repro.lint.graph.ProjectGraph`) when
    #: the runner built one; inter-procedural rules fall back to a
    #: single-file graph when absent (the unit-test path).
    project: Optional[Any] = None
    #: Dotted module name of this file within the project graph.
    module: str = ""

    def comment_on(self, lineno: int) -> str:
        return self.comments.get(lineno, "")


class Rule(ast.NodeVisitor):
    """Base class for adalint rules.

    Class attributes
    ----------------
    rule_id:
        Stable ``ADAnnn`` identifier used in output and pragmas.
    name:
        Short kebab-case label for ``--list-rules``.
    severity:
        ``"error"`` or ``"warning"``.
    description:
        One-line summary of the contract the rule enforces.
    default_paths:
        Path prefixes/globs (project-root relative) the rule applies to
        by default; empty means every linted file. Overridable per
        project via ``[tool.adalint.paths]``.
    """

    rule_id: str = "ADA000"
    name: str = "unnamed-rule"
    severity: str = "error"
    description: str = ""
    default_paths: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.context: Optional[RuleContext] = None

    # -- runner interface ------------------------------------------------
    def run(self, context: RuleContext) -> List[Finding]:
        """Visit one parsed file; returns this rule's findings."""
        self.findings = []
        self.context = context
        self.visit(context.tree)
        return self.findings

    def report(
        self,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> None:
        """Record a violation anchored at ``node``."""
        assert self.context is not None  # adalint: disable=ADA005
        self.findings.append(
            Finding(
                path=self.context.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=self.rule_id,
                message=message,
                severity=severity or self.severity,
            )
        )


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain ('' for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:  # chain rooted in a call/subscript: keep the tail only
        pass
    else:
        return ""
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id or rule_id == Rule.rule_id:
        raise ValueError(f"{rule_class.__name__} needs a unique rule_id")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"{rule_class.__name__}: unknown severity"
            f" {rule_class.severity!r}"
        )
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by id."""
    # Importing the bundled rule modules registers them on first use.
    from repro.lint import (  # noqa: F401 - imported for side effect
        rules_certs,
        rules_concurrency,
        rules_dataflow,
        rules_determinism,
        rules_parallelism,
        rules_robustness,
        rules_schema,
    )

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look one rule up by id (raises ``KeyError`` on unknown ids)."""
    all_rules()
    return _REGISTRY[rule_id]
