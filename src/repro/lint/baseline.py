"""SARIF baseline diffs: report only findings new since a baseline.

A baseline is an earlier ``repro lint --format sarif`` log (typically
the default branch's, published by CI). ``--baseline FILE`` suppresses
every finding already present in it, so a change is judged on the
findings it *introduces* — large legacy surfaces can turn a rule on
without first paying down the whole backlog.

Matching is content-relative, not line-relative: each SARIF result
carries ``partialFingerprints["adalint/v1"]``
(:func:`repro.lint.findings.finding_fingerprint` — rule id, path and
the stripped source line text), so a finding that merely moved when
code was inserted above it still matches its baseline entry. Results
from older baselines without fingerprints fall back to exact
``(ruleId, path, startLine)`` matching. An unreadable baseline
suppresses nothing (degradation, never an error).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.findings import (
    FINGERPRINT_KEY,
    Finding,
    finding_fingerprint,
)


def load_baseline(path: Path) -> Optional[Dict[str, Any]]:
    """The baseline SARIF document at ``path``, or None if unusable."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, ValueError):
        return None
    if not isinstance(document, dict) or not isinstance(
        document.get("runs"), list
    ):
        return None
    return document


def _results(document: Dict[str, Any]):
    for run in document.get("runs", []):
        if not isinstance(run, dict):
            continue
        for result in run.get("results", []):
            if isinstance(result, dict):
                yield result


def baseline_index(
    document: Dict[str, Any],
) -> Tuple[Set[str], Set[Tuple[str, str, int]]]:
    """Index one baseline: fingerprints + (rule, path, line) triples.

    Triples are only collected for results *without* a fingerprint —
    a fingerprinted result should never also suppress a different
    finding that happens to share its position.
    """
    fingerprints: Set[str] = set()
    triples: Set[Tuple[str, str, int]] = set()
    for result in _results(document):
        partial = result.get("partialFingerprints")
        fingerprint = (
            partial.get(FINGERPRINT_KEY)
            if isinstance(partial, dict)
            else None
        )
        if fingerprint:
            fingerprints.add(str(fingerprint))
            continue
        rule_id = str(result.get("ruleId", ""))
        for location in result.get("locations", []):
            try:
                physical = location["physicalLocation"]
                uri = str(physical["artifactLocation"]["uri"])
                line = int(physical["region"]["startLine"])
            except (KeyError, TypeError, ValueError):
                continue
            triples.add((rule_id, uri, line))
    return fingerprints, triples


def diff_findings(
    findings: List[Finding],
    baseline: Dict[str, Any],
    sources: Optional[Dict[str, Sequence[str]]] = None,
) -> List[Finding]:
    """The findings not present in ``baseline`` (the *new* ones)."""
    fingerprints, triples = baseline_index(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        lines = (sources or {}).get(finding.path, ())
        text = (
            lines[finding.line - 1]
            if 0 < finding.line <= len(lines)
            else ""
        )
        if finding_fingerprint(finding, text) in fingerprints:
            continue
        triple = (
            finding.rule_id,
            finding.path.replace("\\", "/"),
            finding.line,
        )
        if triple in triples:
            continue
        fresh.append(finding)
    return fresh
