"""Robustness rules: no bare assert (ADA005), disciplined broad
exception handling (ADA006), no ad-hoc retry sleeping (ADA013),
persistence writes through the storage layer (ADA023).

Library invariants guarded by ``assert`` vanish under ``python -O``;
``except Exception`` that neither re-raises nor reports turns real
failures into silent wrong answers — the one thing an *automated*
analysis engine must never do. Hand-rolled ``time.sleep`` retry
loops bypass the seeded, bounded backoff of
:class:`repro.cloud.resilience.RetryPolicy`, losing both determinism
and the retry/timeout telemetry. And a K-DB write that bypasses
:mod:`repro.kdb.storage` is invisible to fault injection, so the
crash-point sweep would certify durability the store does not have.
"""

from __future__ import annotations

import ast

from repro.lint.base import Rule, RuleContext, dotted_name, register

#: Minimum comment payload (after ``#``) accepted as a justification.
_MIN_JUSTIFICATION = 3

#: Call-name fragments that count as "reporting" a swallowed exception.
_REPORTING_FRAGMENTS = (
    "log", "warn", "report", "record", "fail", "exception",
)


@register
class NoBareAssert(Rule):
    """ADA005: library code must not guard runtime invariants with
    ``assert``.

    Asserts are compiled away under ``python -O``; an invariant that
    matters at runtime must raise an explicit exception
    (``NotFittedError``, ``RuntimeError``...) that survives
    optimisation.
    """

    rule_id = "ADA005"
    name = "no-bare-assert"
    description = (
        "runtime invariants must raise explicit exceptions, not"
        " assert (stripped under python -O)"
    )

    def visit_Assert(self, node: ast.Assert) -> None:
        self.report(
            node,
            "assert is stripped under python -O; raise an explicit"
            " exception (NotFittedError, RuntimeError, ...) instead",
        )
        self.generic_visit(node)


@register
class BroadExceptPolicy(Rule):
    """ADA006: ``except Exception`` must re-raise, report, or justify.

    A broad handler is acceptable when it (a) re-raises, (b) visibly
    reports the failure (logging / metrics / TaskFailure recording), or
    (c) carries a same-line justification comment explaining why
    swallowing is correct. Bare ``except:`` is never acceptable — it
    also catches ``KeyboardInterrupt``/``SystemExit``.
    """

    rule_id = "ADA006"
    name = "broad-except-policy"
    description = (
        "except Exception must re-raise, report, or carry a"
        " justification comment"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except also catches KeyboardInterrupt/SystemExit;"
                " catch Exception (with a justification) at most",
            )
        elif _is_broad(node.type) and not (
            _reraises(node) or _reports(node) or self._justified(node)
        ):
            self.report(
                node,
                "broad except swallows the failure; re-raise, report"
                " it, or add a same-line justification comment",
            )
        self.generic_visit(node)

    def _justified(self, node: ast.ExceptHandler) -> bool:
        comment = self.context.comment_on(node.lineno) if (
            self.context is not None
        ) else ""
        return len(comment.lstrip("#").strip()) >= _MIN_JUSTIFICATION


@register
class NoAdHocRetrySleep(Rule):
    """ADA013: no bare ``time.sleep`` retry loops outside the
    resilience layer.

    A ``time.sleep`` inside a ``while``/``for`` body is the signature
    of a hand-rolled retry/backoff loop: unbounded, unseeded and
    invisible to the resilience counters. Backoff belongs to
    :class:`repro.cloud.resilience.RetryPolicy` (whose ``sleep`` is
    the one sanctioned home of retry sleeping), so
    ``cloud/resilience.py`` itself is exempt.
    """

    rule_id = "ADA013"
    name = "no-adhoc-retry-sleep"
    description = (
        "retry backoff must go through resilience.RetryPolicy, not a"
        " time.sleep loop"
    )

    #: The one module allowed to sleep for backoff purposes.
    _EXEMPT_SUFFIX = "cloud/resilience.py"

    def run(self, context: RuleContext):
        if context.relpath.endswith(self._EXEMPT_SUFFIX):
            return []
        self._loop_depth = 0
        return super().run(context)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def _visit_def(self, node: ast.AST) -> None:
        # A function defined inside a loop body starts its own scope:
        # its sleeps only loop if *it* loops.
        outer = self._loop_depth
        self._loop_depth = 0
        self.generic_visit(node)
        self._loop_depth = outer

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if self._loop_depth and chain in ("time.sleep", "sleep"):
            self.report(
                node,
                "time.sleep in a loop is an ad-hoc retry/backoff;"
                " use repro.cloud.resilience.RetryPolicy instead",
            )
        self.generic_visit(node)


#: Write modes of the ``open`` builtin (anything not read-only).
_WRITE_MODE_CHARS = frozenset("wax+")

#: ``os`` functions that mutate the filesystem behind the store.
_OS_WRITE_CALLS = frozenset(
    {
        "os.replace",
        "os.rename",
        "os.fsync",
        "os.truncate",
        "os.ftruncate",
        "os.unlink",
        "os.remove",
        "os.write",
        "os.open",
    }
)

#: ``Path`` methods that write whole files.
_PATH_WRITE_METHODS = frozenset(
    {"write_text", "write_bytes", "touch", "unlink", "rename", "replace"}
)


@register
class PersistenceWritesThroughStorage(Rule):
    """ADA023: K-DB file writes must go through ``repro.kdb.storage``.

    The crash-consistency guarantee of PR 10 rests on a single funnel:
    every byte the persistence stack puts on disk flows through the
    pluggable storage layer, so a seeded
    :class:`~repro.kdb.storage.FaultyStorage` provably covers every
    write boundary of a workload. A raw ``open(..., "w")``,
    ``os.replace`` or ``Path.write_text`` inside :mod:`repro.kdb`
    punches a hole in that coverage — the chaos sweep would pass while
    the bypassing write stays un-crash-tested. Reads are unrestricted;
    ``kdb/storage.py`` itself is the funnel and therefore exempt.
    """

    rule_id = "ADA023"
    name = "persistence-writes-through-storage"
    description = (
        "K-DB persistence writes must use repro.kdb.storage, not raw"
        " open(w)/os.replace/Path.write_*"
    )
    default_paths = ("src/repro/kdb",)

    #: The funnel itself: the one module allowed to touch the disk.
    _EXEMPT_SUFFIX = "kdb/storage.py"

    def run(self, context: RuleContext):
        if context.relpath.endswith(self._EXEMPT_SUFFIX):
            return []
        return super().run(context)

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain == "open" and _opens_for_write(node):
            self.report(
                node,
                "open() with a write mode bypasses the storage layer;"
                " use storage.open_append/atomic_write so fault"
                " injection covers this write",
            )
        elif chain in _OS_WRITE_CALLS:
            self.report(
                node,
                f"{chain} bypasses the storage layer; route this"
                " write through repro.kdb.storage so the crash sweep"
                " covers it",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PATH_WRITE_METHODS
            and dotted_name(node.func) not in _OS_WRITE_CALLS
        ):
            self.report(
                node,
                f".{node.func.attr}() writes to disk outside the"
                " storage layer; use repro.kdb.storage so fault"
                " injection covers this write",
            )
        self.generic_visit(node)


def _opens_for_write(node: ast.Call) -> bool:
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default mode "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return True  # dynamic mode: cannot prove read-only


def _is_broad(exception_type: ast.AST) -> bool:
    names = (
        exception_type.elts
        if isinstance(exception_type, ast.Tuple)
        else [exception_type]
    )
    return any(
        isinstance(name, ast.Name)
        and name.id in ("Exception", "BaseException")
        for name in names
    )


def _handler_nodes(handler: ast.ExceptHandler):
    """Walk the handler body without descending into nested defs."""
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in _handler_nodes(handler)
    )


def _reports(handler: ast.ExceptHandler) -> bool:
    """Does the handler visibly record the failure somewhere?"""
    for node in _handler_nodes(handler):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id
            if isinstance(callee, ast.Name)
            else ""
        ).lower()
        if any(fragment in name for fragment in _REPORTING_FRAGMENTS):
            return True
        if name == "taskfailure":
            return True
    return False
