"""Robustness rules: no bare assert (ADA005), disciplined broad
exception handling (ADA006).

Library invariants guarded by ``assert`` vanish under ``python -O``;
``except Exception`` that neither re-raises nor reports turns real
failures into silent wrong answers — the one thing an *automated*
analysis engine must never do.
"""

from __future__ import annotations

import ast

from repro.lint.base import Rule, register

#: Minimum comment payload (after ``#``) accepted as a justification.
_MIN_JUSTIFICATION = 3

#: Call-name fragments that count as "reporting" a swallowed exception.
_REPORTING_FRAGMENTS = (
    "log", "warn", "report", "record", "fail", "exception",
)


@register
class NoBareAssert(Rule):
    """ADA005: library code must not guard runtime invariants with
    ``assert``.

    Asserts are compiled away under ``python -O``; an invariant that
    matters at runtime must raise an explicit exception
    (``NotFittedError``, ``RuntimeError``...) that survives
    optimisation.
    """

    rule_id = "ADA005"
    name = "no-bare-assert"
    description = (
        "runtime invariants must raise explicit exceptions, not"
        " assert (stripped under python -O)"
    )

    def visit_Assert(self, node: ast.Assert) -> None:
        self.report(
            node,
            "assert is stripped under python -O; raise an explicit"
            " exception (NotFittedError, RuntimeError, ...) instead",
        )
        self.generic_visit(node)


@register
class BroadExceptPolicy(Rule):
    """ADA006: ``except Exception`` must re-raise, report, or justify.

    A broad handler is acceptable when it (a) re-raises, (b) visibly
    reports the failure (logging / metrics / TaskFailure recording), or
    (c) carries a same-line justification comment explaining why
    swallowing is correct. Bare ``except:`` is never acceptable — it
    also catches ``KeyboardInterrupt``/``SystemExit``.
    """

    rule_id = "ADA006"
    name = "broad-except-policy"
    description = (
        "except Exception must re-raise, report, or carry a"
        " justification comment"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except also catches KeyboardInterrupt/SystemExit;"
                " catch Exception (with a justification) at most",
            )
        elif _is_broad(node.type) and not (
            _reraises(node) or _reports(node) or self._justified(node)
        ):
            self.report(
                node,
                "broad except swallows the failure; re-raise, report"
                " it, or add a same-line justification comment",
            )
        self.generic_visit(node)

    def _justified(self, node: ast.ExceptHandler) -> bool:
        comment = self.context.comment_on(node.lineno) if (
            self.context is not None
        ) else ""
        return len(comment.lstrip("#").strip()) >= _MIN_JUSTIFICATION


def _is_broad(exception_type: ast.AST) -> bool:
    names = (
        exception_type.elts
        if isinstance(exception_type, ast.Tuple)
        else [exception_type]
    )
    return any(
        isinstance(name, ast.Name)
        and name.id in ("Exception", "BaseException")
        for name in names
    )


def _handler_nodes(handler: ast.ExceptHandler):
    """Walk the handler body without descending into nested defs."""
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in _handler_nodes(handler)
    )


def _reports(handler: ast.ExceptHandler) -> bool:
    """Does the handler visibly record the failure somewhere?"""
    for node in _handler_nodes(handler):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id
            if isinstance(callee, ast.Name)
            else ""
        ).lower()
        if any(fragment in name for fragment in _REPORTING_FRAGMENTS):
            return True
        if name == "taskfailure":
            return True
    return False
