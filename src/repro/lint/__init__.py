"""adalint: AST-based invariant checks for the ADA-HEALTH engine.

PRs 1-2 made correctness depend on contracts no unit test can see
directly: goal pipelines must be picklable to fan out through process
pools, cache keys must be deterministic, miners must draw randomness
only from seeded generators, and run manifests must conform to
``ada-health/run-manifest/v1``. This package turns those unwritten
rules into a zero-dependency static-analysis pass over :mod:`ast`:

========  =============================================================
ADA001    mining/core randomness only via ``np.random.default_rng(seed)``
ADA002    no wall-clock reads in mining or cache-key paths
ADA003    no lambdas/closures handed to ``TaskSpec`` / process pools
ADA004    no mutable default arguments
ADA005    no bare ``assert`` for runtime invariants in library code
ADA006    ``except Exception`` must re-raise, report, or justify
ADA007    query documents only use operators documentstore implements
ADA008    manifest keys must exist in ``ada-health/run-manifest/v1``
========  =============================================================

Run it with ``python -m repro.lint [paths]`` (or ``repro lint``); it
exits nonzero on findings so it can gate commits. Suppress with
``# adalint: disable=ADA001`` (line) or
``# adalint: disable-file=ADA001`` (file), and scope rules per path
via ``[tool.adalint]`` in pyproject.toml. Writing a new rule is a
:class:`~repro.lint.base.Rule` subclass plus ``@register``.
"""

from repro.lint.base import (
    Rule,
    RuleContext,
    all_rules,
    get_rule,
    register,
)
from repro.lint.config import LintConfig, load_config, path_matches
from repro.lint.findings import FINDINGS_SCHEMA, Finding, report_document
from repro.lint.runner import (
    LintReport,
    find_project_root,
    lint_paths,
    lint_source,
)

__all__ = [
    "FINDINGS_SCHEMA",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "RuleContext",
    "all_rules",
    "find_project_root",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "path_matches",
    "register",
    "report_document",
]
