"""Inter-procedural dataflow rules: ADA009–ADA012, ADA014.

These rules consume the whole-program view built by
:mod:`repro.lint.graph`. When the runner linted a full project the
:class:`~repro.lint.graph.ProjectGraph` arrives on the
:class:`~repro.lint.base.RuleContext`; a rule run on a lone snippet
(the unit-test path) builds a single-file graph on the fly, so
fixtures behave identically.

ADA012 is registered here for the catalogue, config scoping and
``--select`` but produces no findings itself: unused-suppression
accounting lives in the runner, which is the only place that knows
which pragmas matched a finding.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Set, Tuple

from repro.lint.base import Rule, RuleContext, dotted_name, register
from repro.lint.graph import (
    ProjectGraph,
    extract_summary,
    module_name_for,
)
from repro.lint.rules_parallelism import (
    _is_process_pool_call,
    _task_argument,
)


class _Line:
    """Minimal report anchor for findings not tied to a visited node."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _graph_and_module(
    context: RuleContext,
) -> Tuple[ProjectGraph, str]:
    """The project graph for this run, or a single-file stand-in."""
    if context.project is not None and context.module:
        return context.project, context.module
    relpath = context.relpath
    if not relpath.endswith(".py"):
        relpath = "snippet.py"
    if context.project is not None:
        return context.project, module_name_for(relpath)
    summary = extract_summary(context.tree, relpath)
    return ProjectGraph([summary]), summary.module


class _DataflowRule(Rule):
    """Shared setup: bind the graph before visiting."""

    def run(self, context: RuleContext):
        self.graph, self.module = _graph_and_module(context)
        return super().run(context)


# ----------------------------------------------------------------------
# ADA009 — tasks shipped to workers must be transitively effect-free
# ----------------------------------------------------------------------
@register
class EffectFreeTasks(_DataflowRule):
    """ADA009: callables submitted for parallel execution must be
    transitively effect-free.

    A task that reads the wall clock, draws from unseeded RNG, performs
    I/O, writes module state or mutates its arguments gives different
    answers serial vs. fanned-out (worker mutations happen on pickled
    copies and silently vanish). The effect inference follows the call
    graph, so the offence may sit arbitrarily deep below the submitted
    function — the finding cites the originating site and call chain.
    """

    rule_id = "ADA009"
    name = "effect-free-parallel-tasks"
    severity = "error"
    description = (
        "callables handed to TaskSpec / process-pool submission must"
        " be transitively free of clock, RNG, I/O and mutation effects"
    )

    def run(self, context: RuleContext):
        self._pools: Set[str] = set()
        return super().run(context)

    # -- process-pool bindings (file-wide; threads are exempt) ---------
    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_process_pool_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._pools.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if _is_process_pool_call(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self._pools.add(item.optional_vars.id)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    # -- submission sites ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        tail = dotted_name(callee).rsplit(".", 1)[-1]
        target = None
        via = None
        if tail == "TaskSpec":
            target = _task_argument(node)
            via = "TaskSpec"
        elif tail == "run_chunked":
            target = node.args[1] if len(node.args) > 1 else None
            if target is None:
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        target = keyword.value
            via = "run_chunked"
        elif (
            isinstance(callee, ast.Attribute)
            and callee.attr == "submit"
            and isinstance(callee.value, ast.Name)
            and callee.value.id in self._pools
        ):
            target = node.args[0] if node.args else None
            via = f"{callee.value.id}.submit"
        if target is not None and via is not None:
            self._check_task(node, target, via)
        self.generic_visit(node)

    def _check_task(
        self, node: ast.Call, target: ast.AST, via: str
    ) -> None:
        chain = dotted_name(target)
        if not chain:
            return  # lambdas/odd expressions are ADA003's problem
        qualid = self.graph.resolve_symbol(self.module, chain)
        if qualid is None:
            return  # unresolvable target: under-approximate
        for effect in self.graph.effects(qualid):
            origin = f"{effect.module}:{effect.qualname}:{effect.line}"
            evidence = f"{effect.description} (at {origin}"
            path = self.graph.call_path(
                qualid,
                lambda q: q == f"{effect.module}:{effect.qualname}",
            )
            if path and len(path) > 1:
                steps = " -> ".join(
                    q.partition(":")[2] for q in path
                )
                evidence += f", via {steps}"
            evidence += ")"
            self.report(
                node,
                f"task {chain!r} handed to {via} is not effect-free:"
                f" {evidence}",
            )


# ----------------------------------------------------------------------
# ADA010 — cache keys must cover every config field goal paths read
# ----------------------------------------------------------------------
@register
class CacheKeyCoverage(_DataflowRule):
    """ADA010: config fields read inside a cached goal path must flow
    into the cache key.

    The engine derives :class:`AnalysisCache` keys from its config via
    ``_goal_params``, which *excludes* fields that are not supposed to
    influence results. If an excluded field is nevertheless read
    anywhere reachable from ``_run_goal``, two configs differing only
    in that field would collide on one cache entry and return each
    other's results. Telemetry fields (:data:`ALLOWED_TELEMETRY`) are
    allowlisted: they observe the run but never steer it.
    """

    rule_id = "ADA010"
    name = "cache-key-covers-config"
    severity = "error"
    description = (
        "config fields excluded from the analysis-cache key must not"
        " be read inside cached goal paths (telemetry allowlisted)"
    )

    #: Fields that may be excluded from the key *and* read in goal
    #: paths: pure observers, checked to never influence results.
    ALLOWED_TELEMETRY: FrozenSet[str] = frozenset(
        {"tracer", "metrics"}
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "_goal_params" in methods and "_run_goal" in methods:
            excluded = _excluded_fields(methods["_goal_params"])
            hazards = excluded - self.ALLOWED_TELEMETRY
            if hazards:
                self._check_goal_path(node, hazards)
        self.generic_visit(node)

    def _check_goal_path(
        self, class_node: ast.ClassDef, hazards: Set[str]
    ) -> None:
        start = f"{self.module}:{class_node.name}._run_goal"
        for qualid in sorted(self.graph.reachable_from(start)):
            info = self.graph.function(qualid)
            if info is None:
                continue
            module = qualid.partition(":")[0]
            for field_name, line in info.config_reads:
                if field_name not in hazards:
                    continue
                where = f"{module}:{info.qualname}:{line}"
                anchor = (
                    _Line(line)
                    if module == self.module
                    else _Line(class_node.lineno)
                )
                self.report(
                    anchor,
                    f"config field {field_name!r} is excluded from the"
                    f" cache key by _goal_params but read in the cached"
                    f" goal path (at {where}); include it in the key or"
                    f" allowlist it as telemetry",
                )


def _excluded_fields(goal_params: ast.AST) -> Set[str]:
    """The ``excluded = {...}`` string-set literal in ``_goal_params``."""
    for statement in ast.walk(goal_params):
        if not isinstance(statement, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "excluded"
            for t in statement.targets
        ):
            continue
        value = statement.value
        if isinstance(value, ast.Call):  # frozenset({...}) / set({...})
            value = value.args[0] if value.args else value
        if isinstance(value, ast.Set):
            return {
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }
    return set()


# ----------------------------------------------------------------------
# ADA011 — public APIs raise the documented taxonomy only
# ----------------------------------------------------------------------
@register
class ExceptionTaxonomy(_DataflowRule):
    """ADA011: the public ``repro.core``/``repro.mining`` surface may
    only raise ``repro.exceptions`` types or approved builtins.

    Callers program against the documented taxonomy
    (``except ReproError``); an ``Exception("...")`` escaping from deep
    inside a miner bypasses every such handler. The check covers
    public functions and everything they (transitively) call; raises
    re-raising a caught variable or a stored error object are skipped.
    """

    rule_id = "ADA011"
    name = "exception-taxonomy"
    severity = "error"
    description = (
        "public core/mining entry points raise repro.exceptions types"
        " or approved builtins only"
    )
    default_paths = ("src/repro/core", "src/repro/mining")

    APPROVED_BUILTINS: FrozenSet[str] = frozenset(
        {
            "ValueError", "TypeError", "KeyError", "IndexError",
            "RuntimeError", "NotImplementedError", "StopIteration",
        }
    )

    def run(self, context: RuleContext):
        self.findings = []
        self.context = context
        self.graph, self.module = _graph_and_module(context)
        summary = self.graph.modules.get(self.module)
        if summary is None:
            return []
        checked = self._public_surface(summary)
        for qualname in sorted(checked):
            info = summary.functions.get(qualname)
            if info is None:
                continue
            for chain, line in info.raises:
                if not chain:
                    continue  # bare raise / re-raise of a variable
                if self._allowed(chain):
                    continue
                self.report(
                    _Line(line),
                    f"{qualname}() raises {chain!r}, which is neither a"
                    " repro.exceptions type nor an approved builtin"
                    f" ({', '.join(sorted(self.APPROVED_BUILTINS))})",
                )
        return self.findings

    def _public_surface(self, summary) -> Set[str]:
        """Public functions plus everything they reach in this module."""
        surface: Set[str] = set()
        for qualname, info in summary.functions.items():
            if info.is_public:
                surface.add(qualname)
        reached: Set[str] = set(surface)
        for qualname in surface:
            for qualid in self.graph.reachable_from(
                f"{self.module}:{qualname}"
            ):
                module, _, name = qualid.partition(":")
                if module == self.module:
                    reached.add(name)
        return reached

    def _allowed(self, chain: str) -> bool:
        tail = chain.rsplit(".", 1)[-1]
        if tail in self.APPROVED_BUILTINS:
            return True
        summary = self.graph.modules.get(self.module)
        imports = summary.imports if summary else {}
        if "." in chain:
            if chain.startswith("repro.exceptions."):
                return True
            head = chain.split(".")[0]
            target = imports.get(head)
            if target is not None:
                target_module, symbol = target
                bound = (
                    f"{target_module}.{symbol}"
                    if target_module and symbol
                    else (symbol or target_module)
                )
                if bound == "repro.exceptions" or (
                    symbol is None
                    and target_module == "repro.exceptions"
                ):
                    return True
        else:
            target = imports.get(chain)
            if target is not None and target[0] == "repro.exceptions":
                return True
        resolved = self.graph._resolve_class(self.module, tail)
        if resolved is not None:
            return self._derives_from_taxonomy(resolved, depth=0)
        return False

    def _derives_from_taxonomy(
        self, resolved: Tuple[str, str], depth: int
    ) -> bool:
        if depth > 8:
            return False
        module, class_name = resolved
        if module == "repro.exceptions":
            return True
        summary = self.graph.modules.get(module)
        class_info = (
            summary.classes.get(class_name) if summary else None
        )
        if class_info is None:
            return False
        for base_chain in class_info.bases:
            base_tail = base_chain.rsplit(".", 1)[-1]
            if base_tail in self.APPROVED_BUILTINS:
                return True
            if base_chain.startswith("repro.exceptions."):
                return True
            target = summary.imports.get(base_chain.split(".")[0])
            if (
                target is not None
                and "." not in base_chain
                and target[0] == "repro.exceptions"
            ):
                return True
            base_resolved = self.graph._resolve_class(
                module, base_tail
            )
            if base_resolved is not None and base_resolved != resolved:
                if self._derives_from_taxonomy(base_resolved, depth + 1):
                    return True
        return False


# ----------------------------------------------------------------------
# ADA014 — large arrays must not ride the pickle path to workers
# ----------------------------------------------------------------------
@register
class NoLargeArrayPickle(Rule):
    """ADA014: ndarrays must not be pickled into task submissions.

    A ``TaskSpec`` (or tracked process-pool ``submit``) argument that is
    statically known to be a numpy array ships a full copy of the data
    through pickle to every worker — the multi-megabyte payload the
    shared-memory transport exists to avoid. Route the array through
    :func:`repro.cloud.matrix_lease` (or a
    :class:`repro.data.SharedMatrix`) and ship its ~100-byte handle
    instead; workers reattach with :func:`repro.data.open_matrix`.

    A name counts as an ndarray when a parameter annotation says so or
    when it was assigned from a numpy constructor (``np.asarray``,
    ``np.zeros``, ...) — including slices, ``.copy()``/``.astype()``
    chains and aliases of such names. The inference is per function and
    deliberately under-approximates: lease handles, fold indexes and
    anything of unknown type pass silently.
    """

    rule_id = "ADA014"
    name = "no-large-array-pickle"
    severity = "warning"
    description = (
        "ndarray arguments must not be pickled into TaskSpec /"
        " process-pool submissions; lease a shared-memory handle"
        " instead"
    )

    _CONSTRUCTORS = frozenset(
        {
            "array", "asarray", "ascontiguousarray", "asfortranarray",
            "zeros", "ones", "empty", "full", "zeros_like",
            "ones_like", "empty_like", "full_like", "arange",
            "linspace", "logspace", "eye", "identity", "vstack",
            "hstack", "stack", "column_stack", "concatenate", "copy",
            "tile", "repeat", "outer", "loadtxt", "load",
        }
    )

    def run(self, context: RuleContext):
        self._numpy_aliases: Set[str] = set()
        self._numpy_bare: Set[str] = set()
        return super().run(context)

    # -- numpy import aliases (file-wide) ------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self._numpy_aliases.add(
                    alias.asname or alias.name.split(".")[0]
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "numpy":
            for alias in node.names:
                if alias.name in self._CONSTRUCTORS:
                    self._numpy_bare.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- per-function inference ----------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_function(self, node) -> None:
        arrays: Set[str] = set()
        pools: Set[str] = set()
        arguments = node.args
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        ):
            if arg.annotation is not None and _mentions_ndarray(
                arg.annotation
            ):
                arrays.add(arg.arg)
        scope = sorted(
            _scope_nodes(node),
            key=lambda n: (getattr(n, "lineno", 0),
                           getattr(n, "col_offset", 0)),
        )
        for statement in scope:  # pass 1: track arrays and pools
            if isinstance(statement, ast.Assign):
                if _is_process_pool_call(statement.value):
                    pools.update(
                        t.id
                        for t in statement.targets
                        if isinstance(t, ast.Name)
                    )
                elif self._is_array_expression(statement.value, arrays):
                    arrays.update(
                        t.id
                        for t in statement.targets
                        if isinstance(t, ast.Name)
                    )
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if _mentions_ndarray(statement.annotation):
                    arrays.add(statement.target.id)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if _is_process_pool_call(
                        item.context_expr
                    ) and isinstance(item.optional_vars, ast.Name):
                        pools.add(item.optional_vars.id)
        if not arrays:
            return
        for call in scope:  # pass 2: submission sites
            if isinstance(call, ast.Call):
                self._check_submission(call, arrays, pools)

    def _is_array_expression(
        self, node: ast.AST, arrays: Set[str]
    ) -> bool:
        """True when ``node`` statically evaluates to a tracked array."""
        if isinstance(node, ast.Name):
            return node.id in arrays
        if isinstance(node, ast.Subscript):  # matrix[train] slicing
            return self._is_array_expression(node.value, arrays)
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name):
                return callee.id in self._numpy_bare
            if isinstance(callee, ast.Attribute):
                root = callee.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in self._numpy_aliases
                    and callee.attr in self._CONSTRUCTORS
                ):
                    return True
                # method chains on a tracked array: m.copy(), m.astype()
                return self._is_array_expression(callee.value, arrays)
        return False

    def _check_submission(
        self, node: ast.Call, arrays: Set[str], pools: Set[str]
    ) -> None:
        callee = node.func
        tail = dotted_name(callee).rsplit(".", 1)[-1]
        via = None
        payload: list = []
        if tail == "TaskSpec":
            via = "TaskSpec"
            payload = list(node.args[1:]) + [
                k.value for k in node.keywords if k.arg != "fn"
            ]
        elif (
            isinstance(callee, ast.Attribute)
            and callee.attr == "submit"
            and isinstance(callee.value, ast.Name)
            and callee.value.id in pools
        ):
            via = f"{callee.value.id}.submit"
            payload = list(node.args[1:]) + [
                k.value for k in node.keywords
            ]
        if via is None:
            return
        for expression in payload:
            for name in ast.walk(expression):
                if (
                    isinstance(name, ast.Name)
                    and name.id in arrays
                ):
                    self.report(
                        node,
                        f"ndarray {name.id!r} is pickled into {via};"
                        " ship a shared-memory handle instead (route"
                        " it through repro.cloud.matrix_lease and"
                        " reattach with repro.data.open_matrix)",
                    )


def _mentions_ndarray(annotation: ast.AST) -> bool:
    """True for ``np.ndarray``-ish annotations (incl. strings/Optional)."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            if node.value.rsplit(".", 1)[-1].startswith("ndarray"):
                return True
        chain = dotted_name(node)
        if chain and chain.rsplit(".", 1)[-1] == "ndarray":
            return True
    return False


def _scope_nodes(node):
    """Every node in ``node``'s body, pruning nested callables.

    Nested functions and lambdas form their own scopes — a later
    ``visit_FunctionDef`` analyses them with their own parameters and
    assignments, so descending here would double-report.
    """
    nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    stack = [child for child in node.body if not isinstance(child, nested)]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(
            child
            for child in ast.iter_child_nodes(current)
            if not isinstance(child, nested)
        )


# ----------------------------------------------------------------------
# ADA012 — unused / unknown suppression pragmas
# ----------------------------------------------------------------------
@register
class NoUnusedSuppressions(Rule):
    """ADA012: ``# adalint: disable`` pragmas must suppress something.

    A pragma that no longer matches any finding is stale armour — it
    hides future regressions of exactly the rule it names. Unknown rule
    ids in pragmas (and in ``[tool.adalint]`` ``select``/``ignore``/
    ``paths``) are reported too: a typo like ``ADA01`` silently
    disables nothing.

    The findings are produced by the runner, which owns suppression
    matching; this class contributes the id, catalogue entry and
    config/scoping surface. Accounting is single-pass: a pragma only
    counts as used if it suppressed a finding from the same run.
    """

    rule_id = "ADA012"
    name = "no-unused-suppressions"
    severity = "warning"
    description = (
        "suppression pragmas must name known rules and actually"
        " suppress a finding"
    )

    def run(self, context: RuleContext):
        return []
