"""Schema rules: docstore operators (ADA007), manifest keys (ADA008).

Both rules cross-check string literals in the code being linted against
contracts extracted from the implementing modules (see
:mod:`repro.lint.contracts`), so a query operator the store never
implemented — or a manifest key the schema doesn't know — fails at
lint time instead of silently matching nothing at runtime.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Set

from repro.lint.base import Rule, dotted_name, register
from repro.lint.contracts import (
    ManifestSchema,
    docstore_operators,
    manifest_schema,
)


@register
class DocstoreOperatorSet(Rule):
    """ADA007: ``$``-operator keys in query/update/aggregation documents
    must be operators the document store implements.

    A typo like ``{"age": {"$gth": 30}}`` raises ``QueryError`` only
    when that query finally runs; this rule catches it statically.
    """

    rule_id = "ADA007"
    name = "docstore-operator-set"
    description = (
        "query documents may only use operators documentstore"
        " implements"
    )

    def run(self, context):
        self._operators = docstore_operators()
        return super().run(context)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value.startswith("$")
                and key.value not in self._operators
            ):
                self.report(
                    key,
                    f"unknown docstore operator {key.value!r}; the"
                    " store implements: "
                    + ", ".join(sorted(self._operators)),
                )
        self.generic_visit(node)


@register
class ManifestSchemaKeys(Rule):
    """ADA008: string-literal keys on run-manifest documents must exist
    in the current ``ada-health/run-manifest`` schema.

    Tracks, per function: parameters/variables named ``manifest``,
    results of ``.finish()``/``.fail()``/``validate_manifest()``, and
    loop variables over ``run_history()`` (manifest documents) or over
    a manifest's ``goals`` list (goal records). Subscripts and
    ``.get()`` reads with literal keys on those variables — and dict
    literals that stamp the manifest ``schema`` tag — are checked
    against the field sets extracted from ``repro/obs/manifest.py``.
    """

    rule_id = "ADA008"
    name = "manifest-schema-keys"
    description = (
        "manifest keys must exist in the current ada-health/run-manifest"
        " schema"
    )

    def run(self, context):
        self._schema: ManifestSchema = manifest_schema()
        return super().run(context)

    # -- module / function dispatch --------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._check_scope(node, params_are_manifests=False)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(
            node,
            params_are_manifests="manifest" in node.name.lower(),
        )

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_scope(self, scope: ast.AST, params_are_manifests: bool):
        """Two flow-insensitive passes over one def (or the module)."""
        manifests, goals = self._collect_vars(
            scope, params_are_manifests
        )
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.visit_FunctionDef(node)
                continue
            self._check_node(node, manifests, goals)

    # -- pass 1: which names hold manifest/goal documents ---------------
    def _collect_vars(self, scope, params_are_manifests: bool):
        manifests: Set[str] = set()
        goals: Set[str] = set()
        if params_are_manifests and isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            for argument in scope.args.args:
                if argument.arg in ("manifest", "document"):
                    manifests.add(argument.arg)
        if _names_in(scope, "manifest"):
            manifests.add("manifest")
        loops = []
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Assign):
                if _is_manifest_producer(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            manifests.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                loops.append(node)
        # Outer loops bind before the loops nested inside them.
        for node in sorted(loops, key=lambda n: n.lineno):
            if _is_run_history_call(node.iter):
                manifests.add(node.target.id)
            elif (
                _literal_key(node.iter) == "goals"
                and _base_name(node.iter) in manifests
            ):
                goals.add(node.target.id)
        return manifests, goals

    # -- pass 2: check literal keys --------------------------------------
    def _check_node(
        self, node: ast.AST, manifests: Set[str], goals: Set[str]
    ) -> None:
        if isinstance(node, ast.Dict):
            self._check_manifest_literal(node)
            return
        key = _literal_key(node)
        if key is None:
            return
        base = node.value if isinstance(node, ast.Subscript) else (
            node.func.value  # .get(...) call
        )
        if isinstance(base, ast.Name):
            if base.id in manifests:
                self._require(node, key, self._schema.top_fields, "run")
            elif base.id in goals:
                self._require(
                    node, key, self._schema.goal_fields, "goal record"
                )
        elif isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ) and base.value.id in manifests:
            fields = self._schema.fields_for_attr(base.attr)
            if fields is not None:
                self._require(
                    node, key, fields, f"manifest {base.attr} record"
                )

    def _check_manifest_literal(self, node: ast.Dict) -> None:
        """A dict literal stamping the schema tag IS a manifest."""
        if not self._stamps_schema(node):
            return
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(
                key.value, str
            ):
                self._require(
                    key, key.value, self._schema.top_fields, "manifest"
                )

    def _stamps_schema(self, node: ast.Dict) -> bool:
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant) and key.value == "schema"
            ):
                continue
            if isinstance(value, ast.Constant):
                return value.value == self._schema.schema_tag
            return dotted_name(value).endswith("MANIFEST_SCHEMA")
        return False

    def _require(
        self,
        node: ast.AST,
        key: str,
        fields: FrozenSet[str],
        kind: str,
    ) -> None:
        if key not in fields:
            self.report(
                node,
                f"key {key!r} does not exist in the {kind} schema"
                f" ({self._schema.schema_tag}); known fields: "
                + ", ".join(sorted(fields)),
            )


# ----------------------------------------------------------------------
# Small AST predicates
# ----------------------------------------------------------------------
def _scope_nodes(scope: ast.AST):
    """Direct contents of a def/module, not descending into nested
    defs (those are handled as their own scopes)."""
    body = getattr(scope, "body", [])
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _literal_key(node: ast.AST) -> Optional[str]:
    """The string key of ``x["key"]`` or ``x.get("key", ...)``."""
    if isinstance(node, ast.Subscript):
        slice_node = node.slice
        if isinstance(slice_node, ast.Constant) and isinstance(
            slice_node.value, str
        ):
            return slice_node.value
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Subscript):
        base = node.value
    elif isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        base = node.func.value
    else:
        return ""
    return base.id if isinstance(base, ast.Name) else ""


def _is_manifest_producer(node: ast.AST) -> bool:
    """finish()/fail() on a manifest, or validate_manifest(...)."""
    if not isinstance(node, ast.Call):
        return False
    callee = node.func
    if isinstance(callee, ast.Name):
        return callee.id == "validate_manifest"
    if isinstance(callee, ast.Attribute):
        if callee.attr == "validate_manifest":
            return True
        if callee.attr in ("finish", "fail") and isinstance(
            callee.value, ast.Name
        ):
            return "manifest" in callee.value.id.lower()
    return False


def _is_run_history_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "run_history"
    )


def _names_in(scope: ast.AST, name: str) -> bool:
    """Is a plain Name with this id used anywhere in the scope?"""
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in _scope_nodes(scope)
    )
