"""Project configuration: the ``[tool.adalint]`` table in pyproject.toml.

Recognised keys::

    [tool.adalint]
    select = ["ADA001", ...]   # enable only these rules (default: all)
    ignore = ["ADA004"]        # disable these rules
    exclude = ["src/gen/*"]    # path globs never linted

    [tool.adalint.paths]       # per-rule path scoping (overrides the
    ADA001 = ["src/repro/mining", "src/repro/core"]   # rule's default)

Parsing prefers :mod:`tomllib` (Python >= 3.11); on older interpreters a
deliberately small TOML-subset parser — tables, strings, booleans,
integers and single/multi-line string arrays — keeps the linter
zero-dependency.
"""

from __future__ import annotations

import ast as _ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - py39/py310 fallback
    tomllib = None


#: Paths no lint run should ever look at, regardless of project
#: config: the linter's own cache, emitted SARIF logs and the
#: committed certificate artifacts (generated outputs, not source).
DEFAULT_EXCLUDES = (".adalint-cache", "*.sarif", "contracts")


@dataclass
class LintConfig:
    """Resolved adalint configuration."""

    select: List[str] = field(default_factory=list)
    ignore: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    #: rule id -> path prefixes/globs the rule is scoped to.
    paths: Dict[str, List[str]] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select:
            return rule_id in self.select
        return True

    def scope_for(self, rule_class) -> List[str]:
        """The path scope for a rule (config overrides the default)."""
        if rule_class.rule_id in self.paths:
            return list(self.paths[rule_class.rule_id])
        return list(rule_class.default_paths)

    def rule_applies(self, rule_class, relpath: str) -> bool:
        """Is the rule enabled and in scope for this file?"""
        if not self.rule_enabled(rule_class.rule_id):
            return False
        scope = self.scope_for(rule_class)
        if not scope:
            return True
        return any(path_matches(relpath, pattern) for pattern in scope)

    def file_excluded(self, relpath: str) -> bool:
        return any(
            path_matches(relpath, pattern)
            for pattern in (*DEFAULT_EXCLUDES, *self.exclude)
        )


def path_matches(relpath: str, pattern: str) -> bool:
    """Match a root-relative POSIX path against a scope pattern.

    Glob patterns use :func:`fnmatch`; plain patterns match the whole
    path, any directory prefix, or any path suffix — so
    ``src/repro/mining``, ``repro/mining`` and ``core/cache.py`` all
    scope the files you expect without anchoring ceremony.
    """
    pattern = pattern.strip().replace("\\", "/")
    while pattern.startswith("./"):
        pattern = pattern[2:]
    pattern = pattern.rstrip("/")
    if not pattern:
        return True
    if any(char in pattern for char in "*?["):
        return fnmatch(relpath, pattern) or fnmatch(
            relpath, pattern + "/*"
        )
    padded = "/" + relpath
    needle = "/" + pattern
    return (
        padded == needle
        or padded.endswith(needle)
        or (needle + "/") in padded
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Read ``[tool.adalint]`` out of a pyproject.toml (missing is ok)."""
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError:
            data = {}
    else:  # pragma: no cover - exercised only on py<3.11
        data = _parse_toml_subset(text)
    table = data.get("tool", {}).get("adalint", {})
    return config_from_table(table)


def config_from_table(table: Dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a decoded ``[tool.adalint]``."""
    paths = {
        str(rule_id): [str(p) for p in patterns]
        for rule_id, patterns in dict(
            table.get("paths", {}) or {}
        ).items()
        if isinstance(patterns, (list, tuple))
    }
    return LintConfig(
        select=[str(r) for r in table.get("select", []) or []],
        ignore=[str(r) for r in table.get("ignore", []) or []],
        exclude=[str(p) for p in table.get("exclude", []) or []],
        paths=paths,
    )


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Tiny TOML-subset parser for interpreters without :mod:`tomllib`.

    Handles dotted table headers, ``key = value`` pairs whose values
    are single- or double-quoted strings, booleans, integers, floats,
    (possibly multi-line) arrays with trailing commas, and one-line
    inline tables ``{ k = v }``. Comments — including inline comments
    after a value — are stripped quote-awarely, so a ``#`` inside a
    string survives. Anything fancier is silently skipped — adalint's
    own config never needs more, and ``tests/test_lint.py`` pins this
    fallback against :mod:`tomllib` on the repo's own pyproject.toml.
    """
    root: Dict[str, Any] = {}
    current = root
    pending_key: Optional[str] = None
    pending_value = ""
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if pending_key is not None:
            pending_value += " " + line
            if _brackets_balanced(pending_value):
                current[pending_key] = _parse_value(pending_value)
                pending_key = None
            continue
        if not line:
            continue
        if (
            line.startswith("[")
            and line.endswith("]")
            and "=" not in line
        ):
            current = root
            for part in line.strip("[]").split("."):
                part = part.strip().strip('"').strip("'")
                nested = current.setdefault(part, {})
                if not isinstance(nested, dict):  # key/table clash
                    nested = current[part] = {}
                current = nested
            continue
        if "=" not in line:
            continue
        key, __, value = line.partition("=")
        key = key.strip().strip('"').strip("'")
        value = value.strip()
        if not _brackets_balanced(value):
            pending_key, pending_value = key, value
            continue
        current[key] = _parse_value(value)
    return root


def _iter_outside_strings(value: str):
    """Yield ``(index, char)`` for characters outside string literals.

    Tracks TOML's two quote styles: basic strings (``"``, with ``\\``
    escapes) and literal strings (``'``, no escapes).
    """
    quote = ""
    escaped = False
    for index, char in enumerate(value):
        if quote:
            if escaped:
                escaped = False
            elif quote == '"' and char == "\\":
                escaped = True
            elif char == quote:
                quote = ""
            continue
        if char in "\"'":
            quote = char
            continue
        yield index, char


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment unless the ``#`` sits inside a string."""
    for index, char in _iter_outside_strings(line):
        if char == "#":
            return line[:index]
    return line


def _brackets_balanced(value: str) -> bool:
    depth = 0
    for _, char in _iter_outside_strings(value):
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
    return depth <= 0


def _split_top_level(value: str) -> List[str]:
    """Split on commas not nested in strings, arrays or inline tables."""
    parts: List[str] = []
    depth = 0
    cut = 0
    for index, char in _iter_outside_strings(value):
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(value[cut:index])
            cut = index + 1
    parts.append(value[cut:])
    return [part.strip() for part in parts]


def _parse_value(value: str) -> Any:
    value = value.strip()
    if value.endswith(","):
        value = value[:-1].rstrip()
    if value in ("true", "false"):
        return value == "true"
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(element)
            for element in _split_top_level(inner)
            if element
        ]
    if value.startswith("{") and value.endswith("}"):
        table: Dict[str, Any] = {}
        inner = value[1:-1].strip()
        for pair in _split_top_level(inner):
            if "=" not in pair:
                continue
            key, __, item = pair.partition("=")
            key = key.strip().strip('"').strip("'")
            table[key] = _parse_value(item)
        return table
    try:
        return _ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return value.strip('"').strip("'")
