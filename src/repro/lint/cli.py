"""The adalint command line: ``python -m repro.lint [paths...]``.

Exit status is 0 when the tree is clean and 1 when there are findings
(any severity), so the command can gate commits and CI. ``--format
json`` emits the ``adalint/findings/v1`` document and ``--format
sarif`` a SARIF 2.1.0 log (for code-scanning upload); ``--json`` stays
as an alias of ``--format json``. ``--baseline FILE`` suppresses
findings already present in an earlier SARIF log, so only *new*
findings gate. ``--emit-certs`` writes the
``adalint/certificates/v1`` purity-certificate artifact instead of
linting (deterministic and byte-stable — CI re-emits and compares).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.base import all_rules
from repro.lint.baseline import diff_findings, load_baseline
from repro.lint.certs import CERTS_RELPATH, emit_certificates
from repro.lint.config import load_config
from repro.lint.findings import sarif_document
from repro.lint.runner import (
    RULESET_VERSION,
    default_src_paths,
    find_project_root,
    lint_paths,
    relative_posix,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "adalint: AST-based invariant checks for the ADA-HEALTH"
            " engine (parallelism, determinism and schema contracts)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/ tree)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        dest="output_format",
        help="output format: human lines (default), the"
        " adalint/findings/v1 JSON document, or a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.adalint] from",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files in parallel over N workers (default: 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "process"),
        default="threads",
        help="repro.cloud executor backend for --jobs (default:"
        " threads)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (.adalint-cache/)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="incremental cache directory (default:"
        " <root>/.adalint-cache)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print parse/cache statistics and per-rule"
        " profiling to stderr",
    )
    parser.add_argument(
        "--baseline",
        metavar="SARIF",
        help="suppress findings present in this earlier SARIF log;"
        " only findings new since the baseline are reported",
    )
    parser.add_argument(
        "--emit-certs",
        action="store_true",
        help="emit the adalint/certificates/v1 artifact for the"
        " project's src/ tree and exit (no linting)",
    )
    parser.add_argument(
        "--certs-path",
        metavar="FILE",
        help="where --emit-certs writes the artifact (default:"
        f" <root>/{CERTS_RELPATH}); '-' prints to stdout",
    )
    return parser


def _split_ids(value: Optional[str]) -> List[str]:
    if not value:
        return []
    return [part.strip() for part in value.split(",") if part.strip()]


def list_rules_text() -> str:
    lines = []
    for rule_class in all_rules():
        scope = (
            ", ".join(rule_class.default_paths)
            if rule_class.default_paths
            else "all files"
        )
        lines.append(
            f"{rule_class.rule_id}  {rule_class.name}"
            f"  [{rule_class.severity}]\n"
            f"    {rule_class.description}\n"
            f"    scope: {scope}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules_text())
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            print(
                f"error: no such path: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 2
        root = find_project_root(paths[0])
    else:
        root = find_project_root(Path.cwd())
        paths = list(default_src_paths(root))

    if args.emit_certs:
        return _emit_certs(root, args.certs_path)

    config = None
    if args.config:
        config = load_config(Path(args.config))

    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = args.cache_dir
    else:
        cache = True

    report = lint_paths(
        paths,
        config=config,
        root=root,
        select=_split_ids(args.select),
        ignore=_split_ids(args.ignore),
        jobs=max(1, args.jobs),
        backend=args.backend,
        cache=cache,
    )
    sources = _finding_sources(report.findings)
    if args.baseline:
        baseline = load_baseline(Path(args.baseline))
        if baseline is None:
            print(
                f"warning: unusable baseline {args.baseline};"
                " reporting all findings",
                file=sys.stderr,
            )
        else:
            report.findings = diff_findings(
                report.findings, baseline, sources
            )
    output_format = "json" if args.json else args.output_format
    if output_format == "json":
        print(json.dumps(report.to_document(), indent=2, sort_keys=True))
    elif output_format == "sarif":
        document = sarif_document(
            report.findings,
            rules=all_rules(),
            tool_version=RULESET_VERSION,
            sources=sources,
        )
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(report.format_human())
    if args.stats:
        print(report.format_stats(), file=sys.stderr)
    return 0 if report.ok else 1


def _finding_sources(findings) -> dict:
    """``finding.path -> source lines`` for fingerprinting."""
    sources: dict = {}
    for finding in findings:
        if finding.path in sources:
            continue
        try:
            sources[finding.path] = Path(finding.path).read_text(
                encoding="utf-8"
            ).splitlines()
        except (OSError, UnicodeDecodeError):
            sources[finding.path] = []
    return sources


def _emit_certs(root: Path, certs_path: Optional[str]) -> int:
    """The ``--emit-certs`` path: build and write the artifact."""
    document, text = emit_certificates(root)
    if certs_path == "-":
        sys.stdout.write(text)
        return 0
    target = (
        Path(certs_path) if certs_path else root / CERTS_RELPATH
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    print(
        f"wrote {relative_posix(target, root)}:"
        f" {len(document['functions'])} function certificates,"
        f" {len(document['phases'])} phase fingerprints"
        f" (artifact {document['artifact_hash'][:12]})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
