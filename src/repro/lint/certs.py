"""Purity certificates: the ``adalint/certificates/v1`` artifact.

The certificate layer turns the invariants adalint *infers* (the
ADA009 effect lattice, determinism, the ADA011 exception taxonomy)
into a versioned, content-addressed JSON artifact the engine can read
at runtime (:mod:`repro.core.contracts`). One certificate per project
function records:

* ``effects`` — the sorted transitive effect signature (the same
  lattice ADA009 enforces: wall-clock, unseeded-rng, env-read, io,
  global-write, mutates-param); ``effect_free`` is its emptiness;
* ``determinism`` — ``"seeded"`` (reproducible under a fixed seed),
  ``"tainted"`` (draws unseeded randomness) or ``"wall-clock"``
  (reads the clock, the strongest taint);
* ``picklable`` — whether the function object survives pickling onto
  a process pool (module-level defs and methods do; closures don't);
* ``exceptions`` — the transitive raise envelope (exception chains
  raised anywhere in the call closure, as ADA011 sees them);
* ``complete`` — whether the closure has no *holes*: call sites that
  invoke a bare parameter (higher-order calls static analysis cannot
  certify). ``holes`` lists them;
* ``code_hash`` — a whitespace-normalised digest of the function's
  own source span, so formatting edits never invalidate a
  certificate but semantic edits always do.

Per engine phase (``characterize`` → ``run-goal`` → ``rank`` →
``persist``) the artifact also carries a **closure fingerprint**: a
digest over every reachable function's ``code_hash``. The runtime
cache stamps entries with the producing phase's fingerprint and
treats a mismatch as a miss.

Emission (``repro lint --emit-certs``) is deterministic and
content-addressed: it depends only on the parsed source tree, never
on lint parallelism, caching or wall time, so serial/threads/process
backends and cold/warm caches all reproduce the committed artifact
byte for byte. ADA022 reports source whose ``code_hash`` drifted
from the committed artifact; ``scripts/check.sh`` re-emits and
byte-compares in CI.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.graph import (
    ModuleSummary,
    ProjectGraph,
    extract_summary,
    module_name_for,
)

#: Schema tag stamped on every certificate artifact.
CERTS_SCHEMA = "adalint/certificates/v1"

#: Where the committed artifact lives, relative to the project root.
CERTS_RELPATH = "contracts/certificates.json"

#: Effect kinds that taint determinism (vs. merely having effects).
DETERMINISM_TAINTS = ("wall-clock", "unseeded-rng", "env-read")

#: Engine phase entry points certified with a closure fingerprint.
#: Order mirrors the pipeline: characterize -> run-goal -> rank ->
#: persist.
PHASE_ENTRY_POINTS = {
    "characterize": (
        "repro.preprocess.characterization:characterize_log"
    ),
    "run-goal": "repro.core.engine:ADAHealth._run_goal",
    "rank": "repro.core.ranking:KnowledgeRanker.rank",
    "persist": "repro.kdb.kdb:KnowledgeBase.store_items",
}


# ----------------------------------------------------------------------
# Normalised source hashing
# ----------------------------------------------------------------------
def normalized_hash(lines: Iterable[str]) -> str:
    """Digest of source lines, blind to trailing space / blank lines.

    Line-based on purpose: it is identical across Python versions
    (unlike token streams or ``ast.dump``), so the committed artifact
    reproduces byte-for-byte on every interpreter in the CI matrix.
    """
    digest = hashlib.sha256()
    for line in lines:
        stripped = line.rstrip()
        if not stripped:
            continue
        digest.update(stripped.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def function_spans(source: str) -> Dict[str, Tuple[int, int]]:
    """``qualname -> (first, last)`` 1-based line span per function.

    Qualnames follow the summary extractor's scheme (``fn``,
    ``Class.method``, ``outer.<locals>.inner``); spans include
    decorators, so decorating a function changes its ``code_hash``.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    spans: Dict[str, Tuple[int, int]] = {}

    def visit(node: ast.AST, prefix: str, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                sep = ".<locals>." if in_function else "."
                qualname = (
                    f"{prefix}{sep}{child.name}"
                    if prefix
                    else child.name
                )
                start = min(
                    [child.lineno]
                    + [d.lineno for d in child.decorator_list]
                )
                spans[qualname] = (
                    start, child.end_lineno or child.lineno
                )
                visit(child, qualname, True)
            elif isinstance(child, ast.ClassDef):
                sep = ".<locals>." if in_function else "."
                qualname = (
                    f"{prefix}{sep}{child.name}"
                    if prefix
                    else child.name
                )
                visit(child, qualname, in_function)

    visit(tree, "", False)
    return spans


def function_hashes(source: str) -> Dict[str, str]:
    """``qualname -> code_hash`` for every function in ``source``."""
    lines = source.splitlines()
    return {
        qualname: normalized_hash(lines[start - 1 : end])
        for qualname, (start, end) in function_spans(source).items()
    }


# ----------------------------------------------------------------------
# Certificate construction
# ----------------------------------------------------------------------
def closure_holes(graph: ProjectGraph, qualid: str) -> List[str]:
    """Higher-order holes in ``qualid``'s transitive call closure.

    A *hole* is a call site that invokes one of the enclosing
    function's bare parameters — the one call shape whose callee (and
    therefore effects) static analysis cannot certify. Each entry is
    ``"module:qualname calls parameter 'p' at line N"``, sorted.
    """
    holes: List[str] = []
    for member in graph.reachable_from(qualid):
        info = graph.function(member)
        if info is None:
            continue
        params = {p for p in info.params if p not in ("self", "cls")}
        for site in info.calls:
            if (
                site.ref
                and site.ref[0] == "name"
                and site.ref[1] in params
            ):
                holes.append(
                    f"{member} calls parameter {site.ref[1]!r}"
                    f" at line {site.line}"
                )
    return sorted(set(holes))


def _determinism_class(kinds: Iterable[str]) -> str:
    kinds = set(kinds)
    if "wall-clock" in kinds:
        return "wall-clock"
    if "unseeded-rng" in kinds or "env-read" in kinds:
        return "tainted"
    return "seeded"


def function_certificate(
    graph: ProjectGraph,
    qualid: str,
    code_hashes: Dict[str, Dict[str, str]],
) -> Dict:
    """The certificate record for one function.

    ``code_hashes`` maps module -> qualname -> normalised hash (from
    :func:`function_hashes` over each module's source).
    """
    module, _, qualname = qualid.partition(":")
    info = graph.function(qualid)
    effects = sorted(
        {effect.kind for effect in graph.effects(qualid)}
    )
    exceptions = set()
    for member in graph.reachable_from(qualid):
        member_info = graph.function(member)
        if member_info is None:
            continue
        for chain, _line in member_info.raises:
            exceptions.add(chain)
    holes = closure_holes(graph, qualid)
    return {
        "code_hash": code_hashes.get(module, {}).get(qualname, ""),
        "complete": not holes,
        "determinism": _determinism_class(effects),
        "effect_free": not effects,
        "effects": effects,
        "exceptions": sorted(exceptions),
        "holes": holes,
        "line": info.line if info is not None else 0,
        "picklable": "<locals>" not in qualname,
    }


def phase_fingerprint(
    graph: ProjectGraph,
    entry: str,
    code_hashes: Dict[str, Dict[str, str]],
) -> str:
    """Digest of the entry's closure: every member's ``code_hash``.

    Whitespace-only edits anywhere leave it unchanged; a semantic
    edit to any function reachable from the entry changes it.
    """
    parts = []
    for member in sorted(graph.reachable_from(entry)):
        module, _, qualname = member.partition(":")
        parts.append(
            f"{member}={code_hashes.get(module, {}).get(qualname, '')}"
        )
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1e")
    return digest.hexdigest()


def build_certificates(
    graph: ProjectGraph, sources: Dict[str, str]
) -> Dict:
    """The full ``adalint/certificates/v1`` document.

    ``sources`` maps module name -> source text for every module the
    artifact should certify (conventionally the ``src/`` tree). The
    result is pure data derived from the parse — no timestamps, no
    environment — and is therefore reproducible byte-for-byte.
    """
    from repro.lint.runner import RULESET_VERSION

    code_hashes = {
        module: function_hashes(source)
        for module, source in sources.items()
    }
    functions: Dict[str, Dict] = {}
    for qualid, _info in graph.all_functions():
        module = qualid.partition(":")[0]
        if module not in sources:
            continue
        functions[qualid] = function_certificate(
            graph, qualid, code_hashes
        )
    phases: Dict[str, Dict] = {}
    for phase, entry in PHASE_ENTRY_POINTS.items():
        exists = graph.function(entry) is not None
        phases[phase] = {
            "entry": entry,
            "exists": exists,
            "fingerprint": (
                phase_fingerprint(graph, entry, code_hashes)
                if exists
                else ""
            ),
            "members": (
                len(graph.reachable_from(entry)) if exists else 0
            ),
        }
    document = {
        "schema": CERTS_SCHEMA,
        "ruleset": RULESET_VERSION,
        "functions": functions,
        "phases": phases,
    }
    document["artifact_hash"] = hashlib.sha256(
        json.dumps(document, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return document


def render_certificates(document: Dict) -> str:
    """The canonical byte-stable serialisation of the artifact."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Emission (the ``--emit-certs`` path)
# ----------------------------------------------------------------------
def emit_certificates(root: Path) -> Tuple[Dict, str]:
    """Build the artifact for ``root``'s ``src/`` tree.

    Returns ``(document, rendered_text)``. Parses the tree directly
    (no lint cache, no executor) so the output depends on nothing but
    the source bytes.
    """
    src_tree = Path(root) / "src"
    targets = [src_tree] if src_tree.is_dir() else [Path(root)]
    sources: Dict[str, str] = {}
    summaries: List[ModuleSummary] = []
    for target in targets:
        for file_path in sorted(target.rglob("*.py")):
            relpath = file_path.resolve().relative_to(
                Path(root).resolve()
            ).as_posix()
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue
            module = module_name_for(relpath)
            sources[module] = source
            summaries.append(extract_summary(tree, relpath, module))
    graph = ProjectGraph(summaries)
    document = build_certificates(graph, sources)
    return document, render_certificates(document)


def load_artifact(path: Path) -> Optional[Dict]:
    """The committed artifact at ``path``, or None if unusable."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, ValueError):
        return None
    if (
        not isinstance(document, dict)
        or document.get("schema") != CERTS_SCHEMA
        or not isinstance(document.get("functions"), dict)
    ):
        return None
    return document
