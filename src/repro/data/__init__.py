"""Dataset substrate: examination-log model, taxonomy, synthetic generator.

Public surface::

    from repro.data import (
        ExamLog, ExamRecord, PatientInfo,          # data model
        ExamTaxonomy, ExamType, build_default_taxonomy,
        DiabeticExamLogGenerator, GeneratorConfig,  # synthetic data
        paper_dataset, small_dataset, profile_labels,
        load_csv, save_csv, load_jsonl, save_jsonl,  # IO
        BlockedDataset, SharedMatrix, SharedMatrixHandle,  # data plane
        open_matrix, leaked_segments,
    )
"""

from repro.data.blocks import (
    SEGMENT_PREFIX,
    BlockedDataset,
    SharedMatrix,
    SharedMatrixHandle,
    leaked_segments,
    open_matrix,
    reap_segments,
)
from repro.data.io import load_csv, load_jsonl, save_csv, save_jsonl
from repro.data.records import ExamLog, ExamRecord, PatientInfo
from repro.data.synthetic import (
    DiabeticExamLogGenerator,
    GeneratorConfig,
    PatientProfile,
    default_profiles,
    paper_dataset,
    profile_labels,
    small_dataset,
)
from repro.data.taxonomy import (
    CATEGORIES,
    ExamTaxonomy,
    ExamType,
    build_default_taxonomy,
)

__all__ = [
    "CATEGORIES",
    "SEGMENT_PREFIX",
    "BlockedDataset",
    "DiabeticExamLogGenerator",
    "ExamLog",
    "ExamRecord",
    "ExamTaxonomy",
    "ExamType",
    "GeneratorConfig",
    "PatientInfo",
    "PatientProfile",
    "SharedMatrix",
    "SharedMatrixHandle",
    "build_default_taxonomy",
    "default_profiles",
    "leaked_segments",
    "load_csv",
    "load_jsonl",
    "open_matrix",
    "paper_dataset",
    "profile_labels",
    "reap_segments",
    "save_csv",
    "save_jsonl",
    "small_dataset",
]
