"""Examination-type taxonomy for the diabetic-care domain.

The paper's dataset contains 159 distinct examination types, "including
regular checkups as well as more specific diagnostic tests for complications
with varying degrees of severity (e.g. cardiovascular complications,
blindness)". This module defines a two-level taxonomy over examination
types — ``category -> exam type`` — that mirrors that structure:

* a head of *routine* and *metabolic* examinations prescribed to almost
  every diabetic patient (checkups, HbA1c, glycaemia, lipid panels...), and
* a long tail of *complication-specific* diagnostic tests (cardiovascular,
  ophthalmic, renal, neurological, podiatric, imaging).

The taxonomy serves three purposes in the reproduction:

1. the synthetic generator uses categories to give each patient
   sub-population a distinct examination profile (the latent cluster
   structure the paper's K-means experiment recovers);
2. the generalised-itemset miner (paper reference [2], MeTA) aggregates
   exam-level patterns to category level; and
3. the paper's horizontal partial-mining strategy orders exam types by
   frequency — the taxonomy's head/tail split is what makes "20 % of exam
   types = 70 % of rows" hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import DataError

# Category identifiers. Order matters: categories listed first contribute
# their named exams to the *head* of the global frequency ranking.
ROUTINE = "routine"
METABOLIC = "metabolic"
CARDIOVASCULAR = "cardiovascular"
OPHTHALMIC = "ophthalmic"
RENAL = "renal"
NEUROLOGICAL = "neurological"
PODIATRIC = "podiatric"
IMAGING = "imaging"

CATEGORIES: Tuple[str, ...] = (
    ROUTINE,
    METABOLIC,
    CARDIOVASCULAR,
    OPHTHALMIC,
    RENAL,
    NEUROLOGICAL,
    PODIATRIC,
    IMAGING,
)

# Hand-named examination types per category. These are the clinically
# recognisable exams; programmatically generated "panel" exams fill each
# category up to its quota so the taxonomy totals exactly 159 types.
_NAMED_EXAMS: Dict[str, List[str]] = {
    ROUTINE: [
        "general checkup",
        "diabetology visit",
        "blood pressure measurement",
        "body weight measurement",
        "dietary counselling",
        "nurse educational session",
        "self-monitoring review",
        "influenza vaccination",
        "smoking cessation counselling",
        "annual review visit",
    ],
    METABOLIC: [
        "glycated hemoglobin (HbA1c)",
        "fasting plasma glucose",
        "oral glucose tolerance test",
        "total cholesterol",
        "HDL cholesterol",
        "LDL cholesterol",
        "triglycerides",
        "complete blood count",
        "liver function panel",
        "thyroid stimulating hormone",
        "uric acid",
        "electrolyte panel",
        "c-peptide",
        "fructosamine",
    ],
    CARDIOVASCULAR: [
        "electrocardiogram (ECG)",
        "echocardiography",
        "exercise stress test",
        "ankle-brachial index",
        "carotid doppler ultrasound",
        "24h holter monitoring",
        "24h ambulatory blood pressure",
        "coronary angiography",
        "myocardial scintigraphy",
        "cardiology consultation",
    ],
    OPHTHALMIC: [
        "fundus oculi examination",
        "retinal photography",
        "fluorescein angiography",
        "optical coherence tomography",
        "tonometry",
        "visual acuity test",
        "laser photocoagulation",
        "ophthalmology consultation",
    ],
    RENAL: [
        "microalbuminuria",
        "serum creatinine",
        "estimated GFR",
        "urinalysis",
        "24h urine protein",
        "renal ultrasound",
        "nephrology consultation",
        "cystatin C",
    ],
    NEUROLOGICAL: [
        "monofilament sensitivity test",
        "vibration perception threshold",
        "nerve conduction study",
        "autonomic neuropathy tests",
        "neurology consultation",
    ],
    PODIATRIC: [
        "diabetic foot examination",
        "podiatry consultation",
        "foot ulcer dressing",
        "transcutaneous oximetry",
    ],
    IMAGING: [
        "chest x-ray",
        "abdominal ultrasound",
        "bone densitometry",
        "lower limb doppler",
        "brain CT scan",
    ],
}

# Number of exam types per category; totals 159 as in the paper.
_CATEGORY_QUOTAS: Dict[str, int] = {
    ROUTINE: 18,
    METABOLIC: 30,
    CARDIOVASCULAR: 26,
    OPHTHALMIC: 20,
    RENAL: 20,
    NEUROLOGICAL: 15,
    PODIATRIC: 11,
    IMAGING: 19,
}

#: Total number of distinct examination types, as reported by the paper.
PAPER_EXAM_TYPE_COUNT = 159


@dataclass(frozen=True)
class ExamType:
    """A single examination type.

    Attributes
    ----------
    code:
        Stable integer identifier, also the column index in VSM matrices.
    name:
        Human-readable name (unique across the taxonomy).
    category:
        Taxonomy category the exam belongs to (one of :data:`CATEGORIES`).
    rank:
        Global frequency rank (0 = most frequent). The synthetic generator
        draws exam popularity from a Zipf law over this rank, which yields
        the sparse, heavy-tailed distribution the paper describes.
    """

    code: int
    name: str
    category: str
    rank: int


@dataclass
class ExamTaxonomy:
    """Two-level taxonomy ``category -> examination types``.

    Instances are immutable in practice; build one with
    :func:`build_default_taxonomy` or from an explicit list of
    :class:`ExamType`.
    """

    exam_types: List[ExamType] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [e.name for e in self.exam_types]
        if len(set(names)) != len(names):
            raise DataError("exam type names must be unique")
        codes = [e.code for e in self.exam_types]
        if sorted(codes) != list(range(len(codes))):
            raise DataError("exam type codes must be 0..n-1")
        self._by_code = {e.code: e for e in self.exam_types}
        self._by_name = {e.name: e for e in self.exam_types}

    def __len__(self) -> int:
        return len(self.exam_types)

    def __iter__(self):
        return iter(self.exam_types)

    def by_code(self, code: int) -> ExamType:
        """Return the exam type with the given integer code."""
        try:
            return self._by_code[code]
        except KeyError:
            raise DataError(f"unknown exam code: {code!r}") from None

    def by_name(self, name: str) -> ExamType:
        """Return the exam type with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DataError(f"unknown exam name: {name!r}") from None

    def category_of(self, code: int) -> str:
        """Return the category of the exam with the given code."""
        return self.by_code(code).category

    def codes_in_category(self, category: str) -> List[int]:
        """Return all exam codes belonging to ``category``."""
        if category not in CATEGORIES:
            raise DataError(f"unknown category: {category!r}")
        return [e.code for e in self.exam_types if e.category == category]

    @property
    def categories(self) -> Tuple[str, ...]:
        """The ordered tuple of category names."""
        return CATEGORIES

    def ranked_codes(self) -> List[int]:
        """Exam codes sorted by global frequency rank (most frequent first)."""
        return [e.code for e in sorted(self.exam_types, key=lambda e: e.rank)]

    def parent_map(self) -> Dict[str, str]:
        """Return ``exam name -> category`` for generalised itemset mining."""
        return {e.name: e.category for e in self.exam_types}


def _generated_names(category: str, count: int) -> List[str]:
    """Fill a category with generated panel names beyond the named exams."""
    return [f"{category} panel {i + 1}" for i in range(count)]


def build_default_taxonomy(
    n_exam_types: int = PAPER_EXAM_TYPE_COUNT,
    quotas: Optional[Dict[str, int]] = None,
) -> ExamTaxonomy:
    """Build the default diabetic-care taxonomy.

    Parameters
    ----------
    n_exam_types:
        Total number of exam types. Defaults to the paper's 159. Other
        values scale each category quota proportionally (useful for small
        test fixtures).
    quotas:
        Optional explicit ``category -> count`` map overriding the default
        quotas; must sum to ``n_exam_types``.

    Returns
    -------
    ExamTaxonomy
        Taxonomy whose global frequency ranks interleave categories so that
        routine/metabolic exams dominate the head of the distribution and
        complication-specific tests populate the tail.
    """
    if n_exam_types < len(CATEGORIES):
        raise DataError("need at least one exam type per category")
    if quotas is None:
        if n_exam_types == PAPER_EXAM_TYPE_COUNT:
            quotas = dict(_CATEGORY_QUOTAS)
        else:
            quotas = _scale_quotas(n_exam_types)
    if sum(quotas.values()) != n_exam_types:
        raise DataError(
            f"quotas sum to {sum(quotas.values())}, expected {n_exam_types}"
        )

    per_category: Dict[str, List[str]] = {}
    for category in CATEGORIES:
        quota = quotas.get(category, 0)
        named = _NAMED_EXAMS.get(category, [])[:quota]
        extra = _generated_names(category, quota - len(named))
        per_category[category] = named + extra

    ordered_names = _interleave_for_rank(per_category)
    exam_types = [
        ExamType(code=rank, name=name, category=category, rank=rank)
        for rank, (name, category) in enumerate(ordered_names)
    ]
    return ExamTaxonomy(exam_types=exam_types)


def _scale_quotas(n_exam_types: int) -> Dict[str, int]:
    """Scale the default quotas to a different total, preserving shares."""
    total = sum(_CATEGORY_QUOTAS.values())
    quotas = {
        category: max(1, (count * n_exam_types) // total)
        for category, count in _CATEGORY_QUOTAS.items()
    }
    # Fix rounding drift by adjusting the largest categories first.
    drift = n_exam_types - sum(quotas.values())
    order = sorted(CATEGORIES, key=lambda c: -_CATEGORY_QUOTAS[c])
    i = 0
    while drift != 0:
        category = order[i % len(order)]
        step = 1 if drift > 0 else -1
        if quotas[category] + step >= 1:
            quotas[category] += step
            drift -= step
        i += 1
    return quotas


def _interleave_for_rank(
    per_category: Dict[str, List[str]],
) -> List[Tuple[str, str]]:
    """Order exam types so routine care fills the top 20% of ranks.

    The head (the top fifth of the frequency ranking — the subset the
    paper's first partial-mining iteration keeps) holds only routine and
    metabolic exams: the care every diabetic receives. Complication-
    specific exams start immediately after the head, interleaved across
    categories so each complication's most common tests rank earliest.
    This placement is what gives the paper's crossover its shape: a 20 %
    feature subset carries no complication signal, while a 40 % subset
    recovers it.
    """
    generic: List[Tuple[str, str]] = []
    for category in (ROUTINE, METABOLIC):
        generic.extend((name, category) for name in per_category[category])

    tail_sources = [
        [(name, category) for name in per_category[category]]
        for category in CATEGORIES
        if category not in (ROUTINE, METABOLIC)
    ]
    tail: List[Tuple[str, str]] = []
    index = 0
    while any(tail_sources):
        source = tail_sources[index % len(tail_sources)]
        if source:
            tail.append(source.pop(0))
        index += 1

    total = len(generic) + len(tail)
    head_size = min(len(generic), max(1, round(0.2 * total)))
    # Ranks [head, 2*head) — the paper's 20-40 % frequency band — hold the
    # complication categories' most common tests (round-robin across
    # categories); the remaining generic exams (rare metabolic panels)
    # sink into the deep tail after the complication exams.
    rest_generic = generic[head_size:]
    return list(generic[:head_size]) + tail + rest_generic


def category_shares(taxonomy: ExamTaxonomy) -> Dict[str, float]:
    """Return the fraction of exam types in each category."""
    total = len(taxonomy)
    return {
        category: len(taxonomy.codes_in_category(category)) / total
        for category in CATEGORIES
    }
