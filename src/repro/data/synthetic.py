"""Calibrated synthetic diabetic examination-log generator.

The paper evaluates ADA-HEALTH on "a real, anonymized dataset of diabetic
patients ... the examination log data of 6,380 patients (age range 4-95
years) with overt diabetes, covering the time period of one year, for a
total of 95,788 records. ... 159 different types of examinations are
present". That dataset is proprietary, so this module provides the closest
synthetic equivalent. The generator is calibrated so every statistic the
paper publishes holds for the synthetic log:

* **Size.** 6,380 patients, 159 exam types, ≈95,788 records over 365 days.
* **Ages.** 4–95, a mixture of a dominant elderly type-2 population and a
  small young type-1 population.
* **Sparseness and skew.** Exam-type popularity follows a Zipf law over the
  taxonomy rank. With exponent 1 over 159 types, the top 20 % of exam types
  account for ≈70 % of records and the top 40 % for ≈85 % — exactly the
  head/tail structure the paper's horizontal partial-mining experiment
  exploits ("up to 20 %, 40 % and 100 % of the total number of examination
  types, corresponding to 70 %, 85 % and 100 % of the original row data").
* **Latent cluster structure.** Patients belong to complication profiles
  (uncomplicated, cardiovascular, ophthalmic, renal, neuropathic,
  multi-complication) that multiply the prescription rates of the matching
  exam categories. K-means over the VSM recovers these groups — the
  "groups of patients with similar examination history" the paper mines.
* **Correlated exams.** Exams in the same category co-occur on a patient's
  record (panels "prescribed in conjunction or needed to monitor/diagnose
  the same condition"), the stated reason partial mining loses so little.

Every public entry point takes an explicit seed; the same seed always
yields the identical log.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.records import ExamLog, ExamRecord, PatientInfo
from repro.data.taxonomy import (
    CARDIOVASCULAR,
    CATEGORIES,
    IMAGING,
    METABOLIC,
    NEUROLOGICAL,
    OPHTHALMIC,
    PODIATRIC,
    RENAL,
    ROUTINE,
    ExamTaxonomy,
    build_default_taxonomy,
)
from repro.exceptions import DataError

#: Headline statistics of the paper's dataset (§IV).
PAPER_N_PATIENTS = 6380
PAPER_N_RECORDS = 95788
PAPER_N_EXAM_TYPES = 159
PAPER_AGE_RANGE = (4, 95)
PAPER_DAYS = 365

#: Target record-coverage of the frequency-ranked exam-type bands,
#: matching §IV-B: the top 20 % of exam types carry ~70 % of records and
#: the next 20 % a further ~17 % (cumulative ~87 %, the paper reports 85).
HEAD_SHARE = 0.70
BAND_SHARE = 0.17


def banded_popularity(
    n_types: int,
    head_fraction: float = 0.2,
    head_share: float = HEAD_SHARE,
    band_share: float = BAND_SHARE,
    exponent: float = 1.0,
) -> np.ndarray:
    """Expected record share per exam rank, in three frequency bands.

    * **head** (top ``head_fraction`` of ranks) — routine/metabolic care:
      a Zipf curve with a floor, carrying ``head_share`` of all records;
    * **band** (next ``head_fraction``) — the complication categories'
      most common tests: gently decreasing, carrying ``band_share``;
    * **tail** (the rest) — rare diagnostics: a Zipf tail with the
      remaining mass.

    The floor inside the head keeps every head exam strictly more
    frequent than every band exam, so the *observed* frequency ranking
    reproduces the taxonomy rank order and the paper's coverage curve
    holds by construction.
    """
    if n_types < 5:
        raise DataError("banded popularity needs at least 5 exam types")
    head_n = max(1, round(head_fraction * n_types))
    band_n = max(1, min(round(head_fraction * n_types), n_types - head_n))
    tail_n = n_types - head_n - band_n
    ranks = np.arange(n_types, dtype=float)

    head = 1.0 / np.power(ranks[:head_n] + 1.0, exponent)
    head = np.maximum(head, 0.1 * head[0])
    head = head / head.sum() * head_share

    # Gentle decay inside the band: the first few slots are the
    # complication categories' flagship monitoring exams (performed by
    # most affected patients), the rest are progressively rarer
    # follow-up tests.
    band = 1.0 / np.power(np.arange(band_n) + 1.0, 0.3)
    band = band / band.sum() * band_share

    if tail_n > 0:
        # Gentle linear decay whose top stays below the band's bottom
        # share, so the observed frequency ranking preserves the bands.
        tail = np.linspace(1.0, 0.15, tail_n)
        tail = tail / tail.sum() * (1.0 - head_share - band_share)
    else:
        tail = np.empty(0)

    popularity = np.concatenate([head, band, tail])
    return popularity / popularity.sum()


@dataclass(frozen=True)
class PatientProfile:
    """A latent patient sub-population.

    ``category_boost`` multiplies the base prescription rate of each exam
    category; ``intensity`` scales the patient's overall examination volume
    (complicated patients see the clinic more often).
    """

    name: str
    share: float
    category_boost: Dict[str, float]
    intensity: float = 1.0

    def boost_for(self, category: str) -> float:
        """Rate multiplier applied to exams of ``category``."""
        return self.category_boost.get(category, 1.0)


def default_profiles() -> List[PatientProfile]:
    """The default complication-profile mixture.

    Shares sum to 1. Boosts are *relative weights*: the generator
    normalises each exam's rates so the exam's expected total equals its
    popularity, and the boosts only decide which patients receive those
    records. A boost of 60 against a suppression of 0.02 means virtually
    every record of a complication exam lands on the matching
    sub-population — the planted cluster structure.
    """
    suppress = {
        CARDIOVASCULAR: 0.01,
        OPHTHALMIC: 0.01,
        RENAL: 0.01,
        NEUROLOGICAL: 0.01,
        PODIATRIC: 0.01,
        IMAGING: 0.3,
    }
    return [
        PatientProfile("uncomplicated", 0.70, dict(suppress), intensity=0.9),
        PatientProfile(
            "cardiovascular",
            0.06,
            {**suppress, CARDIOVASCULAR: 60.0, IMAGING: 2.0},
            intensity=1.1,
        ),
        PatientProfile(
            "ophthalmic",
            0.06,
            {**suppress, OPHTHALMIC: 60.0},
            intensity=1.0,
        ),
        PatientProfile(
            "renal",
            0.06,
            {**suppress, RENAL: 60.0, METABOLIC: 1.2},
            intensity=1.05,
        ),
        PatientProfile(
            "neuropathic",
            0.06,
            {**suppress, NEUROLOGICAL: 60.0, PODIATRIC: 60.0},
            intensity=1.0,
        ),
        PatientProfile(
            "multi-complication",
            0.06,
            {
                CARDIOVASCULAR: 10.0,
                OPHTHALMIC: 10.0,
                RENAL: 10.0,
                NEUROLOGICAL: 10.0,
                PODIATRIC: 10.0,
                IMAGING: 3.0,
            },
            intensity=1.3,
        ),
    ]


@dataclass
class GeneratorConfig:
    """Configuration of :class:`DiabeticExamLogGenerator`.

    The defaults reproduce the paper's dataset. ``zipf_exponent`` controls
    the popularity skew over exam-type ranks; 1.0 yields the paper's
    20 %-of-types ≈ 70 %-of-rows head.
    """

    n_patients: int = PAPER_N_PATIENTS
    n_exam_types: int = PAPER_N_EXAM_TYPES
    target_records: int = PAPER_N_RECORDS
    days: int = PAPER_DAYS
    zipf_exponent: float = 1.0
    age_range: Tuple[int, int] = PAPER_AGE_RANGE
    young_share: float = 0.08
    mean_visits: float = 7.0
    profiles: List[PatientProfile] = field(default_factory=default_profiles)

    def __post_init__(self) -> None:
        if self.n_patients <= 0 or self.n_exam_types <= 0:
            raise DataError("n_patients and n_exam_types must be positive")
        if self.target_records <= 0:
            raise DataError("target_records must be positive")
        if self.days <= 0:
            raise DataError("days must be positive")
        total_share = sum(p.share for p in self.profiles)
        if abs(total_share - 1.0) > 1e-9:
            raise DataError(
                f"profile shares must sum to 1 (got {total_share})"
            )


class DiabeticExamLogGenerator:
    """Stochastic generator of diabetic examination logs.

    Usage::

        log = DiabeticExamLogGenerator(seed=7).generate()

    The generation model: each exam type ``j`` has a base popularity share
    ``p_j`` proportional to ``1 / rank_j ** s`` (Zipf). Patient ``i`` draws
    a profile and a personal intensity; their per-exam Poisson rate is
    ``p_j * boost(profile_i, category_j) * intensity_i``, rescaled so the
    expected total record count equals ``target_records``. Counts are
    Poisson draws; each event lands on one of the patient's visit days.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    def generate(self) -> ExamLog:
        """Generate the full examination log."""
        rng = np.random.default_rng(self.seed)
        cfg = self.config
        taxonomy = build_default_taxonomy(cfg.n_exam_types)

        profile_index = self._draw_profiles(rng)
        ages = self._draw_ages(rng)
        rates = self._rate_matrix(taxonomy, profile_index, rng)
        counts = rng.poisson(rates)
        # Every patient in the paper's log has at least one record (they
        # are enrolled diabetics): give record-less patients one routine
        # checkup so the log contains exactly ``n_patients`` patients.
        empty = np.nonzero(counts.sum(axis=1) == 0)[0]
        top_exam = taxonomy.ranked_codes()[0]
        counts[empty, top_exam] = 1

        patients = [
            PatientInfo(
                patient_id=i,
                age=int(ages[i]),
                profile=cfg.profiles[profile_index[i]].name,
            )
            for i in range(cfg.n_patients)
        ]
        records = self._materialise_records(counts, rng)
        return ExamLog(records, taxonomy=taxonomy, patients=patients)

    # ------------------------------------------------------------------
    def generate_blocks(
        self, block_rows: int, n_patients: Optional[int] = None
    ) -> Iterator[ExamLog]:
        """Generate the log block-by-block, ``block_rows`` patients each.

        Multi-million-record logs never fit the flat :meth:`generate`
        path comfortably; this generator yields one independent
        :class:`ExamLog` per patient block, so a streaming consumer
        (blockwise count matrices, blockwise itemset mining) holds at
        most one block of records at a time. ``n_patients`` overrides
        the configured patient count — the scale knob for past-memory
        datasets — while the per-patient record volume and the whole
        statistical calibration (profiles, Zipf bands, visit model) are
        preserved per block.

        Each block draws from its own deterministically derived seed
        (``seed * 1_000_003 + block_index``), so the blocked stream is
        fully reproducible, though it is a *different* sample than the
        flat :meth:`generate` draw. Patient ids are offset by the block
        start and therefore globally unique;
        :meth:`repro.data.ExamLog.concat` reassembles a flat log when
        memory allows.
        """
        cfg = self.config
        if block_rows < 1:
            raise DataError("block_rows must be >= 1")
        total = cfg.n_patients if n_patients is None else int(n_patients)
        if total < 1:
            raise DataError("n_patients must be >= 1")
        taxonomy = build_default_taxonomy(cfg.n_exam_types)
        per_patient = cfg.target_records / cfg.n_patients
        for index, start in enumerate(range(0, total, block_rows)):
            block_n = min(start + block_rows, total) - start
            block_cfg = replace(
                cfg,
                n_patients=block_n,
                target_records=max(1, round(per_patient * block_n)),
            )
            block = DiabeticExamLogGenerator(
                block_cfg, seed=self.seed * 1_000_003 + index
            ).generate()
            records = [
                ExamRecord(
                    patient_id=record.patient_id + start,
                    day=record.day,
                    exam_code=record.exam_code,
                )
                for record in block.records
            ]
            patients = [
                PatientInfo(
                    patient_id=info.patient_id + start,
                    age=info.age,
                    profile=info.profile,
                )
                for info in block.patients.values()
            ]
            yield ExamLog(records, taxonomy=taxonomy, patients=patients)

    # ------------------------------------------------------------------
    def _draw_profiles(self, rng: np.random.Generator) -> np.ndarray:
        """Assign a profile index to each patient."""
        cfg = self.config
        shares = np.array([p.share for p in cfg.profiles])
        return rng.choice(len(cfg.profiles), size=cfg.n_patients, p=shares)

    def _draw_ages(self, rng: np.random.Generator) -> np.ndarray:
        """Draw ages from the type-2 / type-1 mixture, clipped to range."""
        cfg = self.config
        lo, hi = cfg.age_range
        is_young = rng.random(cfg.n_patients) < cfg.young_share
        old = rng.normal(66.0, 12.0, size=cfg.n_patients)
        young = rng.normal(22.0, 9.0, size=cfg.n_patients)
        ages = np.where(is_young, young, old)
        return np.clip(np.round(ages), lo, hi).astype(int)

    def _rate_matrix(
        self,
        taxonomy: ExamTaxonomy,
        profile_index: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-(patient, exam) Poisson rates scaled to the target volume.

        The model separates *how much* an exam is prescribed from *to
        whom*: the banded popularity curve fixes each exam type's
        expected total record count (which pins the paper's coverage
        curve exactly — top 20 % of types ≈ 70 % of records, top 40 %
        ≈ 85 %), and the profile boosts only redistribute that total
        across patients, concentrating complication exams on the
        matching sub-population.
        """
        cfg = self.config
        popularity = banded_popularity(
            len(taxonomy), exponent=cfg.zipf_exponent
        )

        boost = np.ones((len(cfg.profiles), len(taxonomy)))
        for p, profile in enumerate(cfg.profiles):
            for exam in taxonomy:
                boost[p, exam.code] = profile.boost_for(exam.category)

        intensity = rng.gamma(shape=6.0, scale=1.0 / 6.0, size=cfg.n_patients)
        profile_intensity = np.array(
            [cfg.profiles[p].intensity for p in profile_index]
        )
        per_patient = intensity * profile_intensity

        weights = boost[profile_index] * per_patient[:, None]
        column_totals = weights.sum(axis=0)
        column_totals[column_totals == 0] = 1.0
        rates = weights / column_totals[None, :]
        rates *= popularity[None, :] * cfg.target_records
        return rates

    def _materialise_records(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> List[ExamRecord]:
        """Expand the count matrix into dated records via visit days."""
        cfg = self.config
        records: List[ExamRecord] = []
        n_patients, __ = counts.shape
        totals = counts.sum(axis=1)
        for patient_id in range(n_patients):
            total = int(totals[patient_id])
            if total == 0:
                continue
            n_visits = max(1, int(rng.poisson(cfg.mean_visits)))
            n_visits = min(n_visits, cfg.days)
            visit_days = rng.choice(cfg.days, size=n_visits, replace=False)
            exam_codes = np.repeat(
                np.nonzero(counts[patient_id])[0],
                counts[patient_id][counts[patient_id] > 0],
            )
            days = visit_days[rng.integers(0, n_visits, size=total)]
            records.extend(
                ExamRecord(
                    patient_id=patient_id,
                    day=int(day),
                    exam_code=int(code),
                )
                for code, day in zip(exam_codes, days)
            )
        return records


def paper_dataset(seed: int = 0) -> ExamLog:
    """Generate the full-size dataset matching the paper's statistics."""
    return DiabeticExamLogGenerator(seed=seed).generate()


def small_dataset(
    n_patients: int = 300,
    n_exam_types: int = 40,
    target_records: int = 4500,
    seed: int = 0,
    **overrides,
) -> ExamLog:
    """Generate a scaled-down dataset for tests and examples.

    Keeps the paper dataset's qualitative structure (profiles, Zipf head,
    one-year horizon) at a fraction of the size, so unit tests run fast.
    """
    config = GeneratorConfig(
        n_patients=n_patients,
        n_exam_types=n_exam_types,
        target_records=target_records,
        **overrides,
    )
    return DiabeticExamLogGenerator(config=config, seed=seed).generate()


def profile_labels(log: ExamLog) -> np.ndarray:
    """Return the latent profile index per patient (ground truth).

    Only defined for logs produced by this generator (patients carry a
    ``profile`` attribute). Useful to validate that clustering recovers
    the planted sub-populations.
    """
    names: List[str] = []
    for pid in log.patient_ids():
        info = log.patients.get(pid)
        if info is None or info.profile is None:
            raise DataError(
                "log has no profile ground truth (not synthetic?)"
            )
        names.append(info.profile)
    order = sorted(set(names))
    index = {name: i for i, name in enumerate(order)}
    return np.array([index[name] for name in names])
