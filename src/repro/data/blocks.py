"""Out-of-core data plane: shared-memory matrices and blocked datasets.

The paper's premise is automated analysis over *large* clinical exam
logs, but a naive parallel sweep pickles the full patient-by-exam
matrix into every worker task — the dominant cost of the process
backend. This module provides the zero-copy alternative:

* :class:`SharedMatrix` — a numpy array backed by a
  ``multiprocessing.shared_memory`` segment with an explicit
  create/attach/close/unlink lifecycle. Its picklable
  :class:`SharedMatrixHandle` is a ~100-byte descriptor (name, shape,
  dtype, memory order), so a :class:`repro.cloud.TaskSpec` ships the
  descriptor and workers map the data instead of receiving it.
* :class:`BlockedDataset` — fixed-size row blocks over one contiguous
  backing matrix, with per-block fingerprints and a whole-dataset
  fingerprint computed *streamingly* yet byte-identical to
  :func:`repro.core.cache.fingerprint_array` on the flat matrix, so
  the :class:`repro.core.AnalysisCache` addresses blocked and flat
  datasets identically.
* :func:`open_matrix` — the worker-side resolver: a context manager
  that turns an array, a :class:`BlockedDataset` or a handle into an
  ndarray view and guarantees the segment is detached afterwards.

Serial and thread backends never touch shared memory: leases
short-circuit to direct views (see :mod:`repro.cloud.transport`).

Cleanup discipline
------------------
Every segment created here is tracked in a module-level registry and
named with :data:`SEGMENT_PREFIX`, so tests (and operators) can assert
that a run — even a faulty one — left zero segments behind via
:func:`leaked_segments`. Owners unlink in ``finally`` blocks; workers
only ever attach and close.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import DataError

#: Prefix of every shared-memory segment created by this library;
#: :func:`leaked_segments` scans for it.
SEGMENT_PREFIX = "adarepro-"

def leaked_segments() -> List[str]:
    """Library-created segments still present on the host.

    Scans the POSIX shared-memory directory (``/dev/shm`` on Linux) for
    :data:`SEGMENT_PREFIX` names. An empty list after a run — faulty or
    not — is the cleanup invariant the test suite pins. On hosts
    without a scannable segment directory the check degrades to an
    empty answer rather than guessing.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # non-POSIX host: nothing to scan
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if name.startswith(SEGMENT_PREFIX)
    )


def reap_segments(names: Optional[Sequence[str]] = None) -> List[str]:
    """Unlink leaked library segments; returns the names removed.

    The orphan reaper for crashed runs (``repro shm reap``): a worker
    killed hard — SIGKILL, OOM — never reaches its ``finally`` block,
    so its :data:`SEGMENT_PREFIX` segments pin host memory until
    something removes them. Only library-prefixed names are touched
    (foreign ``/dev/shm`` entries are never reaped); ``names``
    restricts the reap further. A segment that vanishes concurrently
    is skipped, so the reaper is safe to run repeatedly or in
    parallel.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # non-POSIX host: nothing to reap
        return []
    targets = leaked_segments() if names is None else [
        name for name in names if name.startswith(SEGMENT_PREFIX)
    ]
    reaped = []
    for name in targets:
        try:
            os.unlink(os.path.join(root, name))
        except FileNotFoundError:
            continue
        reaped.append(name)
    return reaped


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Unregister an *attached* segment from the resource tracker.

    On CPython < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with ``resource_tracker``, which unlinks it when the
    attaching process exits — destroying data the owner still serves.
    Attachers are not owners; only the creator may unlink.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable descriptor of a :class:`SharedMatrix` segment.

    This is the object a :class:`repro.cloud.TaskSpec` ships instead of
    the matrix: ~100 bytes regardless of the array size.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    #: Memory order of the segment bytes ("C" or "F"). Preserving the
    #: source array's order keeps floating-point summation order — and
    #: therefore results — bit-identical between a worker's mapped view
    #: and the owner's original array.
    order: str = "C"

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


class SharedMatrix:
    """A numpy array in a named shared-memory segment.

    Create one from an in-memory array with :meth:`create` (the calling
    process becomes the *owner*, responsible for :meth:`unlink`), or
    map an existing segment with :meth:`attach` (workers; they only
    :meth:`close`). Using the instance as a context manager closes on
    exit and — for owners — unlinks, so no exit path leaks a segment.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
        order: str = "C",
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self.order = order
        self.name = shm.name

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(cls, matrix) -> "SharedMatrix":
        """Copy ``matrix`` into a fresh segment owned by this process.

        The source array's memory order survives the copy: a
        Fortran-ordered matrix (e.g. the L2 normaliser's output) maps
        back Fortran-ordered in the worker, so every downstream
        reduction sums in the same order and results stay bit-identical
        to the serial path.
        """
        matrix = np.asarray(matrix)
        order = (
            "F"
            if matrix.ndim > 1
            and matrix.flags.f_contiguous
            and not matrix.flags.c_contiguous
            else "C"
        )
        matrix = np.asarray(matrix, order=order)
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, matrix.nbytes), name=name
        )
        shared = cls(shm, matrix.shape, matrix.dtype, owner=True, order=order)
        shared.array[...] = matrix
        return shared

    @classmethod
    def attach(cls, handle: SharedMatrixHandle) -> "SharedMatrix":
        """Map an existing segment described by ``handle`` (no copy)."""
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        except FileNotFoundError as exc:
            raise DataError(
                f"shared segment {handle.name!r} does not exist"
                " (owner already unlinked it?)"
            ) from exc
        _untrack(shm)
        return cls(
            shm,
            tuple(handle.shape),
            np.dtype(handle.dtype),
            owner=False,
            order=handle.order,
        )

    def close(self) -> None:
        """Detach the mapping; idempotent. Views become invalid."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only); idempotent."""
        if not self.owner:
            raise DataError(
                f"only the owner may unlink segment {self.name!r}"
            )
        self.close()
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return
        _untrack(segment)
        try:
            segment.unlink()
        finally:
            # The re-attach above created a fresh mapping of its own;
            # unlink destroys the *name*, not this process's mapping.
            segment.close()

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    # -- access --------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The live ndarray view into the segment."""
        if self._shm is None:
            raise DataError(f"segment {self.name!r} is closed")
        return np.ndarray(
            self.shape,
            dtype=self.dtype,
            buffer=self._shm.buf,
            order=self.order,
        )

    def handle(self) -> SharedMatrixHandle:
        """The picklable descriptor workers attach with."""
        return SharedMatrixHandle(
            name=self.name,
            shape=tuple(self.shape),
            dtype=self.dtype.str,
            order=self.order,
        )


#: Anything :func:`open_matrix` can resolve into an ndarray.
MatrixRef = Union[np.ndarray, SharedMatrixHandle, "BlockedDataset"]


@contextmanager
def open_matrix(ref: MatrixRef) -> Iterator[np.ndarray]:
    """Resolve a matrix reference into an ndarray view.

    Arrays and :class:`BlockedDataset` objects pass through unchanged
    (serial/thread short-circuit: zero copies, zero syscalls).
    :class:`SharedMatrixHandle` attaches the segment for the duration
    of the ``with`` block and detaches in ``finally`` — the worker-side
    half of the cleanup contract. Results computed from the view must
    be fresh arrays (labels, centres, scores all are), never views into
    the segment.
    """
    if isinstance(ref, SharedMatrixHandle):
        shared = SharedMatrix.attach(ref)
        try:
            yield shared.array
        finally:
            shared.close()
    elif isinstance(ref, BlockedDataset):
        yield ref.matrix
    else:
        yield np.asarray(ref)


class BlockedDataset:
    """Fixed-size row blocks over one contiguous backing matrix.

    Blocks are *views* — no data is copied — so exact algorithms that
    run on :attr:`matrix` produce results byte-identical to the flat
    path, while streaming consumers iterate :meth:`iter_blocks` and
    never hold more than ``block_rows`` rows of derived state.

    Parameters
    ----------
    matrix:
        The backing 2-D array. Kept with its memory order as-is — the
        flat path and the blocked path read the very same buffer, which
        is what makes their results byte-identical.
    block_rows:
        Rows per block. The final block is shorter when ``n_rows`` is
        not a multiple; ``block_rows > n_rows`` yields a single block.
    """

    def __init__(self, matrix, block_rows: int) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise DataError(
                f"BlockedDataset needs a 2-D matrix, got {matrix.ndim}-D"
            )
        if block_rows < 1:
            raise DataError("block_rows must be >= 1")
        self.matrix = matrix
        self.block_rows = int(block_rows)

    # -- geometry ------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def n_blocks(self) -> int:
        """Number of blocks; an empty matrix has zero blocks."""
        return -(-self.n_rows // self.block_rows)

    def __len__(self) -> int:
        return self.n_rows

    # -- block access --------------------------------------------------
    def block(self, index: int) -> np.ndarray:
        """Row-slice view of block ``index``."""
        if not 0 <= index < self.n_blocks:
            raise DataError(
                f"block index {index} out of range"
                f" (have {self.n_blocks} blocks)"
            )
        start = index * self.block_rows
        return self.matrix[start : start + self.block_rows]

    def iter_blocks(self) -> Iterator[np.ndarray]:
        """Yield every block in row order."""
        for index in range(self.n_blocks):
            yield self.block(index)

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.iter_blocks()

    # -- fingerprints --------------------------------------------------
    def block_fingerprint(self, index: int) -> str:
        """Content digest of one block.

        Matches :func:`repro.core.cache.fingerprint_array` of the block
        view, so per-block caching composes with the existing cache.
        """
        block = np.ascontiguousarray(self.block(index))
        header = f"{block.shape}|{block.dtype.str}|".encode()
        return hashlib.sha256(header + block.tobytes()).hexdigest()

    def fingerprint(self) -> str:
        """Whole-dataset digest, computed one block at a time.

        Byte-identical to ``fingerprint_array(self.matrix)``: the same
        shape/dtype header followed by the row bytes, fed to SHA-256
        incrementally. The :class:`repro.core.AnalysisCache` therefore
        shares entries between blocked and flat representations of the
        same data.
        """
        digest = hashlib.sha256()
        digest.update(
            f"{self.matrix.shape}|{self.matrix.dtype.str}|".encode()
        )
        for block in self.iter_blocks():
            digest.update(np.ascontiguousarray(block).tobytes())
        return digest.hexdigest()

    # -- construction --------------------------------------------------
    @classmethod
    def from_blocks(
        cls, blocks: Sequence[np.ndarray], block_rows: Optional[int] = None
    ) -> "BlockedDataset":
        """Assemble a dataset from row blocks (stacked once, in order).

        ``block_rows`` defaults to the first block's row count, which
        round-trips ``BlockedDataset(m, r).iter_blocks()`` exactly.
        """
        stacked = [np.atleast_2d(np.asarray(block)) for block in blocks]
        if not stacked:
            raise DataError("from_blocks needs at least one block")
        if block_rows is None:
            block_rows = max(1, stacked[0].shape[0])
        return cls(np.vstack(stacked), block_rows)
