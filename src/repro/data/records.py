"""Examination-log data model.

The paper's dataset is an *examination log*: "Each record contains at least
a unique patient identifier, and the type and date of every exam." This
module provides that record model plus :class:`ExamLog`, the in-memory
dataset the rest of the library consumes.

An :class:`ExamLog` is deliberately simple — an ordered collection of
:class:`ExamRecord` with the taxonomy describing its examination types —
but it exposes the derived views every downstream component needs:

* patient-level exam-count matrices (input to the VSM builder),
* per-exam frequency tables (input to horizontal partial mining),
* per-patient transactions (input to frequent-itemset mining), and
* patient demographics (ages, used for dataset characterisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.taxonomy import ExamTaxonomy, build_default_taxonomy
from repro.exceptions import DataError, ValidationError


@dataclass(frozen=True, order=True)
class ExamRecord:
    """One row of the examination log.

    Attributes
    ----------
    patient_id:
        Anonymised patient identifier (non-negative integer).
    exam_code:
        Examination-type code (index into the taxonomy).
    day:
        Day offset within the observation window (0-based). The paper's
        dataset spans one year, so offsets run 0..364; the model does not
        enforce the bound so multi-year logs also work.
    """

    patient_id: int
    day: int
    exam_code: int

    def __post_init__(self) -> None:
        if self.patient_id < 0:
            raise ValidationError("patient_id must be non-negative")
        if self.exam_code < 0:
            raise ValidationError("exam_code must be non-negative")
        if self.day < 0:
            raise ValidationError("day must be non-negative")

    def calendar_date(self, origin: date) -> date:
        """Return the absolute date given the observation-window origin."""
        return origin + timedelta(days=self.day)


@dataclass
class PatientInfo:
    """Demographics attached to a patient (only age is used by the paper)."""

    patient_id: int
    age: int
    profile: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 <= self.age <= 130:
            raise ValidationError(f"implausible age: {self.age}")


class ExamLog:
    """An in-memory examination-log dataset.

    Parameters
    ----------
    records:
        The examination events. Order is not significant; the log sorts a
        copy by (patient, day, exam).
    taxonomy:
        The examination-type taxonomy. Every record's ``exam_code`` must be
        a valid code in the taxonomy.
    patients:
        Optional demographics. Patients that appear in ``records`` but not
        here are allowed (their age is simply unknown).
    """

    def __init__(
        self,
        records: Iterable[ExamRecord],
        taxonomy: Optional[ExamTaxonomy] = None,
        patients: Optional[Iterable[PatientInfo]] = None,
    ) -> None:
        self.taxonomy = taxonomy or build_default_taxonomy()
        self.records: List[ExamRecord] = sorted(records)
        n_types = len(self.taxonomy)
        for record in self.records:
            if record.exam_code >= n_types:
                raise DataError(
                    f"record exam_code {record.exam_code} outside taxonomy"
                    f" of size {n_types}"
                )
        self.patients: Dict[int, PatientInfo] = {}
        for info in patients or ():
            if info.patient_id in self.patients:
                raise DataError(f"duplicate patient info: {info.patient_id}")
            self.patients[info.patient_id] = info
        self._patient_ids: Optional[List[int]] = None
        self._exam_frequency: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ExamRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        """Total number of examination events."""
        return len(self.records)

    @property
    def n_exam_types(self) -> int:
        """Number of exam types in the taxonomy (columns of the VSM)."""
        return len(self.taxonomy)

    def patient_ids(self) -> List[int]:
        """Sorted ids of patients appearing in the log."""
        if self._patient_ids is None:
            self._patient_ids = sorted({r.patient_id for r in self.records})
        return self._patient_ids

    @property
    def n_patients(self) -> int:
        """Number of distinct patients with at least one record."""
        return len(self.patient_ids())

    def ages(self) -> List[int]:
        """Known ages of patients appearing in the log."""
        known = []
        for pid in self.patient_ids():
            info = self.patients.get(pid)
            if info is not None:
                known.append(info.age)
        return known

    def exam_frequency(self) -> np.ndarray:
        """Number of records per exam type, shape ``(n_exam_types,)``."""
        if self._exam_frequency is None:
            counts = np.zeros(self.n_exam_types, dtype=np.int64)
            for record in self.records:
                counts[record.exam_code] += 1
            self._exam_frequency = counts
        return self._exam_frequency

    def exam_codes_by_frequency(self) -> List[int]:
        """Exam codes ordered by decreasing record count.

        Ties break on the exam code so the ordering is deterministic. This
        ordering drives the paper's horizontal partial-mining strategy
        ("examination types were chosen in decreasing order of frequency
        within the original raw data").
        """
        frequency = self.exam_frequency()
        order = sorted(
            range(self.n_exam_types), key=lambda code: (-frequency[code], code)
        )
        return order

    def count_matrix(self) -> Tuple[np.ndarray, List[int]]:
        """Return ``(matrix, patient_ids)`` of per-patient exam counts.

        ``matrix[i, j]`` is the number of times patient ``patient_ids[i]``
        underwent exam type ``j`` — the raw Vector Space Model of the paper
        ("a unique vector for each patient, representing his/her
        examination history, i.e. number of times he/she underwent each
        examination").
        """
        ids = self.patient_ids()
        index = {pid: i for i, pid in enumerate(ids)}
        matrix = np.zeros((len(ids), self.n_exam_types), dtype=np.float64)
        for record in self.records:
            matrix[index[record.patient_id], record.exam_code] += 1.0
        return matrix, ids

    def to_rows(self) -> np.ndarray:
        """Dense ``(n_records, 3)`` int64 array of the record triples.

        Columns are ``(patient_id, day, exam_code)`` in the log's sorted
        record order — the same row layout the cache fingerprint hashes.
        This is the transport representation of a log: the array can live
        in a :class:`repro.data.blocks.SharedMatrix` segment and be
        rebuilt in a worker with :meth:`from_rows` without pickling the
        record objects.
        """
        rows = np.empty((len(self.records), 3), dtype=np.int64)
        for i, record in enumerate(self.records):
            rows[i, 0] = record.patient_id
            rows[i, 1] = record.day
            rows[i, 2] = record.exam_code
        return rows

    @classmethod
    def from_rows(
        cls,
        rows: np.ndarray,
        taxonomy: Optional[ExamTaxonomy] = None,
        patients: Optional[Iterable[PatientInfo]] = None,
    ) -> "ExamLog":
        """Rebuild a log from a :meth:`to_rows` array (exact round-trip)."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
        records = [
            ExamRecord(
                patient_id=int(row[0]), day=int(row[1]), exam_code=int(row[2])
            )
            for row in rows
        ]
        return cls(records, taxonomy=taxonomy, patients=patients)

    @classmethod
    def concat(cls, logs: Sequence["ExamLog"]) -> "ExamLog":
        """Merge block logs into one (shared taxonomy, disjoint patients).

        Used to assemble a flat log from the generator's blocked stream
        when memory allows; patients carrying demographics in several
        blocks must not collide.
        """
        if not logs:
            raise DataError("concat needs at least one log")
        records: List[ExamRecord] = []
        patients: List[PatientInfo] = []
        for log in logs:
            records.extend(log.records)
            patients.extend(log.patients.values())
        return cls(records, taxonomy=logs[0].taxonomy, patients=patients)

    def transactions(self, by: str = "patient") -> List[List[str]]:
        """Itemset-mining view of the log.

        Parameters
        ----------
        by:
            ``"patient"`` — one transaction per patient containing the set
            of exam names the patient underwent during the window (the view
            used for co-prescription pattern discovery); or
            ``"visit"`` — one transaction per (patient, day) pair,
            capturing exams prescribed together on the same day.
        """
        if by == "patient":
            groups: Dict[int, set] = {}
            for record in self.records:
                groups.setdefault(record.patient_id, set()).add(
                    record.exam_code
                )
            keys: List = sorted(groups)
        elif by == "visit":
            groups = {}
            for record in self.records:
                groups.setdefault(
                    (record.patient_id, record.day), set()
                ).add(record.exam_code)
            keys = sorted(groups)
        else:
            raise DataError(f"unknown transaction grouping: {by!r}")
        name_of = {e.code: e.name for e in self.taxonomy}
        return [
            sorted(name_of[code] for code in groups[key]) for key in keys
        ]

    # ------------------------------------------------------------------
    # Subsetting (substrate for partial mining)
    # ------------------------------------------------------------------
    def restrict_exams(self, exam_codes: Sequence[int]) -> "ExamLog":
        """Return a new log keeping only records of the given exam types.

        The taxonomy is preserved unchanged (columns keep their codes) so
        VSM matrices built from the restricted log stay comparable; all
        patients are retained even if they lose every record, matching the
        paper's horizontal partial mining which reduces the feature space
        "while retaining the total number of patients".
        """
        keep = set(exam_codes)
        records = [r for r in self.records if r.exam_code in keep]
        return ExamLog(
            records, taxonomy=self.taxonomy, patients=self.patients.values()
        )

    def restrict_patients(self, patient_ids: Sequence[int]) -> "ExamLog":
        """Return a new log keeping only records of the given patients."""
        keep = set(patient_ids)
        records = [r for r in self.records if r.patient_id in keep]
        patients = [
            info for pid, info in self.patients.items() if pid in keep
        ]
        return ExamLog(records, taxonomy=self.taxonomy, patients=patients)

    def time_window(self, first_day: int, last_day: int) -> "ExamLog":
        """Return a new log restricted to days in ``[first_day, last_day]``."""
        if first_day > last_day:
            raise DataError("first_day must not exceed last_day")
        records = [
            r for r in self.records if first_day <= r.day <= last_day
        ]
        return ExamLog(
            records, taxonomy=self.taxonomy, patients=self.patients.values()
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A small dict of headline statistics (paper §IV wording)."""
        ages = self.ages()
        frequency = self.exam_frequency()
        observed_types = int(np.count_nonzero(frequency))
        return {
            "n_patients": self.n_patients,
            "n_records": self.n_records,
            "n_exam_types": self.n_exam_types,
            "n_observed_exam_types": observed_types,
            "age_min": min(ages) if ages else None,
            "age_max": max(ages) if ages else None,
            "days_spanned": (
                max(r.day for r in self.records) + 1 if self.records else 0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExamLog(n_patients={self.n_patients},"
            f" n_records={self.n_records},"
            f" n_exam_types={self.n_exam_types})"
        )
