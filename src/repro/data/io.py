"""Loading and saving examination logs.

Two interchangeable on-disk formats are supported:

* **CSV** — one row per examination event (``patient_id,day,exam_code``)
  plus side-car CSVs for the taxonomy and patient demographics. This is
  the shape hospital extracts usually arrive in.
* **JSON lines** — one self-describing JSON object per record, with a
  header object carrying the taxonomy; convenient for the document store.

Both round-trip exactly: ``load(save(log)) == log`` record for record.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.data.records import ExamLog, ExamRecord, PatientInfo
from repro.data.taxonomy import ExamTaxonomy, ExamType
from repro.exceptions import DataError

PathLike = Union[str, Path]

_RECORD_FIELDS = ("patient_id", "day", "exam_code")


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def save_csv(log: ExamLog, directory: PathLike) -> None:
    """Save a log as ``records.csv`` + ``exam_types.csv`` + ``patients.csv``.

    The directory is created if missing; existing files are overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "records.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_FIELDS)
        for record in log.records:
            writer.writerow([record.patient_id, record.day, record.exam_code])

    with open(directory / "exam_types.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["code", "name", "category", "rank"])
        for exam in log.taxonomy:
            writer.writerow([exam.code, exam.name, exam.category, exam.rank])

    with open(directory / "patients.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["patient_id", "age", "profile"])
        for pid in sorted(log.patients):
            info = log.patients[pid]
            writer.writerow([info.patient_id, info.age, info.profile or ""])


def load_csv(directory: PathLike) -> ExamLog:
    """Load a log saved by :func:`save_csv`."""
    directory = Path(directory)
    records_path = directory / "records.csv"
    if not records_path.exists():
        raise DataError(f"missing records file: {records_path}")

    taxonomy = _load_taxonomy_csv(directory / "exam_types.csv")
    patients = _load_patients_csv(directory / "patients.csv")

    records: List[ExamRecord] = []
    with open(records_path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_RECORD_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise DataError(f"records.csv missing columns: {sorted(missing)}")
        for row in reader:
            records.append(
                ExamRecord(
                    patient_id=int(row["patient_id"]),
                    day=int(row["day"]),
                    exam_code=int(row["exam_code"]),
                )
            )
    return ExamLog(records, taxonomy=taxonomy, patients=patients)


def _load_taxonomy_csv(path: Path) -> Optional[ExamTaxonomy]:
    if not path.exists():
        return None
    exam_types: List[ExamType] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            exam_types.append(
                ExamType(
                    code=int(row["code"]),
                    name=row["name"],
                    category=row["category"],
                    rank=int(row["rank"]),
                )
            )
    exam_types.sort(key=lambda e: e.code)
    return ExamTaxonomy(exam_types=exam_types)


def _load_patients_csv(path: Path) -> List[PatientInfo]:
    if not path.exists():
        return []
    patients: List[PatientInfo] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            patients.append(
                PatientInfo(
                    patient_id=int(row["patient_id"]),
                    age=int(row["age"]),
                    profile=row.get("profile") or None,
                )
            )
    return patients


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def save_jsonl(log: ExamLog, path: PathLike) -> None:
    """Save a log as JSON lines: a header object then one object per row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "kind": "exam_log",
        "taxonomy": [
            {
                "code": e.code,
                "name": e.name,
                "category": e.category,
                "rank": e.rank,
            }
            for e in log.taxonomy
        ],
        "patients": [
            {
                "patient_id": info.patient_id,
                "age": info.age,
                "profile": info.profile,
            }
            for __, info in sorted(log.patients.items())
        ],
    }
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in log.records:
            handle.write(
                json.dumps(
                    {
                        "patient_id": record.patient_id,
                        "day": record.day,
                        "exam_code": record.exam_code,
                    }
                )
                + "\n"
            )


def load_jsonl(path: PathLike) -> ExamLog:
    """Load a log saved by :func:`save_jsonl`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with open(path) as handle:
        header_line = handle.readline()
        if not header_line:
            raise DataError(f"empty log file: {path}")
        header = json.loads(header_line)
        if header.get("kind") != "exam_log":
            raise DataError("not an exam_log JSON-lines file")
        exam_types = [
            ExamType(
                code=entry["code"],
                name=entry["name"],
                category=entry["category"],
                rank=entry["rank"],
            )
            for entry in header["taxonomy"]
        ]
        exam_types.sort(key=lambda e: e.code)
        taxonomy = ExamTaxonomy(exam_types=exam_types)
        patients = [
            PatientInfo(
                patient_id=entry["patient_id"],
                age=entry["age"],
                profile=entry.get("profile"),
            )
            for entry in header.get("patients", [])
        ]
        records = []
        for line in handle:
            if not line.strip():
                continue
            obj = json.loads(line)
            records.append(
                ExamRecord(
                    patient_id=obj["patient_id"],
                    day=obj["day"],
                    exam_code=obj["exam_code"],
                )
            )
    return ExamLog(records, taxonomy=taxonomy, patients=patients)
