"""Query planner for the K-DB document store.

Given a collection and a query document, :func:`plan_query` picks an
access path and returns the candidate documents it admits plus an
EXPLAIN-style :class:`QueryPlan` record:

* ``point`` — an ``_id`` probe, or an equality/``$eq``/``$in``
  predicate served by a hash (or sorted) index on the path,
* ``range`` — a ``$gt/$gte/$lt/$lte`` predicate served by a ``sorted``
  index on the path,
* ``scan`` — everything else: the full collection.

The planner only guarantees a **superset**: every candidate set it
returns contains all matching documents, and the caller always re-runs
the full matcher over the candidates. That contract keeps the index
structures simple (multikey buckets may admit false positives) and
makes planner-vs-scan result identity testable property-by-property.

Candidates are returned in insertion order, so a planned ``find()``
yields documents in exactly the order a full scan would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Range operators a sorted index can serve, with their bound side and
#: inclusivity: name -> (is_lower_bound, inclusive).
_RANGE_OPERATORS: Dict[str, Tuple[bool, bool]] = {
    "$gt": (True, False),
    "$gte": (True, True),
    "$lt": (False, False),
    "$lte": (False, True),
}


@dataclass
class QueryPlan:
    """EXPLAIN-style record of how one query was (or would be) served."""

    collection: str
    kind: str  # "point" | "range" | "scan"
    index: Optional[str] = None
    path: Optional[str] = None
    operators: Tuple[str, ...] = field(default_factory=tuple)
    #: Documents admitted by the access path (before matching).
    examined: int = 0
    #: Documents that matched (filled in by the executor).
    returned: int = 0
    #: Wall-clock seconds for plan + match (filled in by the executor).
    elapsed_s: float = 0.0

    @property
    def indexed(self) -> bool:
        """True when the plan avoided a full collection scan."""
        return self.kind != "scan"

    def to_document(self) -> Dict[str, Any]:
        """A JSON-friendly rendering (for logs, tests and the CLI)."""
        return {
            "collection": self.collection,
            "kind": self.kind,
            "index": self.index,
            "path": self.path,
            "operators": list(self.operators),
            "examined": self.examined,
            "returned": self.returned,
            "elapsed_s": self.elapsed_s,
        }


def _rangeable(operand: Any) -> bool:
    """Operand types a sorted index can bound: non-bool numbers, str."""
    if isinstance(operand, bool):
        return False
    return isinstance(operand, (int, float, str))


def _plain_equality(condition: Any) -> bool:
    """True when the condition is an implicit-equality operand (scalar,
    list, or a dict with no operator keys — whole-document equality)."""
    if isinstance(condition, dict):
        return not any(key.startswith("$") for key in condition)
    return True


def _route_condition(
    index: Any, condition: Any
) -> Optional[Tuple[str, Tuple[str, ...], set]]:
    """Try to serve one field condition from ``index``.

    Returns ``(kind, operators, candidate_ids)`` or None when the index
    cannot serve the condition.
    """
    if _plain_equality(condition):
        return ("point", ("$eq",), index.lookup(condition))
    if "$eq" in condition:
        return ("point", ("$eq",), index.lookup(condition["$eq"]))
    if "$in" in condition and isinstance(condition["$in"], list):
        ids: set = set()
        for wanted in condition["$in"]:
            ids |= index.lookup(wanted)
        return ("point", ("$in",), ids)
    if index.kind != "sorted":
        return None
    lower: Optional[Tuple[Any, bool]] = None
    upper: Optional[Tuple[Any, bool]] = None
    used: List[str] = []
    for operator, (is_lower, inclusive) in _RANGE_OPERATORS.items():
        if operator not in condition:
            continue
        operand = condition[operator]
        if not _rangeable(operand):
            return None
        bound = (operand, inclusive)
        if is_lower:
            # Keep the tighter of multiple lower bounds.
            if lower is None or operand > lower[0]:
                lower = bound
        else:
            if upper is None or operand < upper[0]:
                upper = bound
        used.append(operator)
    if lower is None and upper is None:
        return None
    if (
        lower is not None
        and upper is not None
        and isinstance(lower[0], str) != isinstance(upper[0], str)
    ):
        return None
    return ("range", tuple(used), index.range_ids(lower, upper))


def plan_query(collection: Any, query: Dict[str, Any]) -> Tuple[
    List[Dict[str, Any]], QueryPlan
]:
    """Choose an access path for ``query`` against ``collection``.

    Returns ``(candidate documents, plan)``. Candidates are stored
    references in insertion order; the caller must still apply the
    matcher (the planner guarantees a superset, not an exact set).
    """
    documents = collection._documents
    plan: Optional[QueryPlan] = None
    candidate_ids: Optional[set] = None

    if isinstance(query, dict):
        # _id fast path: a point probe straight into the primary map.
        id_condition = query.get("_id")
        if id_condition is not None:
            probe = None
            if _plain_equality(id_condition):
                probe = id_condition
            elif "$eq" in id_condition:
                probe = id_condition["$eq"]
            if probe is not None and not isinstance(probe, (dict, list)):
                plan = QueryPlan(
                    collection=collection.name,
                    kind="point",
                    index="_id_",
                    path="_id",
                    operators=("$eq",),
                )
                candidate_ids = (
                    {probe} if probe in documents else set()
                )

        if plan is None:
            fallback: Optional[Tuple[QueryPlan, set]] = None
            for path, condition in query.items():
                if path.startswith("$"):
                    continue
                index = collection._index_on(path)
                if index is None:
                    continue
                routed = _route_condition(index, condition)
                if routed is None:
                    continue
                kind, operators, ids = routed
                routed_plan = QueryPlan(
                    collection=collection.name,
                    kind=kind,
                    index=index.name,
                    path=path,
                    operators=operators,
                )
                if kind == "point":
                    # Point probes are the most selective: take the
                    # first one and stop looking.
                    plan, candidate_ids = routed_plan, ids
                    break
                if fallback is None or len(ids) < len(fallback[1]):
                    fallback = (routed_plan, ids)
            if plan is None and fallback is not None:
                plan, candidate_ids = fallback

    if plan is None or candidate_ids is None:
        candidates = list(documents.values())
        plan = QueryPlan(
            collection=collection.name,
            kind="scan",
            examined=len(candidates),
        )
        return candidates, plan

    seq = collection._seq
    ordered_ids = sorted(
        (doc_id for doc_id in candidate_ids if doc_id in documents),
        key=seq.__getitem__,
    )
    candidates = [documents[doc_id] for doc_id in ordered_ids]
    plan.examined = len(candidates)
    return candidates, plan
