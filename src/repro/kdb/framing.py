"""Checksummed v2 record framing for K-DB shard files.

PR 7's shard files were plain JSONL: any line that failed to parse was
silently skipped, which conflates the *expected* failure (a torn final
append from a crash mid-write) with the *alarming* one (corruption in
the middle of a log that silently shortens history). The v2 frame makes
the two distinguishable:

    v2|<seq>|<gen>|<crc32:08x>|<canonical JSON payload>

* ``seq`` — monotonic per framed run (``0`` is the header frame, real
  records count from ``1``), so a missing *whole line* surfaces as a
  sequence gap even though every surviving line checksums clean;
* ``gen`` — the collection's compaction generation, so a stale log
  left behind by a crash mid-compaction is recognisable against its
  already-folded base (log gen < base gen) instead of relying on
  replay idempotence;
* ``crc32`` — over ``"<seq>|<gen>|<payload>"``, so a torn or bit-
  flipped line fails closed.

A *header frame* (sequence 0, payload ``{"_frame": "header"}``) opens
every framed run and carries the generation even for empty files. A
header appearing mid-file starts a new run (sequence expectations
reset) — that is how appends continue a legacy v1 file: v1 lines
replay as plain JSON, then the first append under the new code writes
a header and frames from there. Old stores therefore open unchanged
and upgrade to full v2 framing on their next compaction.

:func:`scan_file` is the one reader. It classifies every physical line
and reports — without deciding policy — the decoded records, the
file's generation, interior corruption, sequence anomalies, and
whether the *final* line is torn (plus the byte offset to truncate it
away). Policy (truncate vs quarantine) lives with the callers:
:mod:`repro.kdb.shards` recovery and :mod:`repro.kdb.fsck`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional

#: Line prefix of a v2 frame.
FRAME_PREFIX = "v2|"

#: Payload of a header frame (sequence 0; opens every framed run).
HEADER_PAYLOAD = {"_frame": "header"}


def _crc(seq: int, gen: int, body: str) -> str:
    value = zlib.crc32(f"{seq}|{gen}|{body}".encode("utf-8"))
    return f"{value & 0xFFFFFFFF:08x}"


def frame_line(payload: Any, seq: int, gen: int) -> str:
    """One framed record line (no trailing newline)."""
    body = json.dumps(payload, sort_keys=True)
    return f"v2|{seq}|{gen}|{_crc(seq, gen, body)}|{body}"


def header_line(gen: int) -> str:
    """The header frame opening a framed run of generation ``gen``."""
    return frame_line(HEADER_PAYLOAD, 0, gen)


@dataclass
class DecodedLine:
    """One physical line, classified."""

    kind: str  #: ``"frame"``, ``"header"``, ``"v1"`` or ``"corrupt"``
    payload: Any = None
    seq: Optional[int] = None
    gen: Optional[int] = None
    reason: str = ""


def decode_line(line: str) -> DecodedLine:
    """Classify one physical line (without its newline)."""
    if line.startswith(FRAME_PREFIX):
        parts = line.split("|", 4)
        if len(parts) != 5:
            return DecodedLine("corrupt", reason="truncated frame")
        _, seq_text, gen_text, crc_text, body = parts
        try:
            seq = int(seq_text)
            gen = int(gen_text)
        except ValueError:
            return DecodedLine(
                "corrupt", reason="non-integer frame fields"
            )
        if _crc(seq, gen, body) != crc_text:
            return DecodedLine(
                "corrupt", seq=seq, gen=gen, reason="checksum mismatch"
            )
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            # The checksum passed but the body does not parse: only
            # possible if the frame was *written* around a bad body.
            return DecodedLine(
                "corrupt", seq=seq, gen=gen,
                reason=f"unparseable body ({exc.msg})",
            )
        if (
            isinstance(payload, dict)
            and payload.get("_frame") == "header"
        ):
            return DecodedLine("header", payload, seq, gen)
        return DecodedLine("frame", payload, seq, gen)
    try:
        return DecodedLine("v1", json.loads(line))
    except json.JSONDecodeError as exc:
        return DecodedLine("corrupt", reason=f"not JSON ({exc.msg})")


@dataclass
class CorruptLine:
    """One interior line that failed to decode (quarantine candidate)."""

    lineno: int
    raw: str
    reason: str


@dataclass
class ScannedFile:
    """Everything :func:`scan_file` learned about one shard file."""

    path: Path
    #: Decoded record payloads, in file order (headers excluded).
    records: List[Any] = field(default_factory=list)
    #: Generation of the last framed run (None for pure-v1 files).
    gen: Optional[int] = None
    #: Count of valid v2 record frames / legacy v1 lines.
    frames: int = 0
    v1_lines: int = 0
    #: The final line failed to decode (expected crash signature).
    torn_tail: bool = False
    torn_raw: str = ""
    #: Byte offset where the torn final line starts (truncate target).
    keep_bytes: int = 0
    #: Undecodable lines *before* the final one (never expected).
    corrupt: List[CorruptLine] = field(default_factory=list)
    #: Sequence discontinuities and mid-run generation switches.
    anomalies: List[str] = field(default_factory=list)

    @property
    def next_seq(self) -> Optional[int]:
        """Sequence the next append should use (None: no framed run)."""
        return self._next_seq

    _next_seq: Optional[int] = None


def scan_file(path: Path) -> Optional[ScannedFile]:
    """Scan one shard file; ``None`` if it does not exist."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    scan = ScannedFile(path=path)
    offset = 0
    expected: Optional[int] = None
    # Pending corrupt line: only promoted to `corrupt` once a later
    # line proves it is not the torn tail.
    pending: Optional[CorruptLine] = None
    pending_start = 0
    for lineno, line_bytes in enumerate(raw.splitlines(True), start=1):
        start = offset
        offset += len(line_bytes)
        text = line_bytes.decode("utf-8", errors="replace")
        stripped = text.rstrip("\r\n")
        if not stripped.strip():
            continue
        decoded = decode_line(stripped)
        if decoded.kind == "corrupt":
            if pending is not None:
                scan.corrupt.append(pending)
            pending = CorruptLine(lineno, stripped, decoded.reason)
            pending_start = start
            continue
        if pending is not None:
            scan.corrupt.append(pending)
            pending = None
        if decoded.kind == "header":
            if scan.gen is not None and decoded.gen != scan.gen:
                scan.anomalies.append(
                    f"line {lineno}: generation switched"
                    f" {scan.gen} -> {decoded.gen} mid-file"
                )
            scan.gen = decoded.gen
            expected = 1
        elif decoded.kind == "frame":
            scan.frames += 1
            if scan.gen is None:
                scan.gen = decoded.gen
            elif decoded.gen != scan.gen:
                scan.anomalies.append(
                    f"line {lineno}: frame generation {decoded.gen}"
                    f" != file generation {scan.gen}"
                )
            if expected is not None and decoded.seq != expected:
                scan.anomalies.append(
                    f"line {lineno}: sequence jumped to"
                    f" {decoded.seq}, expected {expected}"
                )
            expected = (decoded.seq or 0) + 1
            scan.records.append(decoded.payload)
        else:  # v1
            scan.v1_lines += 1
            scan.records.append(decoded.payload)
        scan.keep_bytes = offset
    if pending is not None:
        scan.torn_tail = True
        scan.torn_raw = pending.raw
        scan.keep_bytes = pending_start
    else:
        scan.keep_bytes = offset
    scan._next_seq = expected
    return scan
