"""Pluggable storage I/O for the K-DB persistence stack.

Every byte the persistence layer puts on disk — shard bases, append
logs, manifests, lockfiles, quarantine sidecars — goes through a
*storage* object implementing the small protocol below, so chaos tests
can interpose a deterministic fault model between the store and the
filesystem. Two implementations ship:

* :class:`LocalStorage` — the real filesystem, using the same
  tmp-file + ``fsync`` + ``os.replace`` discipline the flat store has
  used since PR 5; and
* :class:`FaultyStorage` — a seeded wrapper that counts *write events*
  (appends, atomic writes, syncs, removals, truncations, exclusive
  creates) and can inject, at any chosen event: a torn write (the
  payload truncated at a seeded byte offset), ``ENOSPC``, or a hard
  crash point (:class:`SimulatedCrash`) after which the storage is
  dead — the moral equivalent of SIGKILL mid-write. With
  ``lose_unsynced=True`` a crash additionally rolls every append file
  back to its last *fsynced* length, modelling a kernel that never
  wrote the page cache out.

adalint rule ADA023 enforces the funnel: no raw ``open(..., "w")`` /
``os.replace`` / ``Path.write_text`` in :mod:`repro.kdb` outside this
module, so a fault schedule provably covers every persistence-path
write.
"""

from __future__ import annotations

import errno
import os
import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]


class SimulatedCrash(BaseException):
    """Raised by :class:`FaultyStorage` at its scheduled crash point.

    Deliberately a ``BaseException``: a crash models the process dying
    mid-write, so no library ``except Exception`` handler may absorb it
    and keep writing — exactly as nothing survives a SIGKILL.
    """


def atomic_write(path: Path, content: str) -> None:
    """Write ``content`` to ``path`` via a temp file and ``os.replace``.

    The canonical crash-safe whole-file write (PR 5): readers observe
    either the previous complete file or the new complete file, never a
    truncated hybrid.
    """
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "w") as handle:
        handle.write(content)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


class AppendHandle:
    """An open append cursor over one file.

    ``write_line`` appends one newline-terminated record and flushes
    (the record reaches the kernel); :meth:`sync` makes everything
    written so far durable with ``fsync``.
    """

    def __init__(self, path: Path, handle) -> None:
        self.path = path
        self._handle = handle

    def write_line(self, text: str) -> None:
        self._handle.write(text + "\n")
        self._handle.flush()

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self, sync: bool = False) -> None:
        if self._handle is None:
            return
        if sync:
            self.sync()
        self._handle.close()
        self._handle = None


class LocalStorage:
    """The real filesystem (default storage for every store)."""

    name = "local"

    def open_append(self, path: PathLike) -> AppendHandle:
        """Open ``path`` for appending records."""
        path = Path(path)
        return AppendHandle(path, open(path, "a"))

    def atomic_write(self, path: PathLike, content: str) -> None:
        """Crash-safe whole-file write (tmp + fsync + replace)."""
        atomic_write(Path(path), content)

    def create_exclusive(self, path: PathLike, content: str) -> None:
        """Create ``path`` with ``content``; raises ``FileExistsError``
        if it already exists (``O_CREAT | O_EXCL`` — the lockfile
        primitive)."""
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        with os.fdopen(fd, "w") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())

    def remove(self, path: PathLike) -> None:
        """Delete ``path``; missing files are a no-op."""
        try:
            os.unlink(str(path))
        except FileNotFoundError:
            pass

    def truncate(self, path: PathLike, size: int) -> None:
        """Cut ``path`` to ``size`` bytes (torn-tail recovery)."""
        os.truncate(str(path), size)


class _FaultyAppendHandle(AppendHandle):
    """Append handle whose writes report to the owning fault model."""

    def __init__(
        self, storage: "FaultyStorage", path: Path, handle
    ) -> None:
        super().__init__(path, handle)
        self._storage = storage

    def write_line(self, text: str) -> None:
        self._storage._before_append(self, text + "\n")
        super().write_line(text)

    def sync(self) -> None:
        self._storage._before_sync(self)
        super().sync()
        self._storage._mark_durable(self.path)

    def close(self, sync: bool = False) -> None:
        # Closing is not a counted event: a dead storage's handles may
        # still be released by test teardown without "writing".
        if self._handle is None:
            return
        if sync and not self._storage.crashed:
            self.sync()
            super().close(sync=False)
        else:
            super().close(sync=False)


class FaultyStorage(LocalStorage):
    """A seeded, deterministic fault model over :class:`LocalStorage`.

    Parameters
    ----------
    seed:
        Seeds the tear offsets and apply/skip coin flips; the same
        ``(seed, crash_at)`` pair always produces the same post-crash
        bytes on disk.
    crash_at:
        1-based write-event index at which :class:`SimulatedCrash`
        raises. The in-flight write is *torn*: a seeded prefix of its
        payload reaches the file (appends and exclusive creates), the
        temp file of an atomic write is left partial with the target
        untouched, and a removal/truncation/sync lands or not on a
        coin flip. After the crash the storage is dead — every further
        operation raises :class:`SimulatedCrash` immediately.
    enospc_at:
        1-based write-event index at which the write fails with
        ``OSError(ENOSPC)`` *without* crashing (the disk filled up);
        subsequent writes succeed, modelling space being freed.
    lose_unsynced:
        On crash, roll every append file back to its last
        :meth:`AppendHandle.sync`'d length before tearing the in-flight
        write — flushed-but-unsynced records do not survive. Off by
        default (the kernel usually writes the cache out).

    A clean pass (``crash_at=None``) simply counts: run the workload
    once, read :attr:`events`, then sweep ``crash_at`` over
    ``1..events`` to kill the store at every write boundary.
    """

    name = "faulty"

    def __init__(
        self,
        seed: int = 0,
        crash_at: Optional[int] = None,
        enospc_at: Optional[int] = None,
        lose_unsynced: bool = False,
    ) -> None:
        self.seed = seed
        self.crash_at = crash_at
        self.enospc_at = enospc_at
        self.lose_unsynced = lose_unsynced
        self.events = 0
        self.crashed = False
        #: (event index, operation, file name) per counted event.
        self.log: List[Tuple[int, str, str]] = []
        self._rng = random.Random(seed)
        #: Last known durable size per append path (lose_unsynced).
        self._durable: Dict[str, int] = {}
        self._open_paths: List[Path] = []

    # -- event accounting ----------------------------------------------
    def _event(self, op: str, path: Path) -> bool:
        """Count one write event; returns True at the crash point."""
        if self.crashed:
            raise SimulatedCrash(f"storage died before {op}")
        self.events += 1
        self.log.append((self.events, op, path.name))
        if self.enospc_at is not None and self.events == self.enospc_at:
            raise OSError(errno.ENOSPC, "injected: no space left", str(path))
        return self.crash_at is not None and self.events == self.crash_at

    def _die(self, message: str) -> None:
        self.crashed = True
        if self.lose_unsynced:
            self._roll_back_unsynced()
        raise SimulatedCrash(message)

    def _roll_back_unsynced(self) -> None:
        for key, size in self._durable.items():
            try:
                if os.path.getsize(key) > size:
                    os.truncate(key, size)
            except OSError:  # file vanished: nothing left to roll back
                continue

    def _mark_durable(self, path: Path) -> None:
        try:
            self._durable[str(path)] = os.path.getsize(str(path))
        except OSError:
            self._durable[str(path)] = 0

    def _tear_bytes(self, payload: bytes) -> bytes:
        """A seeded strict prefix of ``payload`` (may be empty)."""
        if not payload:
            return payload
        return payload[: self._rng.randrange(0, len(payload))]

    # -- append path ----------------------------------------------------
    def open_append(self, path: PathLike) -> AppendHandle:
        if self.crashed:
            raise SimulatedCrash("storage died before open_append")
        path = Path(path)
        if str(path) not in self._durable:
            if path.exists():
                self._mark_durable(path)
            else:
                self._durable[str(path)] = 0
        self._open_paths.append(path)
        return _FaultyAppendHandle(self, path, open(path, "a"))

    def _before_append(
        self, handle: _FaultyAppendHandle, line: str
    ) -> None:
        if self._event("append", handle.path):
            handle._handle.flush()
            torn = self._tear_bytes(line.encode("utf-8"))
            with open(handle.path, "ab") as raw:
                raw.write(torn)
                raw.flush()
            self._die(
                f"crash at event {self.events}: append to"
                f" {handle.path.name} torn at byte {len(torn)}"
            )

    def _before_sync(self, handle: _FaultyAppendHandle) -> None:
        if self._event("sync", handle.path):
            if self._rng.random() < 0.5:  # the sync itself landed
                handle._handle.flush()
                os.fsync(handle._handle.fileno())
                self._mark_durable(handle.path)
            self._die(
                f"crash at event {self.events}: sync of"
                f" {handle.path.name}"
            )

    # -- whole-file path ------------------------------------------------
    def atomic_write(self, path: PathLike, content: str) -> None:
        path = Path(path)
        if self._event("atomic_write", path):
            temporary = path.with_name(path.name + ".tmp")
            with open(temporary, "wb") as raw:
                raw.write(self._tear_bytes(content.encode("utf-8")))
            self._die(
                f"crash at event {self.events}: atomic write of"
                f" {path.name} left a partial temp file"
            )
        super().atomic_write(path, content)
        self._mark_durable(path)

    def create_exclusive(self, path: PathLike, content: str) -> None:
        path = Path(path)
        if self._event("create_exclusive", path):
            fd = os.open(
                str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
            with os.fdopen(fd, "wb") as raw:
                raw.write(self._tear_bytes(content.encode("utf-8")))
            self._die(
                f"crash at event {self.events}: exclusive create of"
                f" {path.name} torn"
            )
        super().create_exclusive(path, content)
        self._mark_durable(path)

    def remove(self, path: PathLike) -> None:
        path = Path(path)
        if self._event("remove", path):
            if self._rng.random() < 0.5:  # the unlink landed
                super().remove(path)
                self._durable.pop(str(path), None)
            self._die(
                f"crash at event {self.events}: removal of {path.name}"
            )
        super().remove(path)
        self._durable.pop(str(path), None)

    def truncate(self, path: PathLike, size: int) -> None:
        path = Path(path)
        if self._event("truncate", path):
            if self._rng.random() < 0.5:  # the truncation landed
                super().truncate(path, size)
                self._mark_durable(path)
            self._die(
                f"crash at event {self.events}: truncation of"
                f" {path.name}"
            )
        super().truncate(path, size)
        self._mark_durable(path)
