"""The K-DB: ADA-HEALTH's Knowledge Base.

Reproduces the paper's data model exactly:

    "The complete data model consists of six collections, which store
    (1) the original dataset, (2) the transformed dataset after
    preprocessing and data transformation, (3) statistical descriptors
    to model the data distribution, (4-5) interesting and selected
    knowledge items discovered through different data mining algorithms,
    and (6) user interaction feedbacks."

The backing store is :class:`repro.kdb.documentstore.DocumentStore` (the
MongoDB substitute). On top of the six collections the K-DB offers the
self-learning services the paper describes: recording expert feedback
and predicting the interestingness degree of new knowledge items from
past feedback with a classification model (a decision tree, as in the
paper's preliminary implementation).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.knowledge import DEGREES, KnowledgeItem
from repro.data.records import ExamLog
from repro.exceptions import EngineError, StoreError
from repro.kdb.documentstore import DocumentStore
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.obs.manifest import RUNS_COLLECTION, validate_manifest

#: The six collections of the paper's data model.
RAW_DATASETS = "raw_datasets"
TRANSFORMED_DATASETS = "transformed_datasets"
DESCRIPTORS = "descriptors"
DISCOVERED_KNOWLEDGE = "discovered_knowledge"
SELECTED_KNOWLEDGE = "selected_knowledge"
FEEDBACK = "feedback"

COLLECTIONS = (
    RAW_DATASETS,
    TRANSFORMED_DATASETS,
    DESCRIPTORS,
    DISCOVERED_KNOWLEDGE,
    SELECTED_KNOWLEDGE,
    FEEDBACK,
)

#: Telemetry collection (run manifests) next to the paper's six.
RUNS = RUNS_COLLECTION


class KnowledgeBase:
    """Facade over the six-collection knowledge store.

    A seventh ``runs`` collection (not part of the paper's data model,
    hence outside :data:`COLLECTIONS`) stores one execution manifest
    per analysis, so algorithm and parameter choices can be replayed as
    past experience.
    """

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        metrics: Any = None,
    ) -> None:
        self.store = store or DocumentStore()
        if metrics is not None:
            self.store.bind_metrics(metrics)
        for name in COLLECTIONS:
            self.store.collection(name)
        self.store.collection(RUNS)
        self.store[DISCOVERED_KNOWLEDGE].create_index("end_goal")
        # Sorted: score range filters and run_history's started_at sort
        # ride the index instead of scanning.
        self.store[DISCOVERED_KNOWLEDGE].create_index("score", kind="sorted")
        self.store[FEEDBACK].create_index("item_id")
        self.store[RUNS].create_index("started_at", kind="sorted")

    # ------------------------------------------------------------------
    # (1) raw datasets
    # ------------------------------------------------------------------
    def register_dataset(
        self, log: ExamLog, name: str, store_records: bool = False
    ) -> Any:
        """Register a dataset; returns its id.

        Stores the headline summary always; the raw records only when
        ``store_records`` (they can be large).
        """
        document: Dict[str, Any] = {"name": name, "summary": log.summary()}
        if store_records:
            document["records"] = [
                {
                    "patient_id": record.patient_id,
                    "day": record.day,
                    "exam_code": record.exam_code,
                }
                for record in log.records
            ]
        return self.store[RAW_DATASETS].insert_one(document)

    def dataset_summary(self, dataset_id: Any) -> Optional[Dict]:
        """Summary of a registered dataset, or None."""
        return self.store[RAW_DATASETS].find_one({"_id": dataset_id})

    # ------------------------------------------------------------------
    # (2) transformed datasets
    # ------------------------------------------------------------------
    def store_transformation(
        self,
        dataset_id: Any,
        description: Dict[str, Any],
    ) -> Any:
        """Record how a dataset was transformed (weighting, scaling,
        retained features)."""
        document = dict(description)
        document["dataset_id"] = dataset_id
        return self.store[TRANSFORMED_DATASETS].insert_one(document)

    # ------------------------------------------------------------------
    # (3) descriptors
    # ------------------------------------------------------------------
    def store_profile(self, dataset_id: Any, profile_document: Dict) -> Any:
        """Store a :class:`DatasetProfile` document for a dataset."""
        document = dict(profile_document)
        document["dataset_id"] = dataset_id
        return self.store[DESCRIPTORS].insert_one(document)

    def profile_for(self, dataset_id: Any) -> Optional[Dict]:
        """Latest stored profile document for a dataset."""
        cursor = (
            self.store[DESCRIPTORS]
            .find({"dataset_id": dataset_id})
            .sort("_id", -1)
            .limit(1)
        )
        for document in cursor:
            return document
        return None

    # ------------------------------------------------------------------
    # (4) discovered and (5) selected knowledge
    # ------------------------------------------------------------------
    def store_item(
        self, item: KnowledgeItem, dataset_id: Any = None
    ) -> KnowledgeItem:
        """Persist a knowledge item; assigns ``item.item_id``."""
        document = item.to_document()
        if dataset_id is not None:
            document["dataset_id"] = dataset_id
        item.item_id = self.store[DISCOVERED_KNOWLEDGE].insert_one(document)
        return item

    def store_items(
        self, items: Iterable[KnowledgeItem], dataset_id: Any = None
    ) -> List[KnowledgeItem]:
        """Persist many items."""
        return [self.store_item(item, dataset_id) for item in items]

    def select_item(self, item: KnowledgeItem, rank: int) -> Any:
        """Mark an item as *selected* (presented to the user)."""
        if item.item_id is None:
            raise EngineError("store the item before selecting it")
        return self.store[SELECTED_KNOWLEDGE].insert_one(
            {"item_id": item.item_id, "rank": rank}
        )

    def items(
        self, query: Optional[Dict] = None
    ) -> List[KnowledgeItem]:
        """Load knowledge items matching a store query."""
        return [
            KnowledgeItem.from_document(document)
            for document in self.store[DISCOVERED_KNOWLEDGE].find(query)
        ]

    # ------------------------------------------------------------------
    # (6) feedback + degree prediction
    # ------------------------------------------------------------------
    def record_feedback(
        self, item: KnowledgeItem, user: str, degree: str
    ) -> Any:
        """Record an expert's degree label for a stored item."""
        if degree not in DEGREES:
            raise EngineError(f"unknown degree {degree!r}")
        if item.item_id is None:
            raise EngineError("store the item before recording feedback")
        feedback_id = self.store[FEEDBACK].insert_one(
            {
                "item_id": item.item_id,
                "user": user,
                "degree": degree,
                "features": item.feature_vector_fields(),
            }
        )
        self.store[DISCOVERED_KNOWLEDGE].update_one(
            {"_id": item.item_id}, {"$set": {"degree": degree}}
        )
        return feedback_id

    def feedback_count(self, user: Optional[str] = None) -> int:
        """Number of recorded feedback entries (optionally per user)."""
        query = {} if user is None else {"user": user}
        return self.store[FEEDBACK].count_documents(query)

    def training_data(
        self, user: Optional[str] = None
    ) -> "tuple[np.ndarray, np.ndarray, List[str]]":
        """Feedback as ``(X, y, feature_names)`` for degree prediction."""
        query = {} if user is None else {"user": user}
        entries = self.store[FEEDBACK].find(query).to_list()
        if not entries:
            raise EngineError("no feedback recorded yet")
        feature_names = sorted(entries[0]["features"])
        rows = np.array(
            [
                [entry["features"].get(name, 0.0) for name in feature_names]
                for entry in entries
            ]
        )
        labels = np.array([entry["degree"] for entry in entries])
        return rows, labels, feature_names

    def train_degree_predictor(
        self, user: Optional[str] = None, seed: int = 0
    ) -> "DegreePredictor":
        """Fit a decision tree on past feedback; returns the predictor."""
        rows, labels, feature_names = self.training_data(user)
        tree = DecisionTreeClassifier(
            max_depth=6, min_samples_leaf=2, seed=seed
        )
        tree.fit(rows, labels)
        return DegreePredictor(tree=tree, feature_names=feature_names)

    # ------------------------------------------------------------------
    # run manifests (execution history)
    # ------------------------------------------------------------------
    def record_run(self, manifest: Dict[str, Any]) -> Any:
        """Persist one analysis run manifest; returns its id.

        The document is validated against the manifest schema first, so
        the ``runs`` collection only ever holds well-formed history.
        """
        document = validate_manifest(dict(manifest))
        return self.store[RUNS].insert_one(document)

    def run_history(
        self,
        dataset_fingerprint: Optional[str] = None,
        goal: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict]:
        """Past run manifests, most recent first.

        Optionally filtered to one dataset fingerprint and/or to runs
        that executed a given end-goal.
        """
        query: Dict[str, Any] = {}
        if dataset_fingerprint is not None:
            query["dataset.fingerprint"] = dataset_fingerprint
        if goal is not None:
            query["goals.name"] = goal
        cursor = self.store[RUNS].find(query).sort("started_at", -1)
        if limit is not None:
            cursor = cursor.limit(limit)
        return cursor.to_list()

    def run_count(self) -> int:
        """Number of recorded run manifests."""
        return len(self.store[RUNS])

    # ------------------------------------------------------------------
    # analysis cache
    # ------------------------------------------------------------------
    def analysis_cache(self) -> "AnalysisCache":
        """An analysis cache living inside this knowledge base's store.

        Entries land in the ``analysis_cache`` collection next to the
        six paper collections, so :meth:`save` / :meth:`load` persist
        memoised sweep results along with the knowledge they produced.
        """
        from repro.core.cache import CACHE_COLLECTION, AnalysisCache

        return AnalysisCache(self.store.collection(CACHE_COLLECTION))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist the whole knowledge base to a directory."""
        self.store.save(directory)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "KnowledgeBase":
        """Load a knowledge base saved with :meth:`save`."""
        return cls(store=DocumentStore.load(directory))

    @classmethod
    def open_sharded(
        cls,
        directory: Union[str, Path],
        n_shards: int = 8,
        auto_compact_ops: Optional[int] = None,
        metrics: Any = None,
        storage: Any = None,
    ) -> "KnowledgeBase":
        """Open (or create) a knowledge base on sharded storage.

        Mutations append to per-shard logs as they happen — no explicit
        :meth:`save` step; call :meth:`compact` (or rely on
        ``auto_compact_ops``) to fold logs into base partitions.
        ``metrics`` is handed to the store *before* replay, so the
        ``kdb.recovery.*`` counters see what opening had to repair;
        ``storage`` swaps the I/O layer (fault injection in tests).
        """
        from repro.kdb.shards import ShardedDocumentStore

        store = ShardedDocumentStore(
            directory,
            n_shards=n_shards,
            auto_compact_ops=auto_compact_ops,
            storage=storage,
            metrics=metrics,
        )
        return cls(store=store, metrics=metrics)

    def compact(self) -> None:
        """Compact sharded storage (no-op for in-memory stores)."""
        compact = getattr(self.store, "compact", None)
        if compact is not None:
            compact()

    def storage_stats(self) -> Dict[str, Any]:
        """Backing-store statistics (sharded stores report disk usage)."""
        stats = getattr(self.store, "stats", None)
        if stats is not None:
            return stats()
        return {
            name: {"documents": len(self.store[name])}
            for name in self.store.collection_names()
        }

    def counts(self) -> Dict[str, int]:
        """Document count per collection (diagnostics)."""
        return {
            name: len(self.store[name]) for name in COLLECTIONS
        }

    def statistics(self) -> Dict[str, Any]:
        """Aggregate K-DB statistics (per-kind scores, feedback mix).

        Built on the store's aggregation pipeline: knowledge items
        grouped by kind with count and mean score, and the feedback
        degree distribution.
        """
        by_kind = self.store[DISCOVERED_KNOWLEDGE].aggregate(
            [
                {
                    "$group": {
                        "_id": "$kind",
                        "count": {"$count": True},
                        "mean_score": {"$avg": "$score"},
                        "max_score": {"$max": "$score"},
                    }
                },
                {"$sort": {"count": -1}},
            ]
        )
        feedback_mix = self.store[FEEDBACK].aggregate(
            [
                {
                    "$group": {
                        "_id": "$degree",
                        "count": {"$count": True},
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        return {
            "items_by_kind": by_kind,
            "feedback_by_degree": feedback_mix,
        }


class DegreePredictor:
    """Predicts {high, medium, low} for new items from past feedback."""

    def __init__(
        self, tree: DecisionTreeClassifier, feature_names: List[str]
    ) -> None:
        self.tree = tree
        self.feature_names = feature_names

    def predict(self, item: KnowledgeItem) -> str:
        """Predicted degree for one item."""
        features = item.feature_vector_fields()
        row = np.array(
            [[features.get(name, 0.0) for name in self.feature_names]]
        )
        return str(self.tree.predict(row)[0])

    def predict_many(
        self, items: Sequence[KnowledgeItem], attach: bool = False
    ) -> List[str]:
        """Predicted degrees for many items."""
        degrees = [self.predict(item) for item in items]
        if attach:
            for item, degree in zip(items, degrees):
                item.degree = degree
        return degrees
