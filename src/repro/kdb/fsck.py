"""Offline invariant checker and repair for sharded store directories.

:func:`fsck` inspects a :class:`~repro.kdb.shards.ShardedDocumentStore`
directory *without* opening the store (no lockfile taken, nothing
replayed into memory) and reports every violated durability invariant:

* manifest present, parseable, and of a supported version;
* no pid lockfile left by a dead process, no orphaned ``.tmp`` files
  from interrupted atomic writes;
* every shard file checksums clean (v2 frames), with a torn *final*
  log line classified as the expected crash signature and anything
  else — interior corruption, sequence gaps, mid-file generation
  switches, torn *base* lines — as damage;
* log and base generations agree per shard (a log older than its base
  is a crashed compaction's leftover; a log *newer* than its base
  means the base is missing or rolled back);
* no shard files for collections the manifest does not know.

With ``repair=True`` the mechanical repairs run first — delete the
stale lockfile and ``.tmp`` leftovers, truncate torn log tails, remove
stale logs — and then, if any damage remains (quarantine-level
corruption, sequence gaps, generation disagreements), the store is
opened once and compacted: replay quarantines the damaged lines into
sidecars, and compaction rewrites every shard in clean v2 framing and
rebuilds the manifest, which also upgrades pre-checksum v1 files. The
``repro kdb fsck [--repair]`` CLI wraps this function.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import StoreError
from repro.kdb.framing import scan_file
from repro.kdb.shards import (
    _LOCKFILE_NAME,
    _MANIFEST_NAME,
    _MANIFEST_VERSION,
    _pid_alive,
    _read_lock_pid,
)
from repro.kdb.storage import LocalStorage


@dataclass
class FsckIssue:
    """One violated invariant (or one applied repair)."""

    #: Machine-readable kind, e.g. ``"torn_tail"``, ``"corrupt_line"``.
    kind: str
    #: File the issue was found in (relative to the store directory).
    path: str
    detail: str
    #: ``"expected"`` (crash signature, auto-repairable), ``"damage"``
    #: (needs quarantine + compaction), ``"warning"`` (surfaced but
    #: never auto-repaired, e.g. orphan files) or ``"fatal"``.
    severity: str = "damage"
    repaired: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "severity": self.severity,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Everything one :func:`fsck` pass found (and possibly fixed)."""

    directory: Path
    issues: List[FsckIssue] = field(default_factory=list)
    #: Shard files examined (bases + logs).
    files_checked: int = 0
    #: Valid records seen across all shard files.
    records: int = 0
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def ok(self) -> bool:
        """Clean, or everything found was repaired (warnings aside)."""
        for issue in self.issues:
            if issue.severity == "fatal":
                return False
            if (
                issue.severity in ("expected", "damage")
                and not issue.repaired
            ):
                return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "clean": self.clean,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "records": self.records,
            "repaired": self.repaired,
            "issues": [issue.as_dict() for issue in self.issues],
        }


def _check_manifest(
    directory: Path, report: FsckReport
) -> Optional[Dict[str, Any]]:
    path = directory / _MANIFEST_NAME
    if not path.exists():
        report.issues.append(
            FsckIssue(
                "missing_manifest",
                _MANIFEST_NAME,
                "no shard manifest; not a sharded store directory",
                severity="fatal",
            )
        )
        return None
    try:
        layout = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report.issues.append(
            FsckIssue(
                "corrupt_manifest",
                _MANIFEST_NAME,
                f"manifest unreadable: {exc}",
                severity="fatal",
            )
        )
        return None
    if layout.get("version") not in (1, _MANIFEST_VERSION):
        report.issues.append(
            FsckIssue(
                "manifest_version",
                _MANIFEST_NAME,
                f"unsupported manifest version"
                f" {layout.get('version')!r}",
                severity="fatal",
            )
        )
        return None
    return layout


def _check_lockfile(
    directory: Path, report: FsckReport, repair: bool, storage
) -> None:
    path = directory / _LOCKFILE_NAME
    if not path.exists():
        return
    holder = _read_lock_pid(path)
    if holder is not None and holder != os.getpid() and _pid_alive(holder):
        report.issues.append(
            FsckIssue(
                "live_lockfile",
                _LOCKFILE_NAME,
                f"store is open by live pid {holder}; run fsck after"
                " it closes",
                severity="fatal",
            )
        )
        return
    issue = FsckIssue(
        "stale_lockfile",
        _LOCKFILE_NAME,
        "lockfile left by a dead process"
        if holder is not None
        else "lockfile with no readable pid (torn create?)",
        severity="expected",
    )
    if repair:
        storage.remove(path)
        issue.repaired = True
    report.issues.append(issue)


def _check_tmp_files(
    directory: Path, report: FsckReport, repair: bool, storage
) -> None:
    for path in sorted(directory.glob("*.tmp")):
        issue = FsckIssue(
            "tmp_leftover",
            path.name,
            "partial temp file from an interrupted atomic write",
            severity="expected",
        )
        if repair:
            storage.remove(path)
            issue.repaired = True
        report.issues.append(issue)


def _check_collection(
    directory: Path,
    name: str,
    n_shards: int,
    manifest_gen: int,
    report: FsckReport,
    repair: bool,
    storage,
) -> None:
    for shard in range(n_shards):
        base_path = directory / f"{name}.shard-{shard:04d}.jsonl"
        log_path = directory / f"{name}.shard-{shard:04d}.log.jsonl"
        base = scan_file(base_path)
        log = scan_file(log_path)
        base_gen = manifest_gen
        if base is not None:
            report.files_checked += 1
            report.records += len(base.records)
            if base.gen is not None:
                base_gen = max(base_gen, base.gen)
            for line in base.corrupt:
                report.issues.append(
                    FsckIssue(
                        "corrupt_line",
                        base_path.name,
                        f"line {line.lineno}: {line.reason}",
                    )
                )
            if base.torn_tail:
                # bases are atomic: a torn tail here is damage
                report.issues.append(
                    FsckIssue(
                        "corrupt_line",
                        base_path.name,
                        "torn final line in an atomically-written"
                        " base",
                    )
                )
            for anomaly in base.anomalies:
                report.issues.append(
                    FsckIssue("sequence", base_path.name, anomaly)
                )
        if log is None:
            continue
        report.files_checked += 1
        report.records += len(log.records)
        log_gen = log.gen if log.gen is not None else base_gen
        if log_gen < base_gen:
            issue = FsckIssue(
                "stale_log",
                log_path.name,
                f"log generation {log_gen} already folded into"
                f" generation-{base_gen} base (crashed compaction)",
                severity="expected",
            )
            if repair:
                storage.remove(log_path)
                issue.repaired = True
            report.issues.append(issue)
            continue
        if log_gen > base_gen:
            report.issues.append(
                FsckIssue(
                    "generation",
                    log_path.name,
                    f"log generation {log_gen} ahead of base"
                    f" generation {base_gen}",
                )
            )
        for line in log.corrupt:
            report.issues.append(
                FsckIssue(
                    "corrupt_line",
                    log_path.name,
                    f"line {line.lineno}: {line.reason}",
                )
            )
        for anomaly in log.anomalies:
            report.issues.append(
                FsckIssue("sequence", log_path.name, anomaly)
            )
        if log.torn_tail:
            issue = FsckIssue(
                "torn_tail",
                log_path.name,
                "final log line torn mid-append (expected crash"
                " signature)",
                severity="expected",
            )
            if repair:
                storage.truncate(log_path, log.keep_bytes)
                issue.repaired = True
            report.issues.append(issue)


def _check_orphans(
    directory: Path, names: List[str], report: FsckReport
) -> None:
    known = set(names)
    for path in sorted(directory.glob("*.shard-*.jsonl")):
        collection = path.name.split(".shard-")[0]
        if collection not in known:
            report.issues.append(
                FsckIssue(
                    "orphan_file",
                    path.name,
                    f"shard file for {collection!r}, which the"
                    " manifest does not list",
                    severity="warning",
                )
            )


def fsck(
    directory: Union[str, Path],
    repair: bool = False,
    storage: Optional[Any] = None,
) -> FsckReport:
    """Check (and with ``repair=True``, fix) a sharded store directory.

    Returns a :class:`FsckReport`; raises :class:`StoreError` only if
    the directory does not exist. Repairs are two-phase: mechanical
    fixes (stale lockfile / tmp leftovers / torn tails / stale logs)
    run in place, then any remaining damage is resolved by opening the
    store — whose replay quarantines corrupt records into sidecars —
    and compacting, which rewrites every shard in clean v2 framing and
    rebuilds indexes and the manifest.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise StoreError(f"{directory} is not a directory")
    storage = storage if storage is not None else LocalStorage()
    report = FsckReport(directory=directory)
    layout = _check_manifest(directory, report)
    _check_lockfile(directory, report, repair, storage)
    _check_tmp_files(directory, report, repair, storage)
    if layout is None:
        return report
    collections = layout.get("collections", {})
    n_shards = int(layout.get("n_shards", 0))
    for name, info in collections.items():
        _check_collection(
            directory,
            name,
            n_shards,
            int(info.get("generation", 0) or 0),
            report,
            repair,
            storage,
        )
    _check_orphans(directory, list(collections), report)
    if repair:
        damage = [
            issue
            for issue in report.issues
            if issue.severity == "damage"
        ]
        if damage:
            # Replay quarantines the damaged records; compaction
            # rewrites clean framed shards and a fresh manifest.
            from repro.kdb.shards import ShardedDocumentStore

            store = ShardedDocumentStore(directory, storage=storage)
            try:
                store.compact()
            finally:
                store.close()
            for issue in damage:
                issue.repaired = True
        report.repaired = any(issue.repaired for issue in report.issues)
    return report
