"""Embedded document store with a MongoDB-like API.

The paper stores the ADA-HEALTH Knowledge Base "on a cluster of
MongoDBs". This module is the reproduction's substitute substrate: an
embedded, dependency-free document database exposing the subset of the
MongoDB surface the K-DB needs —

* collections of JSON-like documents with automatic ``_id`` assignment,
* rich query documents (``$eq $ne $gt $gte $lt $lte $in $nin $and $or
  $nor $not $exists $regex $size $all $elemMatch`` plus implicit equality
  and dot-path addressing with MongoDB array-traversal semantics),
* update operators (``$set $unset $inc $push $pull $addToSet``),
* secondary indexes — equality ``hash`` indexes (optionally unique) and
  ``sorted`` indexes that additionally serve ``$gt/$gte/$lt/$lte`` range
  predicates and index-ordered ``sort().limit()`` — routed through the
  query planner in :mod:`repro.kdb.planner` (``explain()`` exposes the
  chosen access plan; ``kdb.plans.*`` counters and a ``kdb.query.latency``
  histogram land in an attached :class:`repro.obs.Metrics` registry), and
* durable persistence as one JSON-lines file per collection (or
  hash-sharded partitions via :mod:`repro.kdb.shards`).

Documents are stored *by value* and are **immutable once stored**:
inserts deep-copy, finds deep-copy lazily at cursor resolution, and
updates build a fresh document and swap it in atomically — a failing
update operator leaves the stored document (and every index) untouched.
That immutability is what makes :meth:`Collection.snapshot` cheap:
a snapshot is an O(n) pointer copy of the id→document map that
concurrent writers can never mutate through.

NaN float values are outside the store contract (they are not valid
strict JSON and break ordering); behaviour with NaN is undefined.
"""

from __future__ import annotations

import bisect
import copy
import json
import math
import re
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import (
    CollectionNotFoundError,
    DuplicateKeyError,
    QueryError,
    StoreError,
)
from repro.kdb.planner import QueryPlan, plan_query
from repro.kdb.storage import atomic_write as _atomic_write

Document = Dict[str, Any]
Query = Dict[str, Any]

_COMPARISONS: Dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, operand: _values_equal(value, operand),
    "$ne": lambda value, operand: not _values_equal(value, operand),
    "$gt": lambda value, operand: _ordered(value, operand) and value > operand,
    "$gte": lambda value, operand: _ordered(value, operand)
    and value >= operand,
    "$lt": lambda value, operand: _ordered(value, operand) and value < operand,
    "$lte": lambda value, operand: _ordered(value, operand)
    and value <= operand,
}

_QUERY_BUCKETS: Optional[Tuple[float, ...]] = None


def _query_buckets() -> Tuple[float, ...]:
    """Lazily import the obs histogram grid (avoids an import cycle)."""
    global _QUERY_BUCKETS
    if _QUERY_BUCKETS is None:
        from repro.obs.metrics import QUERY_BUCKETS

        _QUERY_BUCKETS = QUERY_BUCKETS
    return _QUERY_BUCKETS


def _values_equal(value: Any, operand: Any) -> bool:
    """Equality with bool/int separation (Mongo treats them as equal; we
    follow Python semantics but avoid ``1 == True`` surprises)."""
    if isinstance(value, bool) != isinstance(operand, bool):
        return False
    return value == operand


def _ordered(value: Any, operand: Any) -> bool:
    """True when the two values are comparable with ``<``/``>``."""
    if value is None or operand is None:
        return False
    if isinstance(value, bool) or isinstance(operand, bool):
        return False
    number = (int, float)
    if isinstance(value, number) and isinstance(operand, number):
        return True
    return type(value) is type(operand) and isinstance(value, str)


def _walk_path(document: Any, path: Sequence[str]) -> List[Any]:
    """Resolve a dot path, fanning out over arrays like MongoDB.

    Returns the list of values reachable at the path ( possibly empty).
    A list encountered mid-path is traversed element-wise; a list at the
    end of the path is returned whole *and* its elements are candidates
    for comparison (handled by the matcher).
    """
    if not path:
        return [document]
    head, *rest = path
    results: List[Any] = []
    if isinstance(document, dict):
        if head in document:
            results.extend(_walk_path(document[head], rest))
    elif isinstance(document, list):
        if head.isdigit():
            index = int(head)
            if 0 <= index < len(document):
                results.extend(_walk_path(document[index], rest))
        for element in document:
            if isinstance(element, (dict, list)):
                results.extend(_walk_path(element, [head] + rest))
    return results


class _Matcher:
    """Compiles a query document into a predicate over documents.

    ``$regex`` patterns are compiled once per matcher (i.e. once per
    query) and cached; a malformed pattern surfaces as
    :class:`QueryError` instead of a raw :class:`re.error`.
    """

    def __init__(self, query: Query) -> None:
        if not isinstance(query, dict):
            raise QueryError("query must be a dict")
        self._query = query
        self._regex_cache: Dict[str, "re.Pattern[str]"] = {}

    def __call__(self, document: Document) -> bool:
        return self._match_query(self._query, document)

    # -- query-level -----------------------------------------------------
    def _match_query(self, query: Query, document: Document) -> bool:
        for key, condition in query.items():
            if key == "$and":
                self._require_clause_list(key, condition)
                if not all(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key == "$or":
                self._require_clause_list(key, condition)
                if not any(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key == "$nor":
                self._require_clause_list(key, condition)
                if any(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key.startswith("$"):
                raise QueryError(f"unknown top-level operator: {key}")
            else:
                if not self._match_field(key, condition, document):
                    return False
        return True

    @staticmethod
    def _require_clause_list(operator: str, condition: Any) -> None:
        if not isinstance(condition, list) or not condition:
            raise QueryError(f"{operator} requires a non-empty list")

    # -- field-level -----------------------------------------------------
    def _match_field(
        self, path: str, condition: Any, document: Document
    ) -> bool:
        values = _walk_path(document, path.split("."))
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            return self._match_operators(path, condition, values)
        # Implicit equality: match the value itself or any array element.
        return self._equality_any(values, condition)

    @staticmethod
    def _equality_any(values: List[Any], operand: Any) -> bool:
        for value in values:
            if _values_equal(value, operand):
                return True
            if isinstance(value, list) and any(
                _values_equal(element, operand) for element in value
            ):
                return True
        return False

    def _match_operators(
        self, path: str, condition: Dict[str, Any], values: List[Any]
    ) -> bool:
        candidates = list(values)
        for value in values:
            if isinstance(value, list):
                candidates.extend(value)
        for operator, operand in condition.items():
            if not self._apply_operator(
                path, operator, operand, values, candidates
            ):
                return False
        return True

    def _compiled_regex(self, operand: Any) -> "re.Pattern[str]":
        if isinstance(operand, re.Pattern):
            return operand
        if not isinstance(operand, str):
            raise QueryError("$regex requires a string pattern")
        pattern = self._regex_cache.get(operand)
        if pattern is None:
            try:
                pattern = re.compile(operand)
            except re.error as exc:
                raise QueryError(
                    f"invalid $regex pattern {operand!r}: {exc}"
                ) from exc
            self._regex_cache[operand] = pattern
        return pattern

    def _apply_operator(
        self,
        path: str,
        operator: str,
        operand: Any,
        values: List[Any],
        candidates: List[Any],
    ) -> bool:
        if operator in _COMPARISONS:
            compare = _COMPARISONS[operator]
            if operator == "$ne":
                return all(compare(value, operand) for value in candidates)
            return any(compare(value, operand) for value in candidates)
        if operator == "$in":
            if not isinstance(operand, list):
                raise QueryError("$in requires a list")
            return any(
                self._equality_any(values, wanted) for wanted in operand
            )
        if operator == "$nin":
            if not isinstance(operand, list):
                raise QueryError("$nin requires a list")
            return not any(
                self._equality_any(values, unwanted) for unwanted in operand
            )
        if operator == "$exists":
            return bool(values) == bool(operand)
        if operator == "$not":
            if not isinstance(operand, dict):
                raise QueryError("$not requires an operator document")
            return not self._match_operators(path, operand, values)
        if operator == "$regex":
            pattern = self._compiled_regex(operand)
            return any(
                isinstance(value, str) and pattern.search(value)
                for value in candidates
            )
        if operator == "$size":
            return any(
                isinstance(value, list) and len(value) == operand
                for value in values
            )
        if operator == "$all":
            if not isinstance(operand, list):
                raise QueryError("$all requires a list")
            return all(
                self._equality_any(values, wanted) for wanted in operand
            )
        if operator == "$elemMatch":
            if not isinstance(operand, dict):
                raise QueryError("$elemMatch requires a query document")
            inner = _Matcher(operand)
            for value in values:
                if isinstance(value, list) and any(
                    isinstance(element, dict) and inner(element)
                    for element in value
                ):
                    return True
            return False
        raise QueryError(f"unknown operator: {operator}")


class _OrderedValue:
    """Total-order wrapper for sort values of one type.

    Same-type values that do not support ``<`` (dicts, mixed-content
    lists...) fall back to a stable ``repr``-based ordering instead of
    raising ``TypeError`` out of ``sort``.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_OrderedValue") -> bool:
        try:
            return bool(self.value < other.value)
        except TypeError:
            return repr(self.value) < repr(other.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderedValue):
            return NotImplemented
        return self.value == other.value


def _rank(value: Any) -> Tuple:
    """The store's canonical sort rank: None first, then grouped by type
    name, ordered inside the group (``repr`` fallback for unorderables).
    Shared by cursor ``sort``, the ``$sort`` stage and sorted indexes, so
    index-ordered iteration reproduces scan-sort order exactly."""
    return (value is not None, type(value).__name__, _OrderedValue(value))


def _sort_key(document: Document, path: str) -> Tuple:
    values = _walk_path(document, path.split("."))
    return _rank(values[0] if values else None)


# ----------------------------------------------------------------------
# secondary indexes
# ----------------------------------------------------------------------
def _index_key(value: Any) -> Any:
    """Hashable key for index buckets (lists/dicts hashed by JSON dump)."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def _typed_key(value: Any) -> Tuple[str, Any]:
    """Bucket key, separated by type name so ``True``/``1`` (and ``1``/
    ``1.0``, ``"1"``) never share a bucket."""
    return (type(value).__name__, _index_key(value))


def _probe_keys(value: Any) -> List[Tuple[str, Any]]:
    """Typed keys whose buckets may contain documents whose value equals
    ``value`` under :func:`_values_equal` (int/float cross-type hits)."""
    if isinstance(value, bool):
        return [("bool", value)]
    if isinstance(value, int):
        keys: List[Tuple[str, Any]] = [("int", value)]
        try:
            keys.append(("float", float(value)))
        except OverflowError:
            pass
        return keys
    if isinstance(value, float):
        keys = [("float", value)]
        if math.isfinite(value) and value.is_integer():
            keys.append(("int", int(value)))
        return keys
    return [_typed_key(value)]


class _HashIndex:
    """Equality index: typed bucket key -> set of ``_id``\\ s.

    Multikey over arrays like MongoDB: an array value is indexed under
    the whole array *and* under each element, so an equality probe for
    an element still covers documents matching via array membership.
    """

    kind = "hash"

    def __init__(self, name: str, path: str, unique: bool = False) -> None:
        self.name = name
        self.path = path
        self.unique = unique
        self._parts = path.split(".")
        self._buckets: Dict[Tuple[str, Any], set] = {}

    # -- maintenance -----------------------------------------------------
    def _entries(self, document: Document) -> List[Any]:
        entries: List[Any] = []
        for value in _walk_path(document, self._parts):
            entries.append(value)
            if isinstance(value, list):
                entries.extend(value)
        return entries

    def add(self, document: Document) -> None:
        doc_id = document["_id"]
        for value in self._entries(document):
            if self.unique and self._holds_equal(value, exclude=doc_id):
                raise DuplicateKeyError(
                    f"unique index {self.name!r} violated by value {value!r}"
                )
            key = _typed_key(value)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._new_bucket(key, value)
            bucket.add(doc_id)

    def remove(self, document: Document) -> None:
        doc_id = document["_id"]
        for value in self._entries(document):
            key = _typed_key(value)
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    self._drop_bucket(key)

    def _new_bucket(self, key: Tuple[str, Any], value: Any) -> set:
        bucket: set = set()
        self._buckets[key] = bucket
        return bucket

    def _drop_bucket(self, key: Tuple[str, Any]) -> None:
        del self._buckets[key]

    def clear(self) -> None:
        self._buckets.clear()

    def clone(self) -> "_HashIndex":
        dup = type(self)(self.name, self.path, self.unique)
        dup._buckets = {
            key: set(bucket) for key, bucket in self._buckets.items()
        }
        self._clone_extra(dup)
        return dup

    def _clone_extra(self, dup: "_HashIndex") -> None:
        pass

    # -- probes ----------------------------------------------------------
    def _holds_equal(self, value: Any, exclude: Any = None) -> bool:
        for key in _probe_keys(value):
            bucket = self._buckets.get(key)
            if bucket and (bucket - {exclude} if exclude is not None
                           else bucket):
                return True
        return False

    def would_violate(self, document: Document) -> Optional[Any]:
        """The first value that would break uniqueness, or None."""
        if not self.unique:
            return None
        for value in self._entries(document):
            if self._holds_equal(value):
                return value
        return None

    def lookup(self, value: Any) -> set:
        """Candidate ids for an equality probe (superset; the matcher
        re-filters)."""
        ids: set = set()
        for key in _probe_keys(value):
            bucket = self._buckets.get(key)
            if bucket:
                ids |= bucket
        return ids


class _SortedIndex(_HashIndex):
    """Hash index plus a lazily rebuilt ordered view of its keys.

    Additionally serves ``$gt/$gte/$lt/$lte`` range predicates and
    index-ordered iteration for ``sort().limit()``. The ordered view is
    marked stale on bucket creation/removal and rebuilt in O(k log k)
    on the next ordered operation — appends stay O(1), so bulk loads do
    not pay per-insert re-sorting.
    """

    kind = "sorted"

    def __init__(self, name: str, path: str, unique: bool = False) -> None:
        super().__init__(name, path, unique)
        # typed key -> representative value (all values in a bucket are
        # == equal, so any one of them orders the bucket)
        self._rep: Dict[Tuple[str, Any], Any] = {}
        # type name -> (sorted _OrderedValue list, parallel typed keys)
        self._groups: Dict[
            str, Tuple[List[_OrderedValue], List[Tuple[str, Any]]]
        ] = {}
        self._stale = False
        #: True once any document contributed other than exactly one
        #: scalar value at the path — index-ordered sort is then disabled
        #: (array sort order follows the first walk value, not the min).
        self.multivalue = False

    def add(self, document: Document) -> None:
        values = _walk_path(document, self._parts)
        if len(values) != 1 or isinstance(values[0], list):
            self.multivalue = True
        super().add(document)

    def _new_bucket(self, key: Tuple[str, Any], value: Any) -> set:
        bucket = super()._new_bucket(key, value)
        self._rep[key] = value
        self._stale = True
        return bucket

    def _drop_bucket(self, key: Tuple[str, Any]) -> None:
        super()._drop_bucket(key)
        self._rep.pop(key, None)
        self._stale = True

    def clear(self) -> None:
        super().clear()
        self._rep.clear()
        self._groups = {}
        self._stale = False
        self.multivalue = False

    def _clone_extra(self, dup: "_HashIndex") -> None:
        dup._rep = dict(self._rep)
        dup._groups = {}
        dup._stale = True
        dup.multivalue = self.multivalue

    def _ensure_sorted(self) -> None:
        if not self._stale:
            return
        grouped: Dict[str, List[Tuple[_OrderedValue, Tuple[str, Any]]]] = {}
        for key, value in self._rep.items():
            grouped.setdefault(type(value).__name__, []).append(
                (_OrderedValue(value), key)
            )
        self._groups = {}
        for typename, entries in grouped.items():
            entries.sort(key=lambda pair: pair[0])
            self._groups[typename] = (
                [ov for ov, __ in entries],
                [key for __, key in entries],
            )
        self._stale = False

    def range_ids(
        self,
        lower: Optional[Tuple[Any, bool]],
        upper: Optional[Tuple[Any, bool]],
    ) -> set:
        """Candidate ids for a range predicate (superset; the matcher
        re-filters). Bounds are ``(operand, inclusive)`` or None."""
        self._ensure_sorted()
        operand = (lower or upper)[0]  # type: ignore[index]
        typenames = (
            ("str",) if isinstance(operand, str) else ("float", "int")
        )
        ids: set = set()
        for typename in typenames:
            group = self._groups.get(typename)
            if not group:
                continue
            ovs, keys = group
            lo, hi = 0, len(ovs)
            if lower is not None:
                wrapped = _OrderedValue(lower[0])
                lo = (
                    bisect.bisect_left(ovs, wrapped)
                    if lower[1]
                    else bisect.bisect_right(ovs, wrapped)
                )
            if upper is not None:
                wrapped = _OrderedValue(upper[0])
                hi = (
                    bisect.bisect_right(ovs, wrapped)
                    if upper[1]
                    else bisect.bisect_left(ovs, wrapped)
                )
            for key in keys[lo:hi]:
                bucket = self._buckets.get(key)
                if bucket:
                    ids |= bucket
        return ids

    def ordered_ids(
        self, seq: Dict[Any, int], reverse: bool = False
    ) -> Iterator[Any]:
        """Document ids in the store's canonical sort order for this
        path, excluding the None group (the cursor handles missing and
        null values itself). Bucket ties follow insertion order (``seq``)
        so the result matches a stable scan sort exactly."""
        self._ensure_sorted()
        typenames = sorted(
            name for name in self._groups if name != "NoneType"
        )
        if reverse:
            typenames = typenames[::-1]
        for typename in typenames:
            __, keys = self._groups[typename]
            ordered_keys: Iterable[Tuple[str, Any]] = (
                reversed(keys) if reverse else keys
            )
            for key in ordered_keys:
                bucket = self._buckets.get(key)
                if not bucket:
                    continue
                for doc_id in sorted(bucket, key=seq.__getitem__):
                    yield doc_id


_INDEX_KINDS: Dict[str, type] = {
    "hash": _HashIndex,
    "sorted": _SortedIndex,
}


class Cursor:
    """Lazy result set supporting ``sort``/``skip``/``limit`` chaining.

    Stored documents are immutable, so the cursor holds references and
    deep-copies **lazily at resolution, after slicing** — a ``limit(5)``
    over a million matches copies five documents, not a million. The
    resolved view is memoised; chaining invalidates the memo.

    When the owning collection has a ``sorted`` index on a single-path
    sort key, resolution walks the index in order instead of sorting,
    stopping early once ``skip + limit`` documents are produced.
    """

    def __init__(
        self,
        documents: List[Document],
        plan: Optional[QueryPlan] = None,
        index_order: Optional[Callable[..., Optional[Iterator[Any]]]] = None,
    ) -> None:
        self._documents = documents
        #: The access plan that produced this cursor (None when the
        #: cursor was built from a detached document list).
        self.plan = plan
        self._index_order = index_order
        self._sort_spec: List[Tuple[str, int]] = []
        self._skip = 0
        self._limit: Optional[int] = None
        self._cache: Optional[List[Document]] = None

    def sort(self, key: Union[str, List[Tuple[str, int]]], direction: int = 1):
        """Sort by a dot-path (or list of ``(path, direction)`` pairs)."""
        if isinstance(key, str):
            self._sort_spec = [(key, direction)]
        else:
            self._sort_spec = list(key)
        self._cache = None
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first ``count`` results."""
        if count < 0:
            raise QueryError("skip must be non-negative")
        self._skip = count
        self._cache = None
        return self

    def limit(self, count: int) -> "Cursor":
        """Return at most ``count`` results."""
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._limit = count
        self._cache = None
        return self

    def _resolved(self) -> List[Document]:
        if self._cache is not None:
            return self._cache
        documents = self._documents
        if self._sort_spec:
            documents = self._sorted_documents(documents)
        end = None if self._limit is None else self._skip + self._limit
        self._cache = [
            copy.deepcopy(document)
            for document in documents[self._skip : end]
        ]
        return self._cache

    def _sorted_documents(
        self, documents: List[Document]
    ) -> List[Document]:
        if self._index_order is not None and len(self._sort_spec) == 1:
            path, direction = self._sort_spec[0]
            ordered_ids = self._index_order(path, direction < 0)
            if ordered_ids is not None:
                return self._index_sorted(
                    documents, path, ordered_ids, direction < 0
                )
        for path, direction in reversed(self._sort_spec):

            def sort_key(document: Document, path=path) -> Tuple:
                return _sort_key(document, path)

            documents = sorted(
                documents, key=sort_key, reverse=(direction < 0)
            )
        return documents

    def _index_sorted(
        self,
        documents: List[Document],
        path: str,
        ordered_ids: Iterator[Any],
        reverse: bool,
    ) -> List[Document]:
        parts = path.split(".")
        by_id: Dict[Any, Document] = {}
        nulls: List[Document] = []
        for document in documents:
            values = _walk_path(document, parts)
            if not values or values[0] is None:
                nulls.append(document)
            else:
                by_id[document["_id"]] = document
        target = (
            None if self._limit is None else self._skip + self._limit
        )
        ordered: List[Document] = []

        def fill_from_index() -> None:
            for doc_id in ordered_ids:
                document = by_id.get(doc_id)
                if document is None:
                    continue
                ordered.append(document)
                if target is not None and len(ordered) >= target:
                    return

        if reverse:
            fill_from_index()
            if target is None or len(ordered) < target:
                ordered.extend(nulls)
        else:
            ordered.extend(nulls)
            if target is None or len(ordered) < target:
                fill_from_index()
        return ordered

    def __iter__(self) -> Iterator[Document]:
        return iter(self._resolved())

    def __len__(self) -> int:
        return len(self._resolved())

    def to_list(self) -> List[Document]:
        """Materialise the cursor into a list."""
        return list(self._resolved())


class Collection:
    """A named collection of documents inside a :class:`DocumentStore`.

    Mutations are serialised by a per-collection re-entrant lock and are
    atomic per document: a failing update operator, serialisation check
    or unique-index violation leaves the stored document and every index
    exactly as they were. Concurrent readers should take
    :meth:`snapshot` — an O(n) consistent, read-only view.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: Dict[Any, Document] = {}
        self._next_id = 1
        self._indexes: Dict[str, _HashIndex] = {}
        # insertion sequence per _id: deterministic candidate ordering
        # (planner output and index-sort ties match scan order exactly)
        self._seq: Dict[Any, int] = {}
        self._seq_counter = 0
        self._version = 0
        self._lock = threading.RLock()
        #: Mutation hook for the shard layer (op, payload); not pickled.
        self._journal: Optional[Callable[[str, Any], None]] = None
        #: Pre-mutation veto hook (raises to refuse the write *before*
        #: it is applied in memory — e.g. the sharded store's ENOSPC
        #: write-protection); not pickled.
        self._write_guard: Optional[Callable[[], None]] = None
        #: Optional ``repro.obs.Metrics`` registry for query telemetry.
        self.metrics = None
        #: True for snapshots: all mutating calls raise ``StoreError``.
        self.read_only = False
        #: The plan of the most recent planned read (tests/diagnostics).
        self.last_plan: Optional[QueryPlan] = None

    # -- pickling (locks rebuilt; journal hooks do not survive) ----------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state.pop("_journal", None)
        state.pop("_write_guard", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._journal = None
        self._write_guard = None

    def _require_writable(self) -> None:
        if self.read_only:
            raise StoreError(
                f"collection {self.name!r} is a read-only snapshot"
            )
        if self._write_guard is not None:
            self._write_guard()

    def _notify(self, op: str, payload: Any = None) -> None:
        self._version += 1
        if self._journal is not None:
            self._journal(op, payload)

    # -- insert ----------------------------------------------------------
    def insert_one(self, document: Document) -> Any:
        """Insert a document; returns its ``_id`` (assigned if absent)."""
        if not isinstance(document, dict):
            raise StoreError("documents must be dicts")
        document = copy.deepcopy(document)
        _reject_unstorable(document)
        with self._lock:
            self._require_writable()
            if "_id" not in document:
                while self._next_id in self._documents:
                    self._next_id += 1
                document["_id"] = self._next_id
                self._next_id += 1
            doc_id = document["_id"]
            if doc_id in self._documents:
                raise DuplicateKeyError(
                    f"duplicate _id in {self.name!r}: {doc_id!r}"
                )
            self._check_unique_indexes(document)
            self._documents[doc_id] = document
            self._index_add(document)
            self._seq[doc_id] = self._seq_counter
            self._seq_counter += 1
            self._notify("put", document)
        return doc_id

    def insert_many(self, documents: Iterable[Document]) -> List[Any]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(document) for document in documents]

    def _install(self, document: Document) -> None:
        """Install a trusted document (loader fast path): no copy, no
        serialisation check, no journal echo. Indexes are expected to be
        (re)built afterwards via :meth:`create_index`."""
        with self._lock:
            doc_id = document["_id"]
            if doc_id in self._documents:
                raise DuplicateKeyError(
                    f"duplicate _id in {self.name!r}: {doc_id!r}"
                )
            self._documents[doc_id] = document
            self._index_add(document)
            self._seq[doc_id] = self._seq_counter
            self._seq_counter += 1
            self._version += 1

    # -- find --------------------------------------------------------------
    def _matched(
        self, query: Optional[Query]
    ) -> Tuple[List[Document], QueryPlan]:
        """Planner-routed matching: returns (stored references, plan)."""
        query = query or {}
        matcher = _Matcher(query)
        start = time.perf_counter()
        candidates, plan = plan_query(self, query)
        matched = [
            document for document in candidates if matcher(document)
        ]
        plan.returned = len(matched)
        plan.elapsed_s = time.perf_counter() - start
        self._record_plan(plan)
        return matched, plan

    def _record_plan(self, plan: QueryPlan) -> None:
        self.last_plan = plan
        metrics = self.metrics
        if metrics is None:
            return
        outcome = "indexed" if plan.indexed else "scan"
        metrics.counter(f"kdb.plans.{outcome}").inc()
        metrics.histogram(
            "kdb.query.latency", _query_buckets()
        ).observe(plan.elapsed_s or 0.0)

    def _index_on(self, path: str) -> Optional[_HashIndex]:
        """The index covering ``path``, if any (planner hook)."""
        for index in self._indexes.values():
            if index.path == path:
                return index
        return None

    def _index_order(
        self, path: str, reverse: bool, version: Optional[int] = None
    ) -> Optional[Iterator[Any]]:
        """Index-ordered id iterator for ``path``, or None when no
        sorted scalar index covers it (or the collection changed since
        ``version`` — a stale cursor then falls back to a full sort)."""
        if version is not None and version != self._version:
            return None
        index = self._index_on(path)
        if (
            index is None
            or index.kind != "sorted"
            or getattr(index, "multivalue", True)
        ):
            return None
        return index.ordered_ids(self._seq, reverse=reverse)

    def find(self, query: Optional[Query] = None) -> Cursor:
        """Return a cursor over documents matching ``query`` (all if None).

        The access path is chosen by :func:`repro.kdb.planner.plan_query`
        (``cursor.plan`` carries the EXPLAIN-style record); documents are
        deep-copied lazily when the cursor resolves.
        """
        matched, plan = self._matched(query)
        found_version = self._version

        def index_order(path: str, reverse: bool):
            return self._index_order(path, reverse, version=found_version)

        return Cursor(matched, plan=plan, index_order=index_order)

    def explain(self, query: Optional[Query] = None) -> QueryPlan:
        """The access plan for ``query``, without executing it."""
        __, plan = plan_query(self, query or {})
        return plan

    def find_one(self, query: Optional[Query] = None) -> Optional[Document]:
        """Return one matching document, or None."""
        for document in self.find(query).limit(1):
            return document
        return None

    def count_documents(self, query: Optional[Query] = None) -> int:
        """Number of documents matching ``query``."""
        matched, __ = self._matched(query)
        return len(matched)

    def distinct(self, path: str, query: Optional[Query] = None) -> List[Any]:
        """Distinct values reachable at ``path`` among matching documents.

        Distinctness follows the store's equality (:func:`_values_equal`):
        ``True`` and ``1`` are different values, ``1`` and ``1.0`` are
        the same.
        """
        matched, __ = self._matched(query)
        parts = path.split(".")
        seen: set = set()
        out: List[Any] = []
        for document in matched:
            for value in _walk_path(document, parts):
                targets = value if isinstance(value, list) else [value]
                for target in targets:
                    key = (isinstance(target, bool), _index_key(target))
                    if key not in seen:
                        seen.add(key)
                        out.append(copy.deepcopy(target))
        return out

    # -- update ------------------------------------------------------------
    def update_one(self, query: Query, update: Document) -> int:
        """Apply an update document to the first match; returns 0 or 1."""
        return self._update(query, update, many=False)

    def update_many(self, query: Query, update: Document) -> int:
        """Apply an update document to all matches; returns match count."""
        return self._update(query, update, many=True)

    def _update(self, query: Query, update: Document, many: bool) -> int:
        if not update or not all(k.startswith("$") for k in update):
            raise StoreError(
                "update documents must use operators ($set, $inc, ...)"
            )
        matcher = _Matcher(query)
        updated = 0
        with self._lock:
            self._require_writable()
            for doc_id, document in list(self._documents.items()):
                if not matcher(document):
                    continue
                # Copy-on-write: build the replacement fully, validate
                # it, then swap — a failure at any point leaves the
                # stored document and the indexes untouched.
                replacement = copy.deepcopy(document)
                _apply_update(replacement, update)
                _reject_unstorable(replacement)
                if replacement["_id"] != doc_id:
                    raise StoreError("updates may not modify _id")
                self._index_remove(document)
                try:
                    self._index_add(replacement)
                except DuplicateKeyError:
                    self._index_remove(replacement)
                    self._index_add(document)
                    raise
                self._documents[doc_id] = replacement
                self._notify("put", replacement)
                updated += 1
                if not many:
                    break
        return updated

    # -- delete ------------------------------------------------------------
    def delete_one(self, query: Query) -> int:
        """Delete the first matching document; returns 0 or 1."""
        return self._delete(query, many=False)

    def delete_many(self, query: Optional[Query] = None) -> int:
        """Delete all matching documents; returns the count deleted."""
        return self._delete(query or {}, many=True)

    def _delete(self, query: Query, many: bool) -> int:
        matcher = _Matcher(query)
        with self._lock:
            self._require_writable()
            victims = []
            for doc_id, document in self._documents.items():
                if matcher(document):
                    victims.append(doc_id)
                    if not many:
                        break
            for doc_id in victims:
                document = self._documents.pop(doc_id)
                self._index_remove(document)
                self._seq.pop(doc_id, None)
                self._notify("del", doc_id)
        return len(victims)

    # -- indexes -----------------------------------------------------------
    def create_index(
        self, path: str, unique: bool = False, kind: str = "hash"
    ) -> str:
        """Create an index on a dot path; returns the index name.

        ``kind="hash"`` serves equality probes; ``kind="sorted"`` also
        serves range predicates and index-ordered ``sort().limit()``.
        Re-creating an existing index is a no-op, except that asking for
        ``"sorted"`` where a hash index exists upgrades it in place.
        """
        if kind not in _INDEX_KINDS:
            raise StoreError(f"unknown index kind: {kind!r}")
        name = f"{path}_1"
        with self._lock:
            self._require_writable()
            existing = self._indexes.get(name)
            if existing is not None and (
                existing.kind == kind or kind == "hash"
            ):
                return name
            index = _INDEX_KINDS[kind](name, path, unique)
            for document in self._documents.values():
                index.add(document)
            self._indexes[name] = index
            self._notify("index")
        return name

    def drop_index(self, name: str) -> None:
        """Drop an index by name."""
        with self._lock:
            self._require_writable()
            if self._indexes.pop(name, None) is not None:
                self._notify("index")

    def index_names(self) -> List[str]:
        """Names of the existing indexes."""
        return list(self._indexes)

    def _check_unique_indexes(self, document: Document) -> None:
        for index in self._indexes.values():
            value = index.would_violate(document)
            if value is not None:
                raise DuplicateKeyError(
                    f"unique index {index.name!r} violated by"
                    f" value {value!r}"
                )

    def _index_add(self, document: Document) -> None:
        for index in self._indexes.values():
            index.add(document)

    def _index_remove(self, document: Document) -> None:
        for index in self._indexes.values():
            index.remove(document)

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> "Collection":
        """A consistent, read-only view of the collection.

        O(n) pointer copies: stored documents are immutable (updates
        swap in fresh documents), so the snapshot never observes later
        writes. Reads on the snapshot plan through its own cloned
        indexes; every mutating call raises :class:`StoreError`.
        """
        with self._lock:
            clone = Collection(self.name)
            clone._documents = dict(self._documents)
            clone._seq = dict(self._seq)
            clone._seq_counter = self._seq_counter
            clone._next_id = self._next_id
            clone._indexes = {
                name: index.clone()
                for name, index in self._indexes.items()
            }
            clone.read_only = True
            return clone

    # -- aggregation -----------------------------------------------------
    def aggregate(self, pipeline: List[Document]) -> List[Document]:
        """Run a Mongo-style aggregation pipeline.

        Supported stages: ``$match`` (query document), ``$group`` (by a
        ``_id`` expression with ``$sum/$avg/$min/$max/$count/$push``
        accumulators; field references use the ``"$path"`` syntax),
        ``$sort`` (``{path: 1|-1}``), ``$limit``, ``$skip`` and
        ``$project`` (1-valued field inclusion).

        A leading ``$match`` is pushed through the query planner, and
        only the rows that survive the whole pipeline are deep-copied —
        the collection is never copied wholesale up front.
        """
        rows: Optional[List[Document]] = None
        for stage in pipeline:
            if not isinstance(stage, dict) or len(stage) != 1:
                raise QueryError("each stage must be a single-key dict")
            operator, spec = next(iter(stage.items()))
            if rows is None and operator == "$match":
                rows, __ = self._matched(spec)
                continue
            if rows is None:
                rows = list(self._documents.values())
            if operator == "$match":
                matcher = _Matcher(spec)
                rows = [row for row in rows if matcher(row)]
            elif operator == "$group":
                rows = _group(rows, spec)
            elif operator == "$sort":
                for path, direction in reversed(list(spec.items())):
                    rows.sort(
                        key=lambda row, p=path: _sort_key(row, p),
                        reverse=direction < 0,
                    )
            elif operator == "$limit":
                rows = rows[: int(spec)]
            elif operator == "$skip":
                rows = rows[int(spec):]
            elif operator == "$project":
                rows = [_project(row, spec) for row in rows]
            else:
                raise QueryError(f"unknown pipeline stage: {operator}")
        if rows is None:
            rows = list(self._documents.values())
        return copy.deepcopy(rows)

    # -- misc ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def drop(self) -> None:
        """Remove every document (indexes survive, emptied)."""
        with self._lock:
            self._require_writable()
            self._documents.clear()
            self._seq.clear()
            self._seq_counter = 0
            for index in self._indexes.values():
                index.clear()
            self._notify("clear")


def _resolve_expression(document: Document, expression: Any) -> Any:
    """Resolve a ``"$path"`` field reference (or return the literal)."""
    if isinstance(expression, str) and expression.startswith("$"):
        values = _walk_path(document, expression[1:].split("."))
        return values[0] if values else None
    return expression


def _project(document: Document, spec: Document) -> Document:
    projected: Document = {}
    for path, include in spec.items():
        if not include:
            continue
        values = _walk_path(document, path.split("."))
        if values:
            projected[path] = copy.deepcopy(values[0])
    return projected


_ACCUMULATORS = ("$sum", "$avg", "$min", "$max", "$count", "$push")


def _group(rows: List[Document], spec: Document) -> List[Document]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression")
    buckets: Dict[Any, List[Document]] = {}
    bucket_keys: Dict[Any, Any] = {}
    for row in rows:
        key_value = _resolve_expression(row, spec["_id"])
        key = _index_key(key_value)
        buckets.setdefault(key, []).append(row)
        bucket_keys[key] = key_value

    results: List[Document] = []
    for key in sorted(buckets, key=lambda k: (str(type(k)), str(k))):
        members = buckets[key]
        out: Document = {"_id": bucket_keys[key]}
        for field_name, accumulator in spec.items():
            if field_name == "_id":
                continue
            if (
                not isinstance(accumulator, dict)
                or len(accumulator) != 1
            ):
                raise QueryError(
                    f"accumulator for {field_name!r} must be a"
                    f" single-operator dict"
                )
            operator, operand = next(iter(accumulator.items()))
            if operator not in _ACCUMULATORS:
                raise QueryError(f"unknown accumulator: {operator}")
            if operator == "$count":
                out[field_name] = len(members)
                continue
            values = [
                _resolve_expression(member, operand)
                for member in members
            ]
            if operator == "$push":
                out[field_name] = values
                continue
            numbers = [
                value
                for value in values
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            ]
            if operator == "$sum":
                out[field_name] = sum(numbers)
            elif operator == "$avg":
                out[field_name] = (
                    sum(numbers) / len(numbers) if numbers else None
                )
            elif operator == "$min":
                out[field_name] = min(numbers) if numbers else None
            elif operator == "$max":
                out[field_name] = max(numbers) if numbers else None
        results.append(out)
    return results


def _reject_unstorable(document: Document) -> None:
    """Ensure the document is JSON-serialisable (store contract)."""
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"document is not JSON-serialisable: {exc}") from exc


def _apply_update(document: Document, update: Document) -> None:
    for operator, fields in update.items():
        if not isinstance(fields, dict):
            raise StoreError(f"{operator} requires a field document")
        for path, operand in fields.items():
            if operator in ("$unset", "$pull"):
                # Removal operators never materialise missing paths:
                # a miss anywhere along the dot path is a no-op.
                resolved = _resolve_existing(document, path)
                if resolved is None:
                    continue
                parent, leaf = resolved
                if operator == "$unset":
                    parent.pop(leaf, None)
                else:
                    bucket = parent.get(leaf)
                    if isinstance(bucket, list):
                        parent[leaf] = [
                            element
                            for element in bucket
                            if not _values_equal(element, operand)
                        ]
                continue
            parent, leaf = _resolve_parent(document, path, create=True)
            if operator == "$set":
                parent[leaf] = copy.deepcopy(operand)
            elif operator == "$inc":
                current = parent.get(leaf, 0)
                if not isinstance(current, (int, float)) or isinstance(
                    current, bool
                ):
                    raise StoreError(f"$inc target {path!r} is not numeric")
                parent[leaf] = current + operand
            elif operator == "$push":
                bucket = parent.setdefault(leaf, [])
                if not isinstance(bucket, list):
                    raise StoreError(f"$push target {path!r} is not a list")
                bucket.append(copy.deepcopy(operand))
            elif operator == "$addToSet":
                bucket = parent.setdefault(leaf, [])
                if not isinstance(bucket, list):
                    raise StoreError(
                        f"$addToSet target {path!r} is not a list"
                    )
                if operand not in bucket:
                    bucket.append(copy.deepcopy(operand))
            else:
                raise StoreError(f"unknown update operator: {operator}")


def _resolve_parent(
    document: Document, path: str, create: bool
) -> Tuple[Dict[str, Any], str]:
    """Return (parent dict, leaf key) for a dot path, creating dicts."""
    parts = path.split(".")
    node: Any = document
    for part in parts[:-1]:
        if isinstance(node, dict):
            if part not in node:
                if not create:
                    raise StoreError(f"path does not exist: {path!r}")
                node[part] = {}
            node = node[part]
        else:
            raise StoreError(f"cannot descend into non-dict at {part!r}")
    if not isinstance(node, dict):
        raise StoreError(f"cannot address leaf of non-dict at {path!r}")
    return node, parts[-1]


def _resolve_existing(
    document: Document, path: str
) -> Optional[Tuple[Dict[str, Any], str]]:
    """Like :func:`_resolve_parent` but never creates or raises: returns
    None when any segment of the path is missing or not a dict."""
    parts = path.split(".")
    node: Any = document
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if not isinstance(node, dict):
        return None
    return node, parts[-1]


class DocumentStore:
    """A database of named collections, persistable to a directory."""

    def __init__(self) -> None:
        self._collections: Dict[str, Collection] = {}
        #: One human-readable line per corrupt JSONL line skipped by
        #: the most recent :meth:`load` (empty after a clean load).
        self.load_warnings: List[str] = []
        self._metrics = None

    def bind_metrics(self, metrics) -> None:
        """Attach an ``repro.obs.Metrics`` registry: every collection
        (present and future) meters its query plans and latencies."""
        self._metrics = metrics
        for collection in self._collections.values():
            collection.metrics = metrics

    def _attach_collection(self, collection: Collection) -> None:
        """Subclass hook: called once per newly created collection."""

    def collection(self, name: str) -> Collection:
        """Get or create the named collection."""
        if name not in self._collections:
            collection = Collection(name)
            collection.metrics = self._metrics
            # Register before the hook: subclasses enumerate
            # _collections (e.g. the shard manifest writer).
            self._collections[name] = collection
            self._attach_collection(collection)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def existing(self, name: str) -> Collection:
        """Get a collection that must already exist."""
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionNotFoundError(name) from None

    def collection_names(self) -> List[str]:
        """Names of all collections."""
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Remove a collection entirely (no-op if absent)."""
        self._collections.pop(name, None)

    def snapshot(self) -> "DocumentStore":
        """A read-only point-in-time view of every collection.

        Each collection's view is internally consistent (taken under
        its write lock); the store-wide cut is best-effort across
        collections.
        """
        snap = DocumentStore()
        for name, collection in self._collections.items():
            snap._collections[name] = collection.snapshot()
        snap.load_warnings = list(self.load_warnings)
        return snap

    # -- persistence -------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist every collection as ``<name>.jsonl`` under ``directory``.

        Indexes are saved in a side-car manifest and rebuilt on load.
        Every file is written to a temporary sibling and moved into
        place with :func:`os.replace`, so a crash mid-save leaves the
        previous complete file (or no file), never a truncated one.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, collection in self._collections.items():
            _atomic_write(
                directory / f"{name}.jsonl",
                "".join(
                    json.dumps(document, sort_keys=True) + "\n"
                    for document in collection._documents.values()
                ),
            )
            manifest[name] = [
                {
                    "path": index.path,
                    "unique": index.unique,
                    "kind": index.kind,
                }
                for index in collection._indexes.values()
            ]
        _atomic_write(
            directory / "_manifest.json",
            json.dumps(manifest, indent=2, sort_keys=True),
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "DocumentStore":
        """Load a store previously written by :meth:`save`.

        Truncated or otherwise corrupt JSONL lines (a crash mid-append,
        a chopped download) are skipped rather than aborting the load;
        each skip is recorded in :attr:`load_warnings` so callers can
        audit what was lost.
        """
        directory = Path(directory)
        manifest_path = directory / "_manifest.json"
        if not manifest_path.exists():
            raise StoreError(f"no store manifest in {directory}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        store = cls()
        for name, indexes in manifest.items():
            collection = store.collection(name)
            data_path = directory / f"{name}.jsonl"
            if data_path.exists():
                with open(data_path) as handle:
                    for lineno, line in enumerate(handle, start=1):
                        if not line.strip():
                            continue
                        try:
                            document = json.loads(line)
                        except json.JSONDecodeError as exc:
                            store.load_warnings.append(
                                f"{data_path.name}:{lineno}: skipped"
                                f" corrupt line ({exc.msg})"
                            )
                            continue
                        if (
                            isinstance(document, dict)
                            and "_id" in document
                        ):
                            collection._install(document)
                        else:
                            collection.insert_one(document)
            for index in indexes:
                collection.create_index(
                    index["path"],
                    unique=index["unique"],
                    kind=index.get("kind", "hash"),
                )
        return store
